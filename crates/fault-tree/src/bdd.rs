//! The `Ψ_FT` translation of Definition 6: fault trees to BDDs.
//!
//! [`TreeBdd`] owns a [`Manager`] whose variables interleave each basic
//! event with a *primed* copy: the basic event at ordering position `p`
//! gets variable id `2p`, its primed copy id `2p + 1` (and a fresh
//! manager places ids at the matching levels). The primed variables
//! implement the `V ↷ V′` renaming of the paper's `MCS`/`MPS`
//! translations; ordinary gate translation only touches unprimed
//! variables.
//!
//! Dynamic maintenance: [`TreeBdd::sift`] improves the variable order in
//! place with Rudell sifting — always in glued *(event, primed)* blocks,
//! so each primed variable stays immediately below its event and the
//! `V ↷ V′` renaming remains order-preserving — and
//! [`TreeBdd::collect_garbage`] compacts the arena, remapping the
//! element-translation cache (plus any caller-owned handles) through the
//! sweep.

use std::collections::HashMap;
use std::time::Instant;

use bfl_bdd::{Bdd, GcStats, Manager, SiftOptions, SiftStats, Var};

use crate::model::{ElementId, FaultTree, GateType};
use crate::modules;
use crate::order::VariableOrdering;
use crate::status::StatusVector;

/// Statistics of one module compiled by [`TreeBdd::compile_parallel`].
#[derive(Debug, Clone)]
pub struct ModuleCompileStat {
    /// The module's root gate.
    pub root: ElementId,
    /// Elements in the module's cone (root included).
    pub cone: usize,
    /// Reachable BDD nodes of the module root's diagram (terminals
    /// included), measured in the worker arena before stitching.
    pub nodes: usize,
    /// Worker-side compile time for this module, in microseconds.
    pub micros: u64,
    /// Index of the worker that compiled it.
    pub worker: usize,
}

/// Statistics returned by [`TreeBdd::compile_parallel`].
#[derive(Debug, Clone)]
pub struct ParallelCompileStats {
    /// Worker threads actually used (1 on the sequential fallback).
    pub workers: usize,
    /// Independent modules that met the cone-size threshold.
    pub modules_detected: usize,
    /// Per-module compile statistics, in module discovery order.
    pub modules: Vec<ModuleCompileStat>,
    /// Time spent importing worker diagrams into the parent arena, µs.
    pub stitch_micros: u64,
    /// End-to-end wall-clock of the whole compile, µs.
    pub total_micros: u64,
}

/// A fault tree compiled to BDDs: one diagram per element, sharing one
/// manager.
///
/// # Example
///
/// ```
/// use bfl_fault_tree::{corpus, bdd::TreeBdd, VariableOrdering};
/// let tree = corpus::fig1();
/// let mut tb = TreeBdd::new(&tree, VariableOrdering::DfsPreorder);
/// let top = tb.element_bdd(&tree, tree.top());
/// // Φ evaluates to 1 when IW and H3 both fail (an MCS of Fig. 1).
/// let b = bfl_fault_tree::StatusVector::from_failed_names(&tree, &["IW", "H3"]);
/// assert!(tb.eval_vector(&tree, top, &b));
/// ```
#[derive(Debug)]
pub struct TreeBdd {
    manager: Manager,
    /// Basic events in variable order (position -> element).
    order: Vec<ElementId>,
    /// basic index -> ordering position.
    position: Vec<usize>,
    /// element index -> translated BDD (lazily filled).
    cache: HashMap<u32, Bdd>,
    /// Identity check: number of elements of the tree this was built for.
    tree_len: usize,
}

impl TreeBdd {
    /// Compiles nothing yet; allocates `2·|BE|` variables (unprimed and
    /// primed, interleaved) for `tree` using `ordering`.
    pub fn new(tree: &FaultTree, ordering: VariableOrdering) -> Self {
        Self::with_order(tree, ordering.order(tree))
    }

    /// Like [`TreeBdd::new`] with an explicit basic-event permutation.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the tree's basic events.
    pub fn with_order(tree: &FaultTree, order: Vec<ElementId>) -> Self {
        assert_eq!(order.len(), tree.num_basic_events(), "order length");
        let mut position = vec![usize::MAX; tree.num_basic_events()];
        for (pos, &e) in order.iter().enumerate() {
            let bi = tree
                .basic_index(e)
                .unwrap_or_else(|| panic!("{} is not a basic event", tree.name(e)));
            assert_eq!(position[bi], usize::MAX, "duplicate event in order");
            position[bi] = pos;
        }
        assert!(
            position.iter().all(|&p| p != usize::MAX),
            "incomplete order"
        );
        let manager = Manager::new(2 * order.len() as u32);
        TreeBdd {
            manager,
            order,
            position,
            cache: HashMap::new(),
            tree_len: tree.len(),
        }
    }

    /// The underlying BDD manager.
    pub fn manager(&self) -> &Manager {
        &self.manager
    }

    /// Mutable access to the underlying BDD manager.
    pub fn manager_mut(&mut self) -> &mut Manager {
        &mut self.manager
    }

    /// Basic events in variable order.
    pub fn order(&self) -> &[ElementId] {
        &self.order
    }

    /// The unprimed BDD variable of the basic event with basic index `bi`.
    pub fn var_of_basic(&self, bi: usize) -> Var {
        Var(2 * self.position[bi] as u32)
    }

    /// The primed BDD variable paired with basic index `bi`.
    pub fn primed_var_of_basic(&self, bi: usize) -> Var {
        Var(2 * self.position[bi] as u32 + 1)
    }

    /// Maps an unprimed variable back to the basic index it encodes.
    ///
    /// Returns `None` for primed variables.
    pub fn basic_of_var(&self, v: Var) -> Option<usize> {
        if !v.index().is_multiple_of(2) {
            return None;
        }
        let pos = (v.index() / 2) as usize;
        self.order.get(pos).map(|&_e| {
            // position -> basic index: invert `position`.
            self.position
                .iter()
                .position(|&p| p == pos)
                .unwrap_or_else(|| unreachable!("bijection"))
        })
    }

    /// All unprimed variables, in order.
    pub fn unprimed_vars(&self) -> Vec<Var> {
        (0..self.order.len()).map(|p| Var(2 * p as u32)).collect()
    }

    /// All primed variables, in order.
    pub fn primed_vars(&self) -> Vec<Var> {
        (0..self.order.len())
            .map(|p| Var(2 * p as u32 + 1))
            .collect()
    }

    /// `(unprimed, primed)` pairs, in order — input to
    /// [`Manager::strict_subset`] / [`Manager::strict_superset`].
    pub fn var_pairs(&self) -> Vec<(Var, Var)> {
        (0..self.order.len())
            .map(|p| (Var(2 * p as u32), Var(2 * p as u32 + 1)))
            .collect()
    }

    /// The order-preserving unprimed → primed renaming (`V ↷ V′`).
    pub fn prime_map(&self) -> impl Fn(Var) -> Var {
        |v: Var| {
            debug_assert_eq!(v.index() % 2, 0, "renaming a primed variable");
            Var(v.index() + 1)
        }
    }

    /// Translates element `e` (and, transitively, its cone) per
    /// Definition 6, caching every intermediate element.
    ///
    /// # Panics
    ///
    /// Panics if `tree` is not the tree this `TreeBdd` was created for.
    pub fn element_bdd(&mut self, tree: &FaultTree, e: ElementId) -> Bdd {
        assert_eq!(
            tree.len(),
            self.tree_len,
            "TreeBdd used with a different tree"
        );
        if let Some(&b) = self.cache.get(&(e.index() as u32)) {
            return b;
        }
        // Iterative post-order to avoid recursion limits on deep trees.
        let mut stack = vec![(e, false)];
        while let Some((x, expanded)) = stack.pop() {
            if self.cache.contains_key(&(x.index() as u32)) {
                continue;
            }
            if let Some(bi) = tree.basic_index(x) {
                let v = self.var_of_basic(bi);
                let b = self.manager.var(v);
                self.cache.insert(x.index() as u32, b);
                continue;
            }
            if !expanded {
                stack.push((x, true));
                for &c in tree.children(x) {
                    stack.push((c, false));
                }
                continue;
            }
            let children: Vec<Bdd> = tree
                .children(x)
                .iter()
                .map(|c| self.cache[&(c.index() as u32)])
                .collect();
            let b = match tree.gate_type(x).unwrap_or_else(|| unreachable!("gate")) {
                GateType::And => self.manager.and_all(children),
                GateType::Or => self.manager.or_all(children),
                GateType::Vot { k } => vot_threshold(&mut self.manager, &children, k),
            };
            self.cache.insert(x.index() as u32, b);
        }
        self.cache[&(e.index() as u32)]
    }

    /// Compiles the whole tree, farming independent modules out to
    /// `workers` threads.
    ///
    /// The tree's *maximal proper modules* (per
    /// [`modules::top_modules`]) partition into per-worker batches by
    /// longest-processing-time order; each worker compiles its batch in a
    /// private arena over **the same variable order**, and the resulting
    /// diagrams are stitched into this manager with
    /// [`Manager::import_many`]. Because ROBDDs are canonical per order,
    /// the stitched diagrams are node-for-node identical to a sequential
    /// [`TreeBdd::element_bdd`] compile — parallelism is a construction
    /// strategy, not a semantics change. The remainder of the tree (the
    /// spine above the modules) compiles sequentially on the caller
    /// thread, reusing the stitched module diagrams from the cache.
    ///
    /// With `workers <= 1`, or fewer than two sizeable modules, this
    /// falls back to the sequential compile (same result, `workers: 1`
    /// in the stats).
    ///
    /// # Panics
    ///
    /// Panics if `tree` is not the tree this `TreeBdd` was created for.
    pub fn compile_parallel(&mut self, tree: &FaultTree, workers: usize) -> ParallelCompileStats {
        assert_eq!(
            tree.len(),
            self.tree_len,
            "TreeBdd used with a different tree"
        );
        // Below this cone size the thread hand-off costs more than the
        // compile; such modules ride along with the sequential spine.
        const MIN_CONE: usize = 16;
        let start = Instant::now();
        let candidates: Vec<ElementId> = modules::top_modules(tree, MIN_CONE)
            .into_iter()
            .filter(|m| !self.cache.contains_key(&(m.index() as u32)))
            .collect();
        if workers <= 1 || candidates.len() < 2 {
            let modules_detected = candidates.len();
            self.element_bdd(tree, tree.top());
            return ParallelCompileStats {
                workers: 1,
                modules_detected,
                modules: Vec::new(),
                stitch_micros: 0,
                total_micros: start.elapsed().as_micros() as u64,
            };
        }

        // Longest-processing-time partition: largest cones first, each to
        // the currently least-loaded worker.
        let cones: Vec<usize> = candidates
            .iter()
            .map(|&m| modules::cone(tree, m).len())
            .collect();
        let nworkers = workers.min(candidates.len());
        let mut by_size: Vec<usize> = (0..candidates.len()).collect();
        by_size.sort_by_key(|&i| std::cmp::Reverse(cones[i]));
        let mut batches: Vec<Vec<ElementId>> = vec![Vec::new(); nworkers];
        let mut load = vec![0usize; nworkers];
        for i in by_size {
            let w = (0..nworkers)
                .min_by_key(|&w| load[w])
                .unwrap_or_else(|| unreachable!("nonempty"));
            batches[w].push(candidates[i]);
            load[w] += cones[i];
        }

        // Per-worker compiles in private arenas, same variable order.
        let order = self.order.clone();
        type WorkerOut = (TreeBdd, Vec<(ElementId, usize, u64)>);
        let results: Vec<WorkerOut> = std::thread::scope(|s| {
            let handles: Vec<_> = batches
                .iter()
                .map(|batch| {
                    let order = order.clone();
                    s.spawn(move || {
                        let mut wtb = TreeBdd::with_order(tree, order);
                        let mut per_module = Vec::with_capacity(batch.len());
                        for &root in batch {
                            let t0 = Instant::now();
                            let f = wtb.element_bdd(tree, root);
                            let micros = t0.elapsed().as_micros() as u64;
                            per_module.push((root, wtb.manager().node_count(f), micros));
                        }
                        (wtb, per_module)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| unreachable!("module compile worker panicked"))
                })
                .collect()
        });

        // Stitch: import every worker's cached element translation into
        // the parent arena. Module cones are disjoint, so entries never
        // collide across workers; hash-consing deduplicates any shared
        // structure anyway.
        let stitch_start = Instant::now();
        let mut module_stats = Vec::with_capacity(candidates.len());
        for (w, (wtb, per_module)) in results.iter().enumerate() {
            let mut entries: Vec<(u32, Bdd)> = wtb.cache.iter().map(|(&k, &b)| (k, b)).collect();
            entries.sort_unstable_by_key(|&(k, _)| k);
            let roots: Vec<Bdd> = entries.iter().map(|&(_, b)| b).collect();
            let imported = self.manager.import_many(wtb.manager(), &roots);
            for (&(k, _), &b) in entries.iter().zip(&imported) {
                self.cache.insert(k, b);
            }
            for &(root, nodes, micros) in per_module {
                let cone = cones[candidates
                    .iter()
                    .position(|&c| c == root)
                    .unwrap_or_else(|| unreachable!("candidate"))];
                module_stats.push(ModuleCompileStat {
                    root,
                    cone,
                    nodes,
                    micros,
                    worker: w,
                });
            }
        }
        let stitch_micros = stitch_start.elapsed().as_micros() as u64;
        module_stats.sort_by_key(|m| m.root.index());

        // The spine above the modules compiles sequentially, hitting the
        // freshly stitched cache at every module root.
        self.element_bdd(tree, tree.top());
        // The stitched arena must satisfy every invariant the workers'
        // private arenas did: canonical unique table, sound caches,
        // children below parents (debug builds only — `audit` walks the
        // whole arena).
        #[cfg(debug_assertions)]
        {
            let report = self.manager.audit();
            assert!(
                report.is_ok(),
                "post-parallel-compile arena audit failed: {report}"
            );
        }
        ParallelCompileStats {
            workers: nworkers,
            modules_detected: candidates.len(),
            modules: module_stats,
            stitch_micros,
            total_micros: start.elapsed().as_micros() as u64,
        }
    }

    /// Evaluates a BDD under a status vector (basic-index aligned).
    ///
    /// Primed variables evaluate to `false`; they never occur in gate
    /// translations.
    pub fn eval_vector(&self, tree: &FaultTree, f: Bdd, b: &StatusVector) -> bool {
        assert_eq!(b.len(), tree.num_basic_events(), "vector length");
        self.manager.eval(f, |v| {
            if v.index() % 2 != 0 {
                return false;
            }
            let pos = (v.index() / 2) as usize;
            let e = self.order[pos];
            b.get(tree.basic_index(e).unwrap_or_else(|| unreachable!("basic")))
        })
    }

    /// Bdd handles of every cached element translation — the root set a
    /// garbage collection must keep alive (plus whatever the caller owns).
    pub fn roots(&self) -> Vec<Bdd> {
        let mut roots: Vec<Bdd> = self.cache.values().copied().collect();
        roots.sort_unstable();
        roots.dedup();
        roots
    }

    /// Live nodes reachable from the cached element translations and
    /// `extra` (terminals included) — the arena size a collection with the
    /// same roots would reach.
    pub fn live_node_count(&self, extra: &[Bdd]) -> usize {
        let mut roots = self.roots();
        roots.extend_from_slice(extra);
        self.manager.live_size(&roots)
    }

    /// Mark-and-sweep garbage collection: keeps every cached element
    /// translation (remapping the cache through the compaction) and
    /// reclaims everything else. See
    /// [`Manager::collect_garbage`].
    pub fn collect_garbage(&mut self) -> GcStats {
        self.collect_garbage_with(&mut [])
    }

    /// Like [`TreeBdd::collect_garbage`], additionally rooting the
    /// handles in `extra` and rewriting them in place to their remapped
    /// values.
    pub fn collect_garbage_with(&mut self, extra: &mut [Bdd]) -> GcStats {
        let mut roots = self.roots();
        roots.extend_from_slice(extra);
        let gc = self.manager.collect_garbage(&roots);
        for b in self.cache.values_mut() {
            *b = gc
                .remap(*b)
                .unwrap_or_else(|| unreachable!("rooted translation survives the sweep"));
        }
        for b in extra.iter_mut() {
            *b = gc
                .remap(*b)
                .unwrap_or_else(|| unreachable!("rooted handle survives the sweep"));
        }
        gc.stats()
    }

    /// Rudell sifting over glued *(event, primed)* variable pairs,
    /// steered by the cached element translations.
    ///
    /// Pairs move as blocks, so the interleaving invariant (each primed
    /// variable immediately below its event) survives and `MCS`/`MPS`
    /// renaming stays order-preserving. The element cache is remapped
    /// through any interleaved compaction; handles obtained *before* the
    /// sift (outside the cache) must be passed through
    /// [`TreeBdd::sift_with_extra_roots`] or re-fetched via
    /// [`TreeBdd::element_bdd`]. Run [`TreeBdd::collect_garbage`]
    /// afterwards to reclaim the final round of swap debris.
    pub fn sift(&mut self) -> SiftStats {
        self.sift_with_extra_roots(&mut [])
    }

    /// Like [`TreeBdd::sift`], with additional caller-owned roots that
    /// steer the live-size metric and are rewritten in place when the
    /// sift compacts the arena (e.g. formula-translation caches of the
    /// layer above).
    pub fn sift_with_extra_roots(&mut self, extra: &mut [Bdd]) -> SiftStats {
        let mut entries: Vec<(u32, Bdd)> = self.cache.drain().collect();
        let mut roots: Vec<Bdd> = entries.iter().map(|&(_, b)| b).collect();
        roots.extend_from_slice(extra);
        let stats = self.manager.sift_with(
            &mut roots,
            SiftOptions {
                group: 2,
                ..SiftOptions::default()
            },
        );
        for (entry, &new) in entries.iter_mut().zip(&roots) {
            entry.1 = new;
        }
        for (slot, &new) in extra.iter_mut().zip(&roots[entries.len()..]) {
            *slot = new;
        }
        self.cache = entries.into_iter().collect();
        stats
    }

    /// Drops every cached element translation except `keep` (and their
    /// handles with them) — typically called before maintenance so dead
    /// cones neither anchor the garbage collection nor steer the sifting
    /// metric. Dropped elements recompile on the next
    /// [`TreeBdd::element_bdd`] call.
    pub fn retain_elements(&mut self, keep: &[ElementId]) {
        let keep: std::collections::HashSet<u32> = keep.iter().map(|e| e.index() as u32).collect();
        self.cache.retain(|k, _| keep.contains(k));
    }

    /// Converts a full assignment over the *unprimed* variables (aligned
    /// with [`TreeBdd::unprimed_vars`]) into a status vector aligned with
    /// basic indices.
    pub fn vector_from_positions(&self, tree: &FaultTree, assignment: &[bool]) -> StatusVector {
        assert_eq!(assignment.len(), self.order.len(), "assignment length");
        let mut v = StatusVector::all_operational(tree.num_basic_events());
        for (pos, &val) in assignment.iter().enumerate() {
            let e = self.order[pos];
            v.set(
                tree.basic_index(e).unwrap_or_else(|| unreachable!("basic")),
                val,
            );
        }
        v
    }
}

/// "At least `k` of `children` hold", built by dynamic programming over
/// Shannon expansions — size `O(k · Σ|child|)` instead of the exponential
/// subset expansion of Definition 6.
pub fn vot_threshold(m: &mut Manager, children: &[Bdd], k: u32) -> Bdd {
    let k = k as usize;
    if k == 0 {
        return m.top();
    }
    if k > children.len() {
        return m.bot();
    }
    // row[j] = "at least j of the children seen so far" (j in 0..=k).
    let mut row = vec![m.bot(); k + 1];
    row[0] = m.top();
    for &c in children {
        for j in (1..=k).rev() {
            let take = m.ite(c, row[j - 1], row[j]);
            row[j] = take;
        }
    }
    row[k]
}

/// The literal `VOT(k/N)` expansion of Definition 6:
/// `⋁_{n1<…<nk} ⋀_{i=1..k} Ψ(e_ni)` — an OR over all `k`-subsets.
///
/// Exponential in `N`; retained for the `ablation_vot` benchmark and as a
/// cross-check of [`vot_threshold`].
pub fn vot_naive(m: &mut Manager, children: &[Bdd], k: u32) -> Bdd {
    let k = k as usize;
    if k == 0 {
        return m.top();
    }
    if k > children.len() {
        return m.bot();
    }
    let n = children.len();
    let mut acc = m.bot();
    // Iterate over all k-subsets via combination indices.
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        let term = m.and_all(idx.iter().map(|&i| children[i]));
        acc = m.or(acc, term);
        // Next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return acc;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return acc;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{corpus, FaultTreeBuilder, GateType};

    #[test]
    fn or_gate_translation_matches_fig3() {
        let tree = corpus::or2();
        let mut tb = TreeBdd::new(&tree, VariableOrdering::DfsPreorder);
        let top = tb.element_bdd(&tree, tree.top());
        // Fig. 3: BDD with two decision nodes (e1, e2) plus terminals.
        assert_eq!(tb.manager().node_count(top), 4);
        for v in StatusVector::enumerate_all(2) {
            assert_eq!(tb.eval_vector(&tree, top, &v), v.count_failed() >= 1);
        }
    }

    #[test]
    fn translation_matches_structure_function_exhaustively() {
        let tree = corpus::covid();
        let mut tb = TreeBdd::new(&tree, VariableOrdering::DfsPreorder);
        // Check every element on a sample of vectors.
        for seed in 0..200u64 {
            let bits: Vec<bool> = (0..tree.num_basic_events())
                .map(|i| (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (i % 61)) & 1 == 1)
                .collect();
            let b = StatusVector::from_bits(bits);
            let statuses = tree.evaluate_all(&b);
            for e in tree.iter() {
                let f = tb.element_bdd(&tree, e);
                assert_eq!(
                    tb.eval_vector(&tree, f, &b),
                    statuses[e.index()],
                    "element {} vector {}",
                    tree.name(e),
                    b
                );
            }
        }
    }

    #[test]
    fn vot_threshold_equals_vot_naive() {
        let mut m = Manager::new(12);
        let vars: Vec<Bdd> = (0..5).map(|i| m.var(Var(2 * i))).collect();
        for k in 0..=6u32 {
            let a = vot_threshold(&mut m, &vars, k);
            let b = vot_naive(&mut m, &vars, k);
            assert_eq!(a, b, "k={k}");
        }
    }

    #[test]
    fn vot_gate_in_tree() {
        let mut b = FaultTreeBuilder::new();
        b.basic_events(["a", "b", "c", "d"]).unwrap();
        b.gate("top", GateType::Vot { k: 3 }, ["a", "b", "c", "d"])
            .unwrap();
        let tree = b.build("top").unwrap();
        let mut tb = TreeBdd::new(&tree, VariableOrdering::Declaration);
        let top = tb.element_bdd(&tree, tree.top());
        for v in StatusVector::enumerate_all(4) {
            assert_eq!(tb.eval_vector(&tree, top, &v), v.count_failed() >= 3, "{v}");
        }
    }

    #[test]
    fn shared_subtrees_translated_once() {
        let tree = corpus::covid();
        let mut tb = TreeBdd::new(&tree, VariableOrdering::DfsPreorder);
        let _ = tb.element_bdd(&tree, tree.top());
        // After translating the top, every element is cached.
        for e in tree.iter() {
            assert!(
                tb.cache.contains_key(&(e.index() as u32)),
                "{}",
                tree.name(e)
            );
        }
    }

    #[test]
    fn var_maps_are_bijections() {
        let tree = corpus::covid();
        let tb = TreeBdd::new(&tree, VariableOrdering::BouissouWeight);
        for bi in 0..tree.num_basic_events() {
            let v = tb.var_of_basic(bi);
            assert_eq!(tb.basic_of_var(v), Some(bi));
            assert_eq!(tb.primed_var_of_basic(bi).index(), v.index() + 1);
        }
        assert_eq!(tb.basic_of_var(Var(1)), None);
    }

    #[test]
    fn sift_preserves_semantics_and_pairing() {
        let tree = corpus::covid();
        let mut tb = TreeBdd::new(&tree, VariableOrdering::DfsPreorder);
        let _ = tb.element_bdd(&tree, tree.top());
        let stats = tb.sift();
        // Re-fetch through the (remapped) cache: a sift may compact.
        let top = tb.element_bdd(&tree, tree.top());
        assert!(stats.live_after <= stats.live_before);
        // Pairs stay glued: primed immediately below its event.
        for bi in 0..tree.num_basic_events() {
            let v = tb.var_of_basic(bi);
            let p = tb.primed_var_of_basic(bi);
            assert_eq!(
                tb.manager().level_of(v) + 1,
                tb.manager().level_of(p),
                "pair for basic {bi} split"
            );
        }
        // The handle survived and still computes the structure function.
        for seed in 0..50u64 {
            let bits: Vec<bool> = (0..tree.num_basic_events())
                .map(|i| (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (i % 61)) & 1 == 1)
                .collect();
            let b = StatusVector::from_bits(bits);
            assert_eq!(
                tb.eval_vector(&tree, top, &b),
                tree.evaluate(&b, tree.top()),
                "{b}"
            );
        }
    }

    #[test]
    fn gc_remaps_the_element_cache() {
        let tree = corpus::covid();
        let mut tb = TreeBdd::new(&tree, VariableOrdering::DfsPreorder);
        let _ = tb.element_bdd(&tree, tree.top());
        // Build scratch diagrams that become garbage.
        let m = tb.manager_mut();
        let x = m.var(Var(0));
        let y = m.var(Var(2));
        let _scratch = m.xor(x, y);
        let before = tb.manager().arena_size();
        let stats = tb.collect_garbage();
        assert_eq!(stats.arena_before, before);
        assert!(tb.manager().arena_size() <= before);
        // Cached translations were remapped and still evaluate correctly.
        let top = tb.element_bdd(&tree, tree.top());
        for v in [
            StatusVector::from_failed_names(&tree, &["IW", "H3", "PP", "H1", "VW"]),
            StatusVector::all_operational(tree.num_basic_events()),
        ] {
            assert_eq!(
                tb.eval_vector(&tree, top, &v),
                tree.evaluate(&v, tree.top()),
                "{v}"
            );
        }
    }

    #[test]
    fn sift_then_gc_shrinks_the_arena_to_live() {
        let tree = corpus::covid();
        let mut tb = TreeBdd::new(&tree, VariableOrdering::DfsPreorder);
        let _ = tb.element_bdd(&tree, tree.top());
        let stats = tb.sift();
        tb.collect_garbage();
        assert_eq!(tb.manager().arena_size(), stats.live_after);
    }

    #[test]
    fn parallel_compile_is_node_for_node_sequential() {
        let tree = crate::generator::industrial_tree(&crate::generator::IndustrialConfig {
            num_basic: 300,
            num_modules: 6,
            ..Default::default()
        });
        let mut seq = TreeBdd::new(&tree, VariableOrdering::DfsPreorder);
        let _ = seq.element_bdd(&tree, tree.top());
        for workers in [1, 2, 4] {
            let mut par = TreeBdd::new(&tree, VariableOrdering::DfsPreorder);
            let stats = par.compile_parallel(&tree, workers);
            assert!(stats.workers >= 1);
            if workers >= 2 {
                assert!(stats.modules_detected >= 2, "corpus tree has modules");
                assert_eq!(stats.modules.len(), stats.modules_detected);
            }
            for e in tree.iter() {
                let fs = seq.element_bdd(&tree, e);
                let fp = par.element_bdd(&tree, e);
                assert_eq!(
                    seq.manager().node_count(fs),
                    par.manager().node_count(fp),
                    "node count of {} with {workers} workers",
                    tree.name(e)
                );
            }
            // Spot-check semantics on random vectors.
            let top_s = seq.element_bdd(&tree, tree.top());
            let top_p = par.element_bdd(&tree, tree.top());
            for seed in 0..20u64 {
                let bits: Vec<bool> = (0..tree.num_basic_events())
                    .map(|i| (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (i % 61)) & 1 == 1)
                    .collect();
                let b = StatusVector::from_bits(bits);
                assert_eq!(
                    seq.eval_vector(&tree, top_s, &b),
                    par.eval_vector(&tree, top_p, &b)
                );
            }
        }
    }

    #[test]
    fn parallel_compile_falls_back_without_modules() {
        // covid has no proper modules of cone >= 16: sequential fallback.
        let tree = corpus::covid();
        let mut tb = TreeBdd::new(&tree, VariableOrdering::DfsPreorder);
        let stats = tb.compile_parallel(&tree, 4);
        assert_eq!(stats.workers, 1);
        assert!(stats.modules.is_empty());
        let top = tb.element_bdd(&tree, tree.top());
        let mut seq = TreeBdd::new(&tree, VariableOrdering::DfsPreorder);
        let tops = seq.element_bdd(&tree, tree.top());
        assert_eq!(tb.manager().node_count(top), seq.manager().node_count(tops));
    }

    #[test]
    #[should_panic(expected = "different tree")]
    fn tree_identity_checked() {
        let t1 = corpus::fig1();
        let t2 = corpus::covid();
        let mut tb = TreeBdd::new(&t1, VariableOrdering::DfsPreorder);
        let _ = tb.element_bdd(&t2, t2.top());
    }
}
