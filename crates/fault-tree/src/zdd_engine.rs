//! Bottom-up minimal-cut-set computation on zero-suppressed decision
//! diagrams — Rauzy's classical algorithm ("New algorithms for fault
//! trees analysis", reference \[5\] of the paper), our third independent
//! MCS engine.
//!
//! Cut-set families are composed structurally: a basic event contributes
//! the singleton family `{{e}}`, an OR gate the minimised union of its
//! children's families, an AND gate the minimised product, and a
//! `VOT(k/N)` gate a dynamic program over union/product. Minimising at
//! every step is sound for coherent (monotone) trees: a dominated set
//! can only ever produce dominated compositions.
//!
//! The engine cross-checks against the `minsol` BDD engine and the
//! paper's primed construction in the test-suite, and is compared against
//! them in the `ablation_mcs_engine` benchmark.

use bfl_bdd::{Var, Zdd, ZddManager};

use crate::model::{ElementId, FaultTree, GateType};
use crate::order::VariableOrdering;

/// Minimal cut sets of `e` computed bottom-up on ZDDs, as canonically
/// ordered sets of basic-event indices (same contract as
/// [`minimal_cut_sets`](crate::analysis::minimal_cut_sets)).
pub fn minimal_cut_sets_zdd(tree: &FaultTree, e: ElementId) -> Vec<Vec<usize>> {
    let families = cut_set_families(tree, e);
    extract(tree, &families.manager, families.family_of(e))
}

/// Number of minimal cut sets of `e`, by ZDD counting.
pub fn count_minimal_cut_sets_zdd(tree: &FaultTree, e: ElementId) -> u128 {
    let families = cut_set_families(tree, e);
    families.manager.count(families.family_of(e))
}

/// The cut-set families of every element in the cone of `e`.
pub struct CutSetFamilies {
    /// The ZDD manager holding all families.
    pub manager: ZddManager,
    /// Per element index: the family handle (unset elements map to the
    /// empty family).
    families: Vec<Option<Zdd>>,
    /// basic index -> ZDD variable position.
    position: Vec<usize>,
}

impl CutSetFamilies {
    /// The family computed for `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` was outside the requested cone.
    pub fn family_of(&self, e: ElementId) -> Zdd {
        self.families[e.index()]
            .unwrap_or_else(|| unreachable!("element outside the computed cone"))
    }

    /// The ZDD variable encoding basic index `bi`.
    pub fn var_of_basic(&self, bi: usize) -> Var {
        Var(self.position[bi] as u32)
    }
}

/// Computes cut-set families bottom-up for the cone of `e`, using the DFS
/// variable ordering (shared with the BDD engines).
pub fn cut_set_families(tree: &FaultTree, e: ElementId) -> CutSetFamilies {
    let order = VariableOrdering::DfsPreorder.order(tree);
    let mut position = vec![usize::MAX; tree.num_basic_events()];
    for (pos, &be) in order.iter().enumerate() {
        position[tree
            .basic_index(be)
            .unwrap_or_else(|| unreachable!("basic"))] = pos;
    }
    let mut manager = ZddManager::new(tree.num_basic_events() as u32);
    let mut families: Vec<Option<Zdd>> = vec![None; tree.len()];

    // Iterative post-order over the cone.
    let mut stack = vec![(e, false)];
    while let Some((x, expanded)) = stack.pop() {
        if families[x.index()].is_some() {
            continue;
        }
        if let Some(bi) = tree.basic_index(x) {
            let v = Var(position[bi] as u32);
            families[x.index()] = Some(manager.singleton(v));
            continue;
        }
        if !expanded {
            stack.push((x, true));
            for &c in tree.children(x) {
                stack.push((c, false));
            }
            continue;
        }
        let children: Vec<Zdd> = tree
            .children(x)
            .iter()
            .map(|c| families[c.index()].unwrap_or_else(|| unreachable!("post-order")))
            .collect();
        let family = match tree.gate_type(x).unwrap_or_else(|| unreachable!("gate")) {
            GateType::Or => {
                let mut acc = manager.empty();
                for c in children {
                    acc = manager.union(acc, c);
                }
                manager.minimal(acc)
            }
            GateType::And => {
                let mut acc = manager.unit();
                for c in children {
                    acc = manager.product(acc, c);
                    acc = manager.minimal(acc);
                }
                acc
            }
            GateType::Vot { k } => vot_family(&mut manager, &children, k),
        };
        families[x.index()] = Some(family);
    }
    CutSetFamilies {
        manager,
        families,
        position,
    }
}

/// "At least `k` of `children` fail" as a cut-set family, by the same
/// dynamic program as the BDD translation, with minimisation per step.
fn vot_family(m: &mut ZddManager, children: &[Zdd], k: u32) -> Zdd {
    let k = k as usize;
    if k == 0 {
        return m.unit();
    }
    if k > children.len() {
        return m.empty();
    }
    let mut row: Vec<Zdd> = vec![m.empty(); k + 1];
    row[0] = m.unit();
    for &c in children {
        for j in (1..=k).rev() {
            let with = m.product(c, row[j - 1]);
            let u = m.union(with, row[j]);
            row[j] = m.minimal(u);
        }
    }
    row[k]
}

fn extract(tree: &FaultTree, manager: &ZddManager, family: Zdd) -> Vec<Vec<usize>> {
    // Invert position -> basic index.
    let order = VariableOrdering::DfsPreorder.order(tree);
    let mut sets: Vec<Vec<usize>> = manager
        .sets(family)
        .into_iter()
        .map(|vars| {
            let mut s: Vec<usize> = vars
                .into_iter()
                .map(|v| {
                    tree.basic_index(order[v.0 as usize])
                        .unwrap_or_else(|| unreachable!("basic"))
                })
                .collect();
            s.sort_unstable();
            s
        })
        .collect();
    sets.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    sets.dedup();
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analysis, corpus};

    #[test]
    fn agrees_with_minsol_on_corpus() {
        for tree in [
            corpus::fig1(),
            corpus::covid(),
            corpus::table1_tree(),
            corpus::pressure_tank(),
            corpus::attack_tree(),
            corpus::kofn(2, 4),
            corpus::kofn(3, 5),
        ] {
            assert_eq!(
                minimal_cut_sets_zdd(&tree, tree.top()),
                analysis::minimal_cut_sets(&tree, tree.top()),
                "{}",
                tree.name(tree.top())
            );
        }
    }

    #[test]
    fn agrees_on_intermediate_elements() {
        let tree = corpus::covid();
        for name in ["MoT", "CT", "CIS", "SH", "CP/R"] {
            let e = tree.element(name).unwrap();
            assert_eq!(
                minimal_cut_sets_zdd(&tree, e),
                analysis::minimal_cut_sets(&tree, e),
                "{name}"
            );
        }
    }

    #[test]
    fn count_matches_enumeration() {
        let tree = corpus::covid();
        assert_eq!(count_minimal_cut_sets_zdd(&tree, tree.top()), 12);
        assert_eq!(
            count_minimal_cut_sets_zdd(&tree, tree.top()),
            analysis::count_minimal_cut_sets(&tree, tree.top())
        );
    }

    #[test]
    fn counting_scales_on_deep_chains() {
        let tree = corpus::chain(10);
        let zdd_count = count_minimal_cut_sets_zdd(&tree, tree.top());
        let bdd_count = analysis::count_minimal_cut_sets(&tree, tree.top());
        assert_eq!(zdd_count, bdd_count);
        assert!(zdd_count > 1_000_000_000);
    }

    #[test]
    fn repeated_events_handled() {
        // top = AND(OR(x, y), x): MCS = {{x}} despite the repetition.
        let mut b = crate::FaultTreeBuilder::new();
        b.basic_events(["x", "y"]).unwrap();
        b.gate("g", crate::GateType::Or, ["x", "y"]).unwrap();
        b.gate("top", crate::GateType::And, ["g", "x"]).unwrap();
        let tree = b.build("top").unwrap();
        assert_eq!(minimal_cut_sets_zdd(&tree, tree.top()), vec![vec![0]]);
    }
}
