//! # `bfl-fault-tree` — static fault trees and their analysis
//!
//! This crate implements the fault-tree substrate of *"BFL: a Logic to
//! Reason about Fault Trees"* (Nicoletti, Hahn & Stoelinga, DSN 2022):
//!
//! * the fault-tree formalism of Definition 1 — directed acyclic graphs of
//!   *basic events* and *intermediate events* with `AND`, `OR` and
//!   `VOT(k/N)` gates, shared subtrees and repeated basic events
//!   ([`FaultTree`], [`FaultTreeBuilder`]);
//! * the structure function `Φ_T` of Definition 2 ([`FaultTree::evaluate`]);
//! * cut sets, path sets and their minimal variants (Definitions 3 and 4),
//!   computed by two independent engines: the paper's primed-variable BDD
//!   construction and Rauzy's `minsol` algorithm
//!   ([`analysis`]);
//! * the `Ψ_FT` BDD translation of Definition 6 ([`bdd`]);
//! * variable-ordering heuristics for the translation ([`order`]);
//! * a Galileo-style textual format ([`galileo`]);
//! * a probability layer (the paper's first future-work item) computing
//!   exact top-event probabilities and importance measures ([`prob`]);
//! * a seeded random fault-tree generator for benchmarks and
//!   property-based tests ([`generator`]);
//! * the paper's example trees, including the reconstructed COVID-19 case
//!   study of Fig. 2 ([`corpus`]).
//!
//! ## Quickstart
//!
//! ```
//! use bfl_fault_tree::{FaultTreeBuilder, GateType};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The fault tree of Fig. 1: existence of COVID-19 pathogens/reservoir.
//! let mut b = FaultTreeBuilder::new();
//! b.basic_events(["IW", "H3", "IT", "H2"])?;
//! b.gate("CP", GateType::And, ["IW", "H3"])?;
//! b.gate("CR", GateType::And, ["IT", "H2"])?;
//! b.gate("CP/R", GateType::Or, ["CP", "CR"])?;
//! let tree = b.build("CP/R")?;
//!
//! let mcs = bfl_fault_tree::analysis::minimal_cut_sets_names(&tree, tree.top());
//! assert_eq!(mcs, vec![
//!     vec!["IT".to_string(), "H2".to_string()],
//!     vec!["IW".to_string(), "H3".to_string()],
//! ].into_iter().map(|mut v| { v.sort(); v }).collect::<Vec<_>>());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod backend;
pub mod bdd;
pub mod builder;
pub mod corpus;
pub mod dot;
pub mod galileo;
pub mod generator;
pub mod model;
pub mod modules;
pub mod order;
pub mod prob;
pub mod rng;
pub mod status;
pub mod structure;
pub mod zdd_engine;

pub use backend::{Backend, CutSetEngine};
pub use builder::FaultTreeBuilder;
pub use model::{ElementId, FaultTree, FaultTreeError, GateType};
pub use order::VariableOrdering;
pub use status::StatusVector;
