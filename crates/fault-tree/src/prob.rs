//! Probability layer — the paper's first future-work item ("extend BFL to
//! model probabilities").
//!
//! Given independent basic-event failure probabilities, the top-event
//! (or any element's) failure probability is computed *exactly* by a
//! Shannon recursion over the element's BDD — the classical
//! Rauzy-style quantitative fault-tree analysis. On top of it we provide
//! the two most common importance measures.
//!
//! Every entry point taking a user-supplied probability vector is
//! **fallible**: malformed vectors come back as `Err(String)` (the
//! message of [`validate_probabilities`]), never as panics. `bfl-core`
//! maps these into `BflError::InvalidProbability`.

use std::collections::HashMap;
use std::fmt;

use bfl_bdd::Bdd;

use crate::bdd::TreeBdd;
use crate::model::{ElementId, FaultTree};

/// A closed probability interval `[lo, hi] ⊆ [0, 1]`.
///
/// Interval annotations model epistemic uncertainty about a basic
/// event's failure probability (failure-rate handbooks typically give
/// bounds, not points). A point probability `p` is the degenerate
/// interval `[p, p]`.
///
/// # Correlation-oblivious conditionals
///
/// Conditional envelopes `P(ϕ | ψ)` are computed by dividing the joint
/// and conditioning envelopes endpoint-wise,
/// `[joint.lo / base.hi, joint.hi / base.lo]`. The two envelopes are
/// propagated *independently*, so the division ignores that the same
/// annotation choice drives both numerator and denominator: the raw
/// ratio can exceed `1` (e.g. `joint.hi` paired with a `base.lo` that
/// cannot co-occur with it). Results are therefore clamped back to
/// `[0, 1]` — the bounds stay *sound* (they bracket every point
/// choice) but are wider than a correlation-aware division would give.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbInterval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint (`lo ≤ hi`).
    pub hi: f64,
}

impl ProbInterval {
    /// A validated interval.
    ///
    /// # Errors
    ///
    /// A message if an endpoint is outside `[0, 1]`, not finite, or the
    /// endpoints are inverted.
    pub fn new(lo: f64, hi: f64) -> Result<Self, String> {
        if !lo.is_finite() || !hi.is_finite() || !(0.0..=1.0).contains(&lo) {
            return Err(format!(
                "interval [{lo}, {hi}] has endpoints outside [0, 1]"
            ));
        }
        if !(0.0..=1.0).contains(&hi) {
            return Err(format!(
                "interval [{lo}, {hi}] has endpoints outside [0, 1]"
            ));
        }
        if lo > hi {
            return Err(format!("interval [{lo}, {hi}] has lo > hi"));
        }
        Ok(ProbInterval { lo, hi })
    }

    /// The degenerate interval `[p, p]` (validated).
    ///
    /// # Errors
    ///
    /// A message if `p` is outside `[0, 1]` or not finite.
    pub fn point(p: f64) -> Result<Self, String> {
        ProbInterval::new(p, p)
    }

    /// Whether the interval is a single point (`lo == hi`).
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// The interval width `hi − lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

impl fmt::Display for ProbInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_point() {
            write!(f, "{}", self.lo)
        } else {
            write!(f, "{}..{}", self.lo, self.hi)
        }
    }
}

/// Validates an interval slice (one entry per basic index).
///
/// # Errors
///
/// Returns a message naming the offending basic event if the length is
/// wrong or an interval is malformed (endpoint outside `[0, 1]`, not
/// finite, or `lo > hi`).
pub fn validate_intervals(tree: &FaultTree, intervals: &[ProbInterval]) -> Result<(), String> {
    if intervals.len() != tree.num_basic_events() {
        return Err(format!(
            "expected {} intervals, got {}",
            tree.num_basic_events(),
            intervals.len()
        ));
    }
    for (i, iv) in intervals.iter().enumerate() {
        ProbInterval::new(iv.lo, iv.hi)
            .map_err(|msg| format!("interval of `{}`: {msg}", tree.name(tree.basic_events()[i])))?;
    }
    Ok(())
}

/// Validates a probability slice (one entry per basic index).
///
/// # Errors
///
/// Returns a message naming the offending basic event if the length is
/// wrong or a value is outside `[0, 1]` or not finite.
pub fn validate_probabilities(tree: &FaultTree, probs: &[f64]) -> Result<(), String> {
    if probs.len() != tree.num_basic_events() {
        return Err(format!(
            "expected {} probabilities, got {}",
            tree.num_basic_events(),
            probs.len()
        ));
    }
    for (i, &p) in probs.iter().enumerate() {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(format!(
                "probability of `{}` is {p}, outside [0, 1]",
                tree.name(tree.basic_events()[i])
            ));
        }
    }
    Ok(())
}

/// Exact failure probability of the function `f` under independent
/// basic-event probabilities `probs` (indexed by basic index).
///
/// # Errors
///
/// The message of [`validate_probabilities`] if `probs` is malformed.
///
/// # Panics
///
/// Panics if `f` mentions primed variables (query BDDs never do).
pub fn bdd_probability(
    tree: &FaultTree,
    tb: &TreeBdd,
    f: Bdd,
    probs: &[f64],
) -> Result<f64, String> {
    validate_probabilities(tree, probs)?;
    let mut memo: HashMap<u32, f64> = HashMap::new();
    Ok(bdd_probability_with_memo(tb, f, probs, &mut memo))
}

/// The node-keyed Shannon walk behind [`bdd_probability`]: delegates to
/// [`bfl_bdd::Manager::probability_with_memo`] with this `TreeBdd`'s
/// variable-to-basic-index map, sharing the memo across roots.
///
/// # Panics
///
/// Panics if `f` mentions primed variables (query BDDs never do).
pub fn bdd_probability_with_memo(
    tb: &TreeBdd,
    f: Bdd,
    probs: &[f64],
    memo: &mut HashMap<u32, f64>,
) -> f64 {
    tb.manager().probability_with_memo(
        f,
        &|v| {
            let bi = tb
                .basic_of_var(v)
                .unwrap_or_else(|| unreachable!("probability of a primed variable"));
            probs[bi]
        },
        memo,
    )
}

/// Interval twin of [`bdd_probability`]: conservative `[lo, hi]` bounds
/// on the failure probability of `f` when each basic event's probability
/// is only known to lie in an interval.
///
/// # Errors
///
/// The message of [`validate_intervals`] if `intervals` is malformed.
///
/// # Panics
///
/// Panics if `f` mentions primed variables (query BDDs never do).
pub fn bdd_probability_interval(
    tree: &FaultTree,
    tb: &TreeBdd,
    f: Bdd,
    intervals: &[ProbInterval],
) -> Result<ProbInterval, String> {
    validate_intervals(tree, intervals)?;
    let mut memo: HashMap<u32, (f64, f64)> = HashMap::new();
    Ok(bdd_probability_interval_with_memo(
        tb, f, intervals, &mut memo,
    ))
}

/// The node-keyed interval Shannon walk behind
/// [`bdd_probability_interval`], sharing the memo across roots. Same
/// memo lifetime rules as [`bdd_probability_with_memo`].
///
/// # Panics
///
/// Panics if `f` mentions primed variables (query BDDs never do).
pub fn bdd_probability_interval_with_memo(
    tb: &TreeBdd,
    f: Bdd,
    intervals: &[ProbInterval],
    memo: &mut HashMap<u32, (f64, f64)>,
) -> ProbInterval {
    let (lo, hi) = tb.manager().probability_interval_with_memo(
        f,
        &|v| {
            let bi = tb
                .basic_of_var(v)
                .unwrap_or_else(|| unreachable!("probability of a primed variable"));
            (intervals[bi].lo, intervals[bi].hi)
        },
        memo,
    );
    // The Shannon walk is closed over [0, 1] in exact arithmetic, but
    // float rounding can nudge an endpoint just past it; clamp so every
    // published envelope is a well-formed probability interval. In-range
    // values pass through bit-identically (degenerate [p, p] inputs must
    // keep reproducing the exact walk exactly).
    ProbInterval {
        lo: lo.clamp(0.0, 1.0),
        hi: hi.clamp(0.0, 1.0),
    }
}

/// Interval failure probability of element `e` of `tree`.
///
/// # Example
///
/// ```
/// use bfl_fault_tree::{corpus, prob};
/// use bfl_fault_tree::prob::ProbInterval;
/// let tree = corpus::or2();
/// let ivs = [
///     ProbInterval::new(0.1, 0.3).unwrap(),
///     ProbInterval::point(0.2).unwrap(),
/// ];
/// // P(Top) with P(e1) ∈ [0.1, 0.3]: [0.28, 0.44]
/// let p = prob::element_probability_interval(&tree, tree.top(), &ivs).unwrap();
/// assert!((p.lo - 0.28).abs() < 1e-12 && (p.hi - 0.44).abs() < 1e-12);
/// ```
///
/// # Errors
///
/// The message of [`validate_intervals`] if `intervals` is malformed.
pub fn element_probability_interval(
    tree: &FaultTree,
    e: ElementId,
    intervals: &[ProbInterval],
) -> Result<ProbInterval, String> {
    let mut tb = TreeBdd::new(tree, crate::order::VariableOrdering::DfsPreorder);
    let f = tb.element_bdd(tree, e);
    bdd_probability_interval(tree, &tb, f, intervals)
}

/// Exact failure probability of element `e` of `tree`.
///
/// # Example
///
/// ```
/// use bfl_fault_tree::{corpus, prob};
/// let tree = corpus::or2();
/// // P(Top) = 1 - (1-0.1)(1-0.2) = 0.28
/// let p = prob::element_probability(&tree, tree.top(), &[0.1, 0.2]).unwrap();
/// assert!((p - 0.28).abs() < 1e-12);
/// // Malformed vectors are errors, not panics.
/// assert!(prob::element_probability(&tree, tree.top(), &[0.1]).is_err());
/// ```
///
/// # Errors
///
/// The message of [`validate_probabilities`] if `probs` is malformed.
pub fn element_probability(tree: &FaultTree, e: ElementId, probs: &[f64]) -> Result<f64, String> {
    let mut tb = TreeBdd::new(tree, crate::order::VariableOrdering::DfsPreorder);
    let f = tb.element_bdd(tree, e);
    bdd_probability(tree, &tb, f, probs)
}

/// Top-event unreliability.
///
/// # Errors
///
/// As for [`element_probability`].
pub fn top_event_probability(tree: &FaultTree, probs: &[f64]) -> Result<f64, String> {
    element_probability(tree, tree.top(), probs)
}

/// Birnbaum importance of basic event `be` for element `e`:
/// `I_B = P(e fails | be failed) − P(e fails | be operational)`.
///
/// # Errors
///
/// A message naming `be` if it is not a basic event of the tree, or the
/// message of [`validate_probabilities`] if `probs` is malformed.
pub fn birnbaum_importance(
    tree: &FaultTree,
    e: ElementId,
    be: ElementId,
    probs: &[f64],
) -> Result<f64, String> {
    validate_probabilities(tree, probs)?;
    let bi = tree
        .basic_index(be)
        .ok_or_else(|| format!("`{}` is not a basic event", tree.name(be)))?;
    let mut hi = probs.to_vec();
    hi[bi] = 1.0;
    let mut lo = probs.to_vec();
    lo[bi] = 0.0;
    Ok(element_probability(tree, e, &hi)? - element_probability(tree, e, &lo)?)
}

/// Improvement potential of basic event `be` for element `e`:
/// `I_IP = P(e fails) − P(e fails | be operational)`.
///
/// # Errors
///
/// As for [`birnbaum_importance`].
pub fn improvement_potential(
    tree: &FaultTree,
    e: ElementId,
    be: ElementId,
    probs: &[f64],
) -> Result<f64, String> {
    validate_probabilities(tree, probs)?;
    let bi = tree
        .basic_index(be)
        .ok_or_else(|| format!("`{}` is not a basic event", tree.name(be)))?;
    let mut lo = probs.to_vec();
    lo[bi] = 0.0;
    Ok(element_probability(tree, e, probs)? - element_probability(tree, e, &lo)?)
}

/// Exhaustive reference: probability by summing over all `2^n` vectors.
/// Used as ground truth in tests.
///
/// # Errors
///
/// A message if the tree has more than 20 basic events or `probs` is
/// malformed.
pub fn probability_naive(tree: &FaultTree, e: ElementId, probs: &[f64]) -> Result<f64, String> {
    if tree.num_basic_events() > 20 {
        return Err(format!(
            "naive engine limited to 20 events, tree has {}",
            tree.num_basic_events()
        ));
    }
    validate_probabilities(tree, probs)?;
    let mut total = 0.0;
    for b in crate::status::StatusVector::enumerate_all(tree.num_basic_events()) {
        if tree.evaluate(&b, e) {
            let mut w = 1.0;
            for (i, &p) in probs.iter().enumerate() {
                w *= if b.get(i) { p } else { 1.0 - p };
            }
            total += w;
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;

    #[test]
    fn and_gate_probability_is_product() {
        let tree = corpus::fig1();
        let cp = tree.element("CP").unwrap();
        // CP = AND(IW, H3); order of basics: IW H3 IT H2
        let probs = [0.3, 0.5, 0.0, 0.0];
        let p = element_probability(&tree, cp, &probs).unwrap();
        assert!((p - 0.15).abs() < 1e-12);
    }

    #[test]
    fn matches_naive_on_covid() {
        let tree = corpus::covid();
        let n = tree.num_basic_events();
        let probs: Vec<f64> = (0..n)
            .map(|i| 0.05 + 0.9 * (i as f64) / (n as f64))
            .collect();
        let fast = top_event_probability(&tree, &probs).unwrap();
        let slow = probability_naive(&tree, tree.top(), &probs).unwrap();
        assert!((fast - slow).abs() < 1e-10, "fast={fast} slow={slow}");
    }

    #[test]
    fn repeated_events_handled_exactly() {
        // x OR x must have probability p, not 1-(1-p)^2.
        let mut b = crate::FaultTreeBuilder::new();
        b.basic_event("x").unwrap();
        b.gate("top", crate::GateType::Or, ["x", "x"]).unwrap();
        let tree = b.build("top").unwrap();
        let p = top_event_probability(&tree, &[0.3]).unwrap();
        assert!((p - 0.3).abs() < 1e-12);
    }

    #[test]
    fn birnbaum_of_series_system() {
        // Top = OR(a, b): I_B(a) = 1 - P(b)
        let tree = corpus::or2();
        let a = tree.element("e1").unwrap();
        let i = birnbaum_importance(&tree, tree.top(), a, &[0.1, 0.2]).unwrap();
        assert!((i - 0.8).abs() < 1e-12);
    }

    #[test]
    fn improvement_potential_bounds() {
        let tree = corpus::covid();
        let n = tree.num_basic_events();
        let probs = vec![0.1; n];
        let top_p = top_event_probability(&tree, &probs).unwrap();
        for &be in tree.basic_events() {
            let ip = improvement_potential(&tree, tree.top(), be, &probs).unwrap();
            assert!(ip >= -1e-12 && ip <= top_p + 1e-12, "{}", tree.name(be));
        }
    }

    #[test]
    fn interval_construction_validates() {
        assert!(ProbInterval::new(0.1, 0.3).is_ok());
        assert!(ProbInterval::point(0.5).is_ok());
        assert!(ProbInterval::new(0.3, 0.1).is_err());
        assert!(ProbInterval::new(-0.1, 0.5).is_err());
        assert!(ProbInterval::new(0.5, 1.5).is_err());
        assert!(ProbInterval::new(f64::NAN, 0.5).is_err());
        assert!(ProbInterval::new(0.5, f64::NAN).is_err());
        let iv = ProbInterval::new(0.1, 0.3).unwrap();
        assert!(!iv.is_point());
        assert!((iv.width() - 0.2).abs() < 1e-15);
        assert_eq!(iv.to_string(), "0.1..0.3");
        assert_eq!(ProbInterval::point(0.5).unwrap().to_string(), "0.5");
    }

    #[test]
    fn interval_validation_names_offender() {
        let tree = corpus::or2();
        let good = [
            ProbInterval { lo: 0.1, hi: 0.3 },
            ProbInterval { lo: 0.2, hi: 0.2 },
        ];
        assert!(validate_intervals(&tree, &good).is_ok());
        assert!(validate_intervals(&tree, &good[..1]).is_err());
        let bad = [
            ProbInterval { lo: 0.1, hi: 0.3 },
            ProbInterval { lo: 0.9, hi: 0.2 },
        ];
        let msg = validate_intervals(&tree, &bad).unwrap_err();
        assert!(msg.contains("e2"), "{msg}");
    }

    #[test]
    fn degenerate_intervals_match_exact_bit_for_bit() {
        let tree = corpus::covid();
        let n = tree.num_basic_events();
        let probs: Vec<f64> = (0..n)
            .map(|i| 0.05 + 0.9 * (i as f64) / (n as f64))
            .collect();
        let exact = top_event_probability(&tree, &probs).unwrap();
        let ivs: Vec<ProbInterval> = probs
            .iter()
            .map(|&p| ProbInterval::point(p).unwrap())
            .collect();
        let iv = element_probability_interval(&tree, tree.top(), &ivs).unwrap();
        assert_eq!(iv.lo.to_bits(), exact.to_bits());
        assert_eq!(iv.hi.to_bits(), exact.to_bits());
    }

    #[test]
    fn interval_brackets_all_point_choices() {
        let tree = corpus::covid();
        let n = tree.num_basic_events();
        let los: Vec<f64> = (0..n).map(|i| 0.02 + 0.01 * i as f64).collect();
        let his: Vec<f64> = (0..n).map(|i| 0.10 + 0.02 * i as f64).collect();
        let ivs: Vec<ProbInterval> = los
            .iter()
            .zip(&his)
            .map(|(&lo, &hi)| ProbInterval::new(lo, hi).unwrap())
            .collect();
        let iv = element_probability_interval(&tree, tree.top(), &ivs).unwrap();
        assert!(iv.lo <= iv.hi);
        for t in 0..=3 {
            let frac = t as f64 / 3.0;
            // Clamp: `lo + frac·(hi − lo)` can land 1 ulp outside.
            let probs: Vec<f64> = los
                .iter()
                .zip(&his)
                .map(|(&lo, &hi)| (lo + frac * (hi - lo)).clamp(lo, hi))
                .collect();
            let p = top_event_probability(&tree, &probs).unwrap();
            assert!(iv.lo <= p && p <= iv.hi, "t={t}: {p} outside {iv}");
        }
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        let tree = corpus::or2();
        assert!(validate_probabilities(&tree, &[0.5]).is_err());
        assert!(validate_probabilities(&tree, &[0.5, 1.5]).is_err());
        assert!(validate_probabilities(&tree, &[0.5, f64::NAN]).is_err());
        assert!(validate_probabilities(&tree, &[0.0, 1.0]).is_ok());
    }

    #[test]
    fn malformed_vectors_are_errors_not_panics() {
        let tree = corpus::or2();
        let top = tree.top();
        let e1 = tree.element("e1").unwrap();
        assert!(top_event_probability(&tree, &[0.5]).is_err());
        assert!(top_event_probability(&tree, &[0.5, f64::NAN]).is_err());
        assert!(probability_naive(&tree, top, &[0.5, 1.5]).is_err());
        assert!(birnbaum_importance(&tree, top, e1, &[]).is_err());
        assert!(improvement_potential(&tree, top, e1, &[2.0, 0.1]).is_err());
        // A gate is not a basic event: an error, not a panic.
        assert!(birnbaum_importance(&tree, top, top, &[0.1, 0.2]).is_err());
    }
}
