//! Probability layer — the paper's first future-work item ("extend BFL to
//! model probabilities").
//!
//! Given independent basic-event failure probabilities, the top-event
//! (or any element's) failure probability is computed *exactly* by a
//! Shannon recursion over the element's BDD — the classical
//! Rauzy-style quantitative fault-tree analysis. On top of it we provide
//! the two most common importance measures.
//!
//! Every entry point taking a user-supplied probability vector is
//! **fallible**: malformed vectors come back as `Err(String)` (the
//! message of [`validate_probabilities`]), never as panics. `bfl-core`
//! maps these into `BflError::InvalidProbability`.

use std::collections::HashMap;

use bfl_bdd::Bdd;

use crate::bdd::TreeBdd;
use crate::model::{ElementId, FaultTree};

/// Validates a probability slice (one entry per basic index).
///
/// # Errors
///
/// Returns a message naming the offending basic event if the length is
/// wrong or a value is outside `[0, 1]` or not finite.
pub fn validate_probabilities(tree: &FaultTree, probs: &[f64]) -> Result<(), String> {
    if probs.len() != tree.num_basic_events() {
        return Err(format!(
            "expected {} probabilities, got {}",
            tree.num_basic_events(),
            probs.len()
        ));
    }
    for (i, &p) in probs.iter().enumerate() {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(format!(
                "probability of `{}` is {p}, outside [0, 1]",
                tree.name(tree.basic_events()[i])
            ));
        }
    }
    Ok(())
}

/// Exact failure probability of the function `f` under independent
/// basic-event probabilities `probs` (indexed by basic index).
///
/// # Errors
///
/// The message of [`validate_probabilities`] if `probs` is malformed.
///
/// # Panics
///
/// Panics if `f` mentions primed variables (query BDDs never do).
pub fn bdd_probability(
    tree: &FaultTree,
    tb: &TreeBdd,
    f: Bdd,
    probs: &[f64],
) -> Result<f64, String> {
    validate_probabilities(tree, probs)?;
    let mut memo: HashMap<u32, f64> = HashMap::new();
    Ok(bdd_probability_with_memo(tb, f, probs, &mut memo))
}

/// The node-keyed Shannon walk behind [`bdd_probability`]: delegates to
/// [`bfl_bdd::Manager::probability_with_memo`] with this `TreeBdd`'s
/// variable-to-basic-index map, sharing the memo across roots.
///
/// # Panics
///
/// Panics if `f` mentions primed variables (query BDDs never do).
pub fn bdd_probability_with_memo(
    tb: &TreeBdd,
    f: Bdd,
    probs: &[f64],
    memo: &mut HashMap<u32, f64>,
) -> f64 {
    tb.manager().probability_with_memo(
        f,
        &|v| {
            let bi = tb
                .basic_of_var(v)
                .expect("probability of a primed variable");
            probs[bi]
        },
        memo,
    )
}

/// Exact failure probability of element `e` of `tree`.
///
/// # Example
///
/// ```
/// use bfl_fault_tree::{corpus, prob};
/// let tree = corpus::or2();
/// // P(Top) = 1 - (1-0.1)(1-0.2) = 0.28
/// let p = prob::element_probability(&tree, tree.top(), &[0.1, 0.2]).unwrap();
/// assert!((p - 0.28).abs() < 1e-12);
/// // Malformed vectors are errors, not panics.
/// assert!(prob::element_probability(&tree, tree.top(), &[0.1]).is_err());
/// ```
///
/// # Errors
///
/// The message of [`validate_probabilities`] if `probs` is malformed.
pub fn element_probability(tree: &FaultTree, e: ElementId, probs: &[f64]) -> Result<f64, String> {
    let mut tb = TreeBdd::new(tree, crate::order::VariableOrdering::DfsPreorder);
    let f = tb.element_bdd(tree, e);
    bdd_probability(tree, &tb, f, probs)
}

/// Top-event unreliability.
///
/// # Errors
///
/// As for [`element_probability`].
pub fn top_event_probability(tree: &FaultTree, probs: &[f64]) -> Result<f64, String> {
    element_probability(tree, tree.top(), probs)
}

/// Birnbaum importance of basic event `be` for element `e`:
/// `I_B = P(e fails | be failed) − P(e fails | be operational)`.
///
/// # Errors
///
/// A message naming `be` if it is not a basic event of the tree, or the
/// message of [`validate_probabilities`] if `probs` is malformed.
pub fn birnbaum_importance(
    tree: &FaultTree,
    e: ElementId,
    be: ElementId,
    probs: &[f64],
) -> Result<f64, String> {
    validate_probabilities(tree, probs)?;
    let bi = tree
        .basic_index(be)
        .ok_or_else(|| format!("`{}` is not a basic event", tree.name(be)))?;
    let mut hi = probs.to_vec();
    hi[bi] = 1.0;
    let mut lo = probs.to_vec();
    lo[bi] = 0.0;
    Ok(element_probability(tree, e, &hi)? - element_probability(tree, e, &lo)?)
}

/// Improvement potential of basic event `be` for element `e`:
/// `I_IP = P(e fails) − P(e fails | be operational)`.
///
/// # Errors
///
/// As for [`birnbaum_importance`].
pub fn improvement_potential(
    tree: &FaultTree,
    e: ElementId,
    be: ElementId,
    probs: &[f64],
) -> Result<f64, String> {
    validate_probabilities(tree, probs)?;
    let bi = tree
        .basic_index(be)
        .ok_or_else(|| format!("`{}` is not a basic event", tree.name(be)))?;
    let mut lo = probs.to_vec();
    lo[bi] = 0.0;
    Ok(element_probability(tree, e, probs)? - element_probability(tree, e, &lo)?)
}

/// Exhaustive reference: probability by summing over all `2^n` vectors.
/// Used as ground truth in tests.
///
/// # Errors
///
/// A message if the tree has more than 20 basic events or `probs` is
/// malformed.
pub fn probability_naive(tree: &FaultTree, e: ElementId, probs: &[f64]) -> Result<f64, String> {
    if tree.num_basic_events() > 20 {
        return Err(format!(
            "naive engine limited to 20 events, tree has {}",
            tree.num_basic_events()
        ));
    }
    validate_probabilities(tree, probs)?;
    let mut total = 0.0;
    for b in crate::status::StatusVector::enumerate_all(tree.num_basic_events()) {
        if tree.evaluate(&b, e) {
            let mut w = 1.0;
            for (i, &p) in probs.iter().enumerate() {
                w *= if b.get(i) { p } else { 1.0 - p };
            }
            total += w;
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;

    #[test]
    fn and_gate_probability_is_product() {
        let tree = corpus::fig1();
        let cp = tree.element("CP").unwrap();
        // CP = AND(IW, H3); order of basics: IW H3 IT H2
        let probs = [0.3, 0.5, 0.0, 0.0];
        let p = element_probability(&tree, cp, &probs).unwrap();
        assert!((p - 0.15).abs() < 1e-12);
    }

    #[test]
    fn matches_naive_on_covid() {
        let tree = corpus::covid();
        let n = tree.num_basic_events();
        let probs: Vec<f64> = (0..n)
            .map(|i| 0.05 + 0.9 * (i as f64) / (n as f64))
            .collect();
        let fast = top_event_probability(&tree, &probs).unwrap();
        let slow = probability_naive(&tree, tree.top(), &probs).unwrap();
        assert!((fast - slow).abs() < 1e-10, "fast={fast} slow={slow}");
    }

    #[test]
    fn repeated_events_handled_exactly() {
        // x OR x must have probability p, not 1-(1-p)^2.
        let mut b = crate::FaultTreeBuilder::new();
        b.basic_event("x").unwrap();
        b.gate("top", crate::GateType::Or, ["x", "x"]).unwrap();
        let tree = b.build("top").unwrap();
        let p = top_event_probability(&tree, &[0.3]).unwrap();
        assert!((p - 0.3).abs() < 1e-12);
    }

    #[test]
    fn birnbaum_of_series_system() {
        // Top = OR(a, b): I_B(a) = 1 - P(b)
        let tree = corpus::or2();
        let a = tree.element("e1").unwrap();
        let i = birnbaum_importance(&tree, tree.top(), a, &[0.1, 0.2]).unwrap();
        assert!((i - 0.8).abs() < 1e-12);
    }

    #[test]
    fn improvement_potential_bounds() {
        let tree = corpus::covid();
        let n = tree.num_basic_events();
        let probs = vec![0.1; n];
        let top_p = top_event_probability(&tree, &probs).unwrap();
        for &be in tree.basic_events() {
            let ip = improvement_potential(&tree, tree.top(), be, &probs).unwrap();
            assert!(ip >= -1e-12 && ip <= top_p + 1e-12, "{}", tree.name(be));
        }
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        let tree = corpus::or2();
        assert!(validate_probabilities(&tree, &[0.5]).is_err());
        assert!(validate_probabilities(&tree, &[0.5, 1.5]).is_err());
        assert!(validate_probabilities(&tree, &[0.5, f64::NAN]).is_err());
        assert!(validate_probabilities(&tree, &[0.0, 1.0]).is_ok());
    }

    #[test]
    fn malformed_vectors_are_errors_not_panics() {
        let tree = corpus::or2();
        let top = tree.top();
        let e1 = tree.element("e1").unwrap();
        assert!(top_event_probability(&tree, &[0.5]).is_err());
        assert!(top_event_probability(&tree, &[0.5, f64::NAN]).is_err());
        assert!(probability_naive(&tree, top, &[0.5, 1.5]).is_err());
        assert!(birnbaum_importance(&tree, top, e1, &[]).is_err());
        assert!(improvement_potential(&tree, top, e1, &[2.0, 0.1]).is_err());
        // A gate is not a basic event: an error, not a panic.
        assert!(birnbaum_importance(&tree, top, top, &[0.1, 0.2]).is_err());
    }
}
