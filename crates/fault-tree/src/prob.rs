//! Probability layer — the paper's first future-work item ("extend BFL to
//! model probabilities").
//!
//! Given independent basic-event failure probabilities, the top-event
//! (or any element's) failure probability is computed *exactly* by a
//! Shannon recursion over the element's BDD — the classical
//! Rauzy-style quantitative fault-tree analysis. On top of it we provide
//! the two most common importance measures.

use std::collections::HashMap;

use bfl_bdd::Bdd;

use crate::bdd::TreeBdd;
use crate::model::{ElementId, FaultTree};

/// Validates a probability slice (one entry per basic index).
///
/// # Errors
///
/// Returns a message naming the offending basic event if the length is
/// wrong or a value is outside `[0, 1]` or not finite.
pub fn validate_probabilities(tree: &FaultTree, probs: &[f64]) -> Result<(), String> {
    if probs.len() != tree.num_basic_events() {
        return Err(format!(
            "expected {} probabilities, got {}",
            tree.num_basic_events(),
            probs.len()
        ));
    }
    for (i, &p) in probs.iter().enumerate() {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(format!(
                "probability of `{}` is {p}, outside [0, 1]",
                tree.name(tree.basic_events()[i])
            ));
        }
    }
    Ok(())
}

/// Exact failure probability of the function `f` under independent
/// basic-event probabilities `probs` (indexed by basic index).
///
/// # Panics
///
/// Panics if `probs` fails [`validate_probabilities`] for the `TreeBdd`'s
/// tree, or if `f` mentions primed variables.
pub fn bdd_probability(tree: &FaultTree, tb: &TreeBdd, f: Bdd, probs: &[f64]) -> f64 {
    validate_probabilities(tree, probs).expect("invalid probabilities");
    let mut memo: HashMap<u32, f64> = HashMap::new();
    probability_rec(tree, tb, f, probs, &mut memo)
}

fn probability_rec(
    tree: &FaultTree,
    tb: &TreeBdd,
    f: Bdd,
    probs: &[f64],
    memo: &mut HashMap<u32, f64>,
) -> f64 {
    if f.is_false() {
        return 0.0;
    }
    if f.is_true() {
        return 1.0;
    }
    if let Some(&p) = memo.get(&f.id()) {
        return p;
    }
    let node = tb.manager().node(f);
    let bi = tb
        .basic_of_var(node.var)
        .expect("probability of a primed variable");
    let _ = tree; // tree is only used for validation and error reporting
    let p = probs[bi];
    let lo = probability_rec(tree, tb, node.low, probs, memo);
    let hi = probability_rec(tree, tb, node.high, probs, memo);
    let r = (1.0 - p) * lo + p * hi;
    memo.insert(f.id(), r);
    r
}

/// Exact failure probability of element `e` of `tree`.
///
/// # Example
///
/// ```
/// use bfl_fault_tree::{corpus, prob};
/// let tree = corpus::or2();
/// // P(Top) = 1 - (1-0.1)(1-0.2) = 0.28
/// let p = prob::element_probability(&tree, tree.top(), &[0.1, 0.2]);
/// assert!((p - 0.28).abs() < 1e-12);
/// ```
pub fn element_probability(tree: &FaultTree, e: ElementId, probs: &[f64]) -> f64 {
    let mut tb = TreeBdd::new(tree, crate::order::VariableOrdering::DfsPreorder);
    let f = tb.element_bdd(tree, e);
    bdd_probability(tree, &tb, f, probs)
}

/// Top-event unreliability.
pub fn top_event_probability(tree: &FaultTree, probs: &[f64]) -> f64 {
    element_probability(tree, tree.top(), probs)
}

/// Birnbaum importance of basic event `be` for element `e`:
/// `I_B = P(e fails | be failed) − P(e fails | be operational)`.
///
/// # Panics
///
/// Panics if `be` is not a basic event or `probs` is invalid.
pub fn birnbaum_importance(tree: &FaultTree, e: ElementId, be: ElementId, probs: &[f64]) -> f64 {
    let bi = tree
        .basic_index(be)
        .unwrap_or_else(|| panic!("`{}` is not a basic event", tree.name(be)));
    let mut hi = probs.to_vec();
    hi[bi] = 1.0;
    let mut lo = probs.to_vec();
    lo[bi] = 0.0;
    element_probability(tree, e, &hi) - element_probability(tree, e, &lo)
}

/// Improvement potential of basic event `be` for element `e`:
/// `I_IP = P(e fails) − P(e fails | be operational)`.
///
/// # Panics
///
/// Panics if `be` is not a basic event or `probs` is invalid.
pub fn improvement_potential(tree: &FaultTree, e: ElementId, be: ElementId, probs: &[f64]) -> f64 {
    let bi = tree
        .basic_index(be)
        .unwrap_or_else(|| panic!("`{}` is not a basic event", tree.name(be)));
    let mut lo = probs.to_vec();
    lo[bi] = 0.0;
    element_probability(tree, e, probs) - element_probability(tree, e, &lo)
}

/// Exhaustive reference: probability by summing over all `2^n` vectors.
/// Used as ground truth in tests.
///
/// # Panics
///
/// Panics if the tree has more than 20 basic events.
pub fn probability_naive(tree: &FaultTree, e: ElementId, probs: &[f64]) -> f64 {
    assert!(
        tree.num_basic_events() <= 20,
        "naive engine limited to 20 events"
    );
    validate_probabilities(tree, probs).expect("invalid probabilities");
    let mut total = 0.0;
    for b in crate::status::StatusVector::enumerate_all(tree.num_basic_events()) {
        if tree.evaluate(&b, e) {
            let mut w = 1.0;
            for (i, &p) in probs.iter().enumerate() {
                w *= if b.get(i) { p } else { 1.0 - p };
            }
            total += w;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;

    #[test]
    fn and_gate_probability_is_product() {
        let tree = corpus::fig1();
        let cp = tree.element("CP").unwrap();
        // CP = AND(IW, H3); order of basics: IW H3 IT H2
        let probs = [0.3, 0.5, 0.0, 0.0];
        let p = element_probability(&tree, cp, &probs);
        assert!((p - 0.15).abs() < 1e-12);
    }

    #[test]
    fn matches_naive_on_covid() {
        let tree = corpus::covid();
        let n = tree.num_basic_events();
        let probs: Vec<f64> = (0..n)
            .map(|i| 0.05 + 0.9 * (i as f64) / (n as f64))
            .collect();
        let fast = top_event_probability(&tree, &probs);
        let slow = probability_naive(&tree, tree.top(), &probs);
        assert!((fast - slow).abs() < 1e-10, "fast={fast} slow={slow}");
    }

    #[test]
    fn repeated_events_handled_exactly() {
        // x OR x must have probability p, not 1-(1-p)^2.
        let mut b = crate::FaultTreeBuilder::new();
        b.basic_event("x").unwrap();
        b.gate("top", crate::GateType::Or, ["x", "x"]).unwrap();
        let tree = b.build("top").unwrap();
        let p = top_event_probability(&tree, &[0.3]);
        assert!((p - 0.3).abs() < 1e-12);
    }

    #[test]
    fn birnbaum_of_series_system() {
        // Top = OR(a, b): I_B(a) = 1 - P(b)
        let tree = corpus::or2();
        let a = tree.element("e1").unwrap();
        let i = birnbaum_importance(&tree, tree.top(), a, &[0.1, 0.2]);
        assert!((i - 0.8).abs() < 1e-12);
    }

    #[test]
    fn improvement_potential_bounds() {
        let tree = corpus::covid();
        let n = tree.num_basic_events();
        let probs = vec![0.1; n];
        let top_p = top_event_probability(&tree, &probs);
        for &be in tree.basic_events() {
            let ip = improvement_potential(&tree, tree.top(), be, &probs);
            assert!(ip >= -1e-12 && ip <= top_p + 1e-12, "{}", tree.name(be));
        }
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        let tree = corpus::or2();
        assert!(validate_probabilities(&tree, &[0.5]).is_err());
        assert!(validate_probabilities(&tree, &[0.5, 1.5]).is_err());
        assert!(validate_probabilities(&tree, &[0.5, f64::NAN]).is_err());
        assert!(validate_probabilities(&tree, &[0.0, 1.0]).is_ok());
    }
}
