//! Variable-ordering heuristics for the fault-tree → BDD translation.
//!
//! BDD sizes are notoriously sensitive to the variable order (Section V-A
//! of the paper). This module provides the orderings compared in the
//! `ablation_ordering` benchmark and the `reproduce -- reorder` artifact:
//! four *static* heuristics — [`Declaration`](VariableOrdering::Declaration),
//! [`DfsPreorder`](VariableOrdering::DfsPreorder),
//! [`BfsLevel`](VariableOrdering::BfsLevel) and a weight-based
//! [`BouissouWeight`](VariableOrdering::BouissouWeight) in the spirit of
//! Bouissou's RAMS'96 ordering (reference \[6\] of the paper) — plus the
//! *dynamic* [`Sifted`](VariableOrdering::Sifted), which starts from the
//! DFS order and improves it after translation with Rudell sifting
//! (`TreeBdd::sift`, backed by `bfl_bdd::Manager::sift`).

use std::collections::VecDeque;

use crate::model::{ElementId, FaultTree};

/// Strategy for ordering the basic events of a fault tree as BDD
/// variables (top of the order first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum VariableOrdering {
    /// Basic events in declaration order.
    Declaration,
    /// First visit in a depth-first, left-to-right traversal from the top
    /// element — the classical FTA ordering, and the default.
    #[default]
    DfsPreorder,
    /// First visit in a breadth-first traversal from the top element.
    BfsLevel,
    /// Bouissou-style weight heuristic: basic events sorted by the minimum
    /// depth at which they occur (shallow first), ties broken by DFS rank.
    /// Repeated events rise towards the root, which tends to keep shared
    /// cones together.
    BouissouWeight,
    /// Dynamic ordering: translation starts from the
    /// [`DfsPreorder`](VariableOrdering::DfsPreorder) order and the
    /// manager is then improved in place by Rudell sifting
    /// ([`TreeBdd::sift`](crate::bdd::TreeBdd::sift)). The [`order`]
    /// method returns the *initial* (DFS) permutation; the dynamic
    /// improvement is driven by the layer that owns the `TreeBdd` (the
    /// `bfl-core` engine's `ReorderPolicy`, or an explicit `sift` call).
    ///
    /// [`order`]: VariableOrdering::order
    Sifted,
}

impl VariableOrdering {
    /// Computes the ordered list of basic events for `tree` (first element
    /// = top-most BDD variable).
    ///
    /// The result is always a permutation of
    /// [`basic_events`](FaultTree::basic_events).
    pub fn order(self, tree: &FaultTree) -> Vec<ElementId> {
        match self {
            VariableOrdering::Declaration => tree.basic_events().to_vec(),
            VariableOrdering::DfsPreorder | VariableOrdering::Sifted => dfs_order(tree),
            VariableOrdering::BfsLevel => bfs_order(tree),
            VariableOrdering::BouissouWeight => bouissou_order(tree),
        }
    }

    /// The static orderings, for sweeps and benchmarks ([`Sifted`] is
    /// excluded: its starting permutation is [`DfsPreorder`]'s, so static
    /// comparisons would double-count it).
    ///
    /// [`Sifted`]: VariableOrdering::Sifted
    /// [`DfsPreorder`]: VariableOrdering::DfsPreorder
    pub fn all() -> [VariableOrdering; 4] {
        [
            VariableOrdering::Declaration,
            VariableOrdering::DfsPreorder,
            VariableOrdering::BfsLevel,
            VariableOrdering::BouissouWeight,
        ]
    }

    /// `true` for orderings that expect dynamic improvement after
    /// translation (currently only [`Sifted`](VariableOrdering::Sifted)).
    pub fn is_dynamic(self) -> bool {
        self == VariableOrdering::Sifted
    }
}

fn dfs_order(tree: &FaultTree) -> Vec<ElementId> {
    let mut seen = vec![false; tree.len()];
    let mut out = Vec::with_capacity(tree.num_basic_events());
    let mut stack = vec![tree.top()];
    while let Some(e) = stack.pop() {
        if seen[e.index()] {
            continue;
        }
        seen[e.index()] = true;
        if tree.is_basic(e) {
            out.push(e);
        } else {
            // Push in reverse so the left-most child is visited first.
            for &c in tree.children(e).iter().rev() {
                stack.push(c);
            }
        }
    }
    out
}

fn bfs_order(tree: &FaultTree) -> Vec<ElementId> {
    let mut seen = vec![false; tree.len()];
    let mut out = Vec::with_capacity(tree.num_basic_events());
    let mut queue = VecDeque::from([tree.top()]);
    seen[tree.top().index()] = true;
    while let Some(e) = queue.pop_front() {
        if tree.is_basic(e) {
            out.push(e);
        } else {
            for &c in tree.children(e) {
                if !seen[c.index()] {
                    seen[c.index()] = true;
                    queue.push_back(c);
                }
            }
        }
    }
    out
}

fn bouissou_order(tree: &FaultTree) -> Vec<ElementId> {
    // Minimum depth of each element from the top.
    let mut depth = vec![usize::MAX; tree.len()];
    let mut queue = VecDeque::from([(tree.top(), 0usize)]);
    while let Some((e, d)) = queue.pop_front() {
        if d >= depth[e.index()] {
            continue;
        }
        depth[e.index()] = d;
        for &c in tree.children(e) {
            queue.push_back((c, d + 1));
        }
    }
    // DFS rank as tie-breaker keeps related leaves adjacent.
    let dfs = dfs_order(tree);
    let mut rank = vec![0usize; tree.len()];
    for (i, &e) in dfs.iter().enumerate() {
        rank[e.index()] = i;
    }
    let mut order = dfs;
    order.sort_by_key(|&e| (depth[e.index()], rank[e.index()]));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultTreeBuilder, GateType};

    fn sample() -> FaultTree {
        let mut b = FaultTreeBuilder::new();
        b.basic_events(["d1", "d2", "s"]).unwrap();
        b.gate("g1", GateType::And, ["d1", "s"]).unwrap();
        b.gate("g2", GateType::And, ["s", "d2"]).unwrap();
        b.gate("top", GateType::Or, ["g1", "g2", "s"]).unwrap();
        b.build("top").unwrap()
    }

    fn names(tree: &FaultTree, order: &[ElementId]) -> Vec<String> {
        order.iter().map(|&e| tree.name(e).to_string()).collect()
    }

    #[test]
    fn every_ordering_is_a_permutation() {
        let t = sample();
        for ord in VariableOrdering::all() {
            let mut o = ord.order(&t);
            assert_eq!(o.len(), t.num_basic_events(), "{ord:?}");
            o.sort();
            let mut expect = t.basic_events().to_vec();
            expect.sort();
            assert_eq!(o, expect, "{ord:?}");
        }
    }

    #[test]
    fn dfs_is_left_to_right() {
        let t = sample();
        let o = VariableOrdering::DfsPreorder.order(&t);
        assert_eq!(names(&t, &o), vec!["d1", "s", "d2"]);
    }

    #[test]
    fn bouissou_prefers_shallow_events() {
        let t = sample();
        let o = VariableOrdering::BouissouWeight.order(&t);
        // `s` occurs directly under the top (depth 1) as well as at depth 2,
        // so it is ordered first.
        assert_eq!(names(&t, &o)[0], "s");
    }

    #[test]
    fn declaration_order_is_stable() {
        let t = sample();
        let o = VariableOrdering::Declaration.order(&t);
        assert_eq!(names(&t, &o), vec!["d1", "d2", "s"]);
    }

    #[test]
    fn default_is_dfs() {
        assert_eq!(VariableOrdering::default(), VariableOrdering::DfsPreorder);
    }

    #[test]
    fn sifted_starts_from_the_dfs_permutation() {
        let t = sample();
        assert_eq!(
            VariableOrdering::Sifted.order(&t),
            VariableOrdering::DfsPreorder.order(&t)
        );
        assert!(VariableOrdering::Sifted.is_dynamic());
        assert!(!VariableOrdering::DfsPreorder.is_dynamic());
        // The static sweep list stays sift-free.
        assert!(!VariableOrdering::all().contains(&VariableOrdering::Sifted));
    }
}
