//! Shared fixtures for the BFL benchmark harness: the paper's queries as
//! named workloads, used by both the Criterion benches and the
//! `reproduce` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bfl_core::parser::{parse_spec, Spec};
use bfl_core::{Formula, Query};
use bfl_fault_tree::FaultTree;

/// The nine case-study properties of Sections IV/VII, in DSL form, with
/// the verdict the paper reports.
///
/// `expected` is `Some(bool)` for yes/no properties; `None` for the
/// enumeration queries (P5, P7) whose expected *sets* are asserted in the
/// integration tests and printed by `reproduce`.
pub struct CovidProperty {
    /// Property number (1–9).
    pub id: usize,
    /// The natural-language question, shortened.
    pub question: &'static str,
    /// DSL source of the property.
    pub source: &'static str,
    /// The paper's verdict for Boolean properties.
    pub expected: Option<bool>,
}

/// All nine case-study properties.
///
/// P6 is built programmatically (its evidence list covers every basic
/// event); see [`property_6`].
pub fn covid_properties() -> Vec<CovidProperty> {
    vec![
        CovidProperty {
            id: 1,
            question: "Is an infected surface sufficient for transmission?",
            source: "forall IS => MoT",
            expected: Some(false),
        },
        CovidProperty {
            id: 2,
            question: "Does transmission require human errors?",
            source: "forall MoT => H1 | H2 | H3 | H4 | H5",
            expected: Some(false),
        },
        CovidProperty {
            id: 3,
            question: "Is an object disinfection error sufficient for the TLE?",
            source: "forall H4 => IWoS",
            expected: Some(false),
        },
        CovidProperty {
            id: 4,
            question: "Are at least 2 human errors sufficient for the TLE?",
            source: "forall VOT(>=2; H1, H2, H3, H4, H5) => IWoS",
            expected: Some(false),
        },
        CovidProperty {
            id: 5,
            question: "All MCSs for the TLE including H4?",
            source: "MCS(IWoS) & H4",
            expected: None,
        },
        CovidProperty {
            id: 7,
            question: "All minimal ways to prevent the TLE?",
            source: "MPS(IWoS)",
            expected: None,
        },
        CovidProperty {
            id: 8,
            question: "Are CIO and CIS independent scenarios?",
            source: "IDP(CIO, CIS)",
            expected: Some(false),
        },
        CovidProperty {
            id: 9,
            question: "Is physical proximity superfluous for the TLE?",
            source: "SUP(PP)",
            expected: Some(false),
        },
    ]
}

/// Property 6: `∃ MPS(IWoS)[H1↦0,…,H5↦0, e↦1 for all other e]`.
pub fn property_6(tree: &FaultTree) -> Query {
    let humans = ["H1", "H2", "H3", "H4", "H5"];
    let mut phi = Formula::atom("IWoS").mps();
    for h in humans {
        phi = phi.with_evidence(h, false);
    }
    for &be in tree.basic_events() {
        let name = tree.name(be);
        if !humans.contains(&name) {
            phi = phi.with_evidence(name, true);
        }
    }
    Query::Exists(phi)
}

/// Parses one of the DSL sources above.
///
/// # Panics
///
/// Panics on invalid sources (they are compile-time constants).
pub fn parse(source: &str) -> Spec {
    #[allow(clippy::expect_used)] // compile-time constant sources, see above
    parse_spec(source).expect("fixture parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfl_core::ModelChecker;
    use bfl_fault_tree::corpus;

    #[test]
    fn all_fixture_sources_parse() {
        for p in covid_properties() {
            let _ = parse(p.source);
        }
    }

    #[test]
    fn verdicts_match_paper() {
        let tree = corpus::covid();
        let mut mc = ModelChecker::new(&tree);
        for p in covid_properties() {
            if let Some(expected) = p.expected {
                let got = match parse(p.source) {
                    Spec::Query(q) => mc.check_query(&q).unwrap(),
                    Spec::Formula(f) => mc.check_query(&Query::Exists(f)).unwrap(),
                };
                assert_eq!(got, expected, "P{}", p.id);
            }
        }
        assert!(!mc.check_query(&property_6(&tree)).unwrap());
    }
}
