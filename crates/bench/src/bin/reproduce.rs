//! `reproduce` — regenerates every table and figure of the paper and
//! prints our result next to the paper's expected value.
//!
//! ```text
//! cargo run -p bfl-bench --bin reproduce             # everything
//! cargo run -p bfl-bench --bin reproduce -- fig1     # one artifact
//! cargo run -p bfl-bench --bin reproduce -- reorder --smoke  # tiny trees
//! ```
//!
//! Artifacts: `fig1 fig2 fig3 ex2 ex3 table1 covid scaling sweep reorder
//! quant serve mc cause scale`. The `reorder` artifact additionally writes
//! `BENCH_reorder.json` (node counts and timings of dynamic sifting + GC
//! vs the static DFS order), the `quant` artifact writes
//! `BENCH_quant.json` (warm prepared probability sweeps vs naive
//! recompute-per-scenario), the `serve` artifact boots an in-process
//! sharded `bfl-server`, replays a mixed check/eval/sweep/prob workload
//! over 1→250 concurrent connections (multiplexed onto a bounded pool
//! of driver threads) and writes `BENCH_serve.json` (p50/p99/p999
//! latency with log-bucketed histograms, throughput scaling, proof the
//! server thread count stays fixed as connections grow, warm vs cold
//! plan hit rates, zero plan rebuilds on the warm path), and the `mc`
//! artifact exercises
//! the Monte Carlo estimator and writes `BENCH_mc.json` (samples/sec vs
//! worker count with a byte-identity cross-check, the MC-vs-exact error
//! curve over growing sample budgets, and an estimate + CI on a random
//! tree far beyond what the exact BDD path is asked to compile), and the
//! `cause` artifact sweeps a prepared `cause(ϕ, evidence)` plan over
//! per-event what-if scenarios and writes `BENCH_cause.json` (causes/sec
//! cold vs warm plan via the scenario memo, and witness counts vs tree
//! size), and the `scale` artifact compiles the industrial-scale corpus
//! (1k–10k basic events) sequentially and with modular-parallel
//! construction at 1..=4 workers, cross-checks that every diagram is
//! node-for-node identical with bit-identical verdicts and top-event
//! probabilities, and writes `BENCH_scale.json` (nodes/sec and
//! speedup-vs-workers curves plus stitch overhead); `--smoke` restricts
//! all six to small configurations for CI.

// A reproduction harness, not a library: every `expect` is an assertion
// that the paper's artifact can be rebuilt — failing loudly with the
// offending step in the message is exactly the desired behaviour.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use bfl_bench::{covid_properties, parse, property_6};
use bfl_core::parser::{parse_formula, Spec};
use bfl_core::patterns::{table1_rows, table1_tree};
use bfl_core::{
    counterexample, is_valid_counterexample, Counterexample, MinimalityScope, ModelChecker,
};
use bfl_fault_tree::bdd::TreeBdd;
use bfl_fault_tree::generator::{random_tree, RandomTreeConfig};
use bfl_fault_tree::{analysis, corpus, StatusVector, VariableOrdering};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty();
    let want = |name: &str| all || args.iter().any(|a| a == name);

    if want("fig1") {
        fig1();
    }
    if want("fig2") {
        fig2();
    }
    if want("fig3") {
        fig3();
    }
    if want("ex2") {
        ex2();
    }
    if want("ex3") {
        ex3();
    }
    if want("table1") {
        table1();
    }
    if want("covid") {
        covid();
    }
    if want("scaling") {
        scaling();
    }
    if want("sweep") {
        sweep();
    }
    if want("reorder") {
        reorder(args.iter().any(|a| a == "--smoke"));
    }
    if want("quant") {
        quant_bench(args.iter().any(|a| a == "--smoke"));
    }
    if want("serve") {
        serve_bench(args.iter().any(|a| a == "--smoke"));
    }
    if want("mc") {
        mc_bench(args.iter().any(|a| a == "--smoke"));
    }
    if want("cause") {
        cause_bench(args.iter().any(|a| a == "--smoke"));
    }
    if want("scale") {
        scale_bench(args.iter().any(|a| a == "--smoke"));
    }
}

fn banner(title: &str) {
    println!("\n==================================================================");
    println!("{title}");
    println!("==================================================================");
}

fn print_sets(prefix: &str, sets: &[Vec<String>]) {
    for s in sets {
        println!("{prefix}{{{}}}", s.join(", "));
    }
}

/// Fig. 1 / Section II: MCS and MPS of the pathogens/reservoir subtree.
fn fig1() {
    banner("FIG1 — Fig. 1 subtree: minimal cut sets and path sets (Sec. II)");
    let tree = corpus::fig1();
    let mcs = analysis::minimal_cut_sets_names(&tree, tree.top());
    println!("paper MCS : {{IW, H3}}, {{IT, H2}}");
    print_sets("ours  MCS : ", &mcs);
    let mps = analysis::minimal_path_sets_names(&tree, tree.top());
    println!("paper MPS : {{IW, IT}}, {{IW, H2}}, {{H3, IT}}, {{H3, H2}}");
    print_sets("ours  MPS : ", &mps);
}

/// Fig. 2: shape of the reconstructed COVID-19 fault tree.
fn fig2() {
    banner("FIG2 — the COVID-19 fault tree (reconstruction, see DESIGN.md §3)");
    let tree = corpus::covid();
    println!("paper: 'medium-sized' FT, repeated events IT, PP, H1, IW (Sec. IV)");
    println!(
        "ours : {} basic events, {} gates, top = {}",
        tree.num_basic_events(),
        tree.num_gates(),
        tree.name(tree.top())
    );
    let mut counts = std::collections::HashMap::new();
    for g in tree.gates() {
        for &c in tree.children(g) {
            if tree.is_basic(c) {
                *counts.entry(tree.name(c)).or_insert(0) += 1;
            }
        }
    }
    let mut repeated: Vec<&str> = counts
        .iter()
        .filter(|(_, &n)| n > 1)
        .map(|(&k, _)| k)
        .collect();
    repeated.sort();
    println!("ours : repeated events {repeated:?}");
    for ordering in VariableOrdering::all() {
        let mut tb = TreeBdd::new(&tree, ordering);
        let top = tb.element_bdd(&tree, tree.top());
        println!(
            "       BDD size under {:?}: {} nodes",
            ordering,
            tb.manager().node_count(top)
        );
    }
}

/// Fig. 3: the OR-gate and its BDD.
fn fig3() {
    banner("FIG3 — a simple FT (OR-gate) and its BDD");
    let tree = corpus::or2();
    let mut tb = TreeBdd::new(&tree, VariableOrdering::DfsPreorder);
    let top = tb.element_bdd(&tree, tree.top());
    println!("paper: decision nodes e1, e2 over terminals 0/1 (4 nodes)");
    println!("ours : {} nodes; DOT:", tb.manager().node_count(top));
    print!(
        "{}",
        tb.manager()
            .to_dot(top, |v| format!("e{}", v.index() / 2 + 1))
    );
}

/// Example 2: walking B(MCS(Top)) with b = (0, 1).
fn ex2() {
    banner("EX2 — Algorithm 2 on MCS(e_top), b = (0,1) (Sec. V-C)");
    let tree = corpus::or2();
    let mut mc = ModelChecker::new(&tree);
    let phi = parse_formula("MCS(Top)").expect("parses");
    let b = StatusVector::from_bits([false, true]);
    println!("paper: b = (0,1) ⊨ MCS(e_top)  ->  true");
    println!("ours : {}", mc.holds(&b, &phi).expect("checks"));
}

/// Example 3: AllSat of B(MCS(Top)).
fn ex3() {
    banner("EX3 — Algorithm 3 on MCS(e_top) (Sec. V-D)");
    let tree = corpus::or2();
    let mut mc = ModelChecker::new(&tree);
    let phi = parse_formula("MCS(Top)").expect("parses");
    let sats = mc.satisfying_vectors(&phi).expect("enumerates");
    println!("paper: ⟦MCS(e_top)⟧ = {{(0,1), (1,0)}}");
    let rendered: Vec<String> = sats.iter().map(|v| format!("({v})")).collect();
    println!("ours : {{{}}}", rendered.join(", "));
}

/// Table I: the four patterns with example vectors and counterexamples.
fn table1() {
    banner("TABLE I — counterexample patterns (Sec. VI)");
    let tree = table1_tree();
    println!("tree: e1 = AND(e2, e3), e3 = OR(e4, e5); vectors over (e2, e4, e5)\n");
    println!(
        "{:10} {:24} {:10} {:12} {:12} {:7}",
        "pattern", "formula", "example", "paper cex", "our cex", "valid"
    );
    for row in table1_rows() {
        let mut mc = ModelChecker::new(&tree);
        if row.needs_support_scope {
            mc.set_minimality_scope(MinimalityScope::FormulaSupport);
        }
        let ours = counterexample(&mut mc, &row.example, &row.formula).expect("checks");
        let (ours_str, valid) = match &ours {
            Counterexample::Found(v) => (
                format!("({v})"),
                is_valid_counterexample(&mut mc, &row.example, v, &row.formula).expect("checks"),
            ),
            other => (format!("{other:?}"), false),
        };
        let scope_note = if row.needs_support_scope { "*" } else { " " };
        println!(
            "{:10} {:24} ({})      ({})        {:12} {:7}",
            format!("{}{}", row.pattern.name(), scope_note),
            row.formula.to_string(),
            row.example,
            row.paper_counterexample,
            ours_str,
            valid
        );
    }
    println!("\n(*) pattern3 needs the support-relative minimality scope; under the");
    println!("    paper's formal semantics the conjunction is unsatisfiable (DESIGN.md §4).");
}

/// Section VII: the full case-study analysis.
fn covid() {
    banner("SEC VII — COVID-19 case study: all nine properties");
    let tree = corpus::covid();
    let mut mc = ModelChecker::new(&tree);
    for p in covid_properties() {
        match parse(p.source) {
            Spec::Query(q) => {
                let got = mc.check_query(&q).expect("checks");
                let expected = p
                    .expected
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| "-".into());
                println!(
                    "P{} {:55} paper: {:5}  ours: {}",
                    p.id, p.question, expected, got
                );
            }
            Spec::Formula(f) => {
                let vectors = mc.satisfying_vectors(&f).expect("enumerates");
                println!("P{} {:55} ({} results)", p.id, p.question, vectors.len());
                if p.id == 5 {
                    println!("   paper: {{IW,H3,IT,H1,H4,VW}}, {{IT,H2,H1,H4,VW}}");
                    print_sets("   ours : ", &mc.vectors_to_failed_sets(&vectors));
                } else if p.id == 7 {
                    println!("   paper: 12 MPSs incl. {{H1}}, {{VW}}, {{IW,IT}}, {{H3,H2}}, …");
                    print_sets(
                        "   ours : ",
                        &mc.minimal_path_sets("IWoS").expect("enumerates"),
                    );
                }
            }
        }
        // Follow-ups the paper discusses inline.
        match p.id {
            1 => {
                let f = parse_formula("MCS(MoT) & IS").expect("parses");
                let v = mc.satisfying_vectors(&f).expect("enumerates");
                println!("   follow-up ⟦MCS(MoT) ∧ IS⟧: paper {{IS, H1, H5}}");
                print_sets("   ours : ", &mc.vectors_to_failed_sets(&v));
            }
            4 => {
                let f = parse_formula(
                    "MCS(IWoS) & H1 | MCS(IWoS) & H2 | MCS(IWoS) & H3 | MCS(IWoS) & H4 | MCS(IWoS) & H5",
                )
                .expect("parses");
                println!(
                    "   follow-up: MCSs requiring human error — paper: 12, ours: {}",
                    mc.count_satisfying(&f).expect("counts")
                );
            }
            _ => {}
        }
    }
    // Property 6, built programmatically.
    let q6 = property_6(&tree);
    println!(
        "P6 {:55} paper: false  ours: {}",
        "Is avoiding all human errors a *minimal* prevention?",
        mc.check_query(&q6).expect("checks")
    );
    println!("   pattern-2 counterexamples: paper {{H1}} and {{H2, H3}} — both are MPSs:");
    let mps = mc.minimal_path_sets("IWoS").expect("enumerates");
    for target in [
        vec!["H1".to_string()],
        vec!["H2".to_string(), "H3".to_string()],
    ] {
        println!(
            "   {{{}}} in ⟦MPS(IWoS)⟧: {}",
            target.join(", "),
            mps.contains(&target)
        );
    }
    // Property 8 follow-up.
    println!("P8 follow-up IBEs: paper — CIO and CIS both depend on H1");
    println!(
        "   ours: IBE(CIO) = {:?}, IBE(CIS) = {:?}",
        mc.influencing_basic_events(&parse_formula("CIO").expect("parses"))
            .expect("checks"),
        mc.influencing_basic_events(&parse_formula("CIS").expect("parses"))
            .expect("checks")
    );
}

/// Methodological scaling series (not in the paper; documents our
/// implementation's behaviour — see EXPERIMENTS.md).
fn scaling() {
    banner("SCALING — BDD construction and MCS enumeration on random trees");
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>10}",
        "basic", "gates", "bdd nodes", "#MCS", "ms"
    );
    for &(nb, ng) in &[(10, 6), (20, 12), (40, 25), (80, 50), (160, 100)] {
        let tree = random_tree(&RandomTreeConfig {
            num_basic: nb,
            num_gates: ng,
            max_children: 4,
            vot_probability: 0.1,
            seed: 42,
        });
        let start = std::time::Instant::now();
        let mut tb = TreeBdd::new(&tree, VariableOrdering::DfsPreorder);
        let top = tb.element_bdd(&tree, tree.top());
        let nodes = tb.manager().node_count(top);
        // Counting instead of enumeration: random trees can have
        // astronomically many cut sets.
        let mcs_count = analysis::count_minimal_cut_sets(&tree, tree.top());
        let elapsed = start.elapsed().as_secs_f64() * 1000.0;
        println!(
            "{:>8} {:>8} {:>12} {:>12} {:>10.2}",
            nb, ng, nodes, mcs_count, elapsed
        );
    }
}

/// PREP: prepared queries vs per-scenario recompilation (the Section VI
/// what-if workload, timed offline — the criterion version lives in
/// `benches/prepared_sweep.rs`).
fn sweep() {
    use bfl_core::scenario::{Scenario, ScenarioSet};
    use bfl_core::AnalysisSession;

    banner("SWEEP — evidence-as-restriction vs recompile-per-scenario");
    let query = "exists MCS(IWoS) & H4";
    let session = AnalysisSession::new(corpus::covid());
    let q = bfl_core::parser::parse_query(query).expect("parses");
    let top = session.tree().name(session.tree().top()).to_string();
    let mut set = ScenarioSet::new();
    for name in session.tree().basic_event_names() {
        set.push(Scenario::new().bind(name, true));
        set.push(Scenario::new().bind(name, false));
    }
    println!("query: {query} · {} scenarios", set.len());

    let start = std::time::Instant::now();
    let fresh = AnalysisSession::new(corpus::covid());
    let mut recompiled = 0usize;
    for s in &set {
        if fresh
            .check_query(&s.specialise_query(&q, &top))
            .expect("checks")
            .holds
        {
            recompiled += 1;
        }
    }
    let t_recompile = start.elapsed();

    let start = std::time::Instant::now();
    let prepared = session.prepare(&q).expect("prepares");
    let cold = prepared.sweep(&set).expect("sweeps");
    let t_cold = start.elapsed();

    let start = std::time::Instant::now();
    let warm = prepared.sweep(&set).expect("sweeps");
    let t_warm = start.elapsed();

    assert_eq!(recompiled, cold.holding());
    assert_eq!(cold.holding(), warm.holding());
    println!(
        "recompile per scenario: {:>9.3} ms",
        t_recompile.as_secs_f64() * 1000.0
    );
    println!(
        "prepare + cold sweep:   {:>9.3} ms  ({} restrictions, {} translation misses)",
        t_cold.as_secs_f64() * 1000.0,
        cold.stats.memo_misses,
        cold.stats.translation_misses
    );
    println!(
        "warm sweep:             {:>9.3} ms  ({} memo hits, arena growth {})",
        t_warm.as_secs_f64() * 1000.0,
        warm.stats.memo_hits,
        warm.stats.arena_growth()
    );
}

/// QUANT: warm prepared probability sweeps (`sweep_probabilities` on a
/// compiled plan with its node-keyed Shannon memo) vs the naive
/// recompute-per-scenario path (fresh checker + evidence-wrapped formula
/// per scenario). Writes the `BENCH_quant.json` artifact.
fn quant_bench(smoke: bool) {
    use bfl_core::engine::AnalysisSession;
    use bfl_core::quant;
    use bfl_core::scenario::ScenarioSet;
    use bfl_core::{Formula, Query};
    use bfl_fault_tree::FaultTree;

    banner("QUANT — prepared probability sweeps vs recompute-per-scenario");
    let mut trees: Vec<(String, FaultTree)> = vec![
        ("fig1".into(), corpus::fig1()),
        ("covid".into(), corpus::covid()),
    ];
    if !smoke {
        trees.push(("pressure_tank".into(), corpus::pressure_tank()));
        trees.push(("attack_tree".into(), corpus::attack_tree()));
        for &(nb, ng, seed) in &[(20, 12, 1u64), (40, 25, 7), (60, 40, 13)] {
            let tree = random_tree(&RandomTreeConfig {
                num_basic: nb,
                num_gates: ng,
                max_children: 4,
                vot_probability: 0.1,
                seed,
            });
            trees.push((format!("rand-{nb}x{ng}-s{seed}"), tree));
        }
    }

    println!(
        "{:<18} {:>6} {:>10} {:>11} {:>11} {:>11} {:>9}",
        "tree", "basic", "scenarios", "naive ms", "cold ms", "warm ms", "speedup"
    );
    let mut rows = String::new();
    let mut min_speedup = f64::INFINITY;
    for (name, tree) in &trees {
        let n = tree.num_basic_events();
        // A deterministic probability profile (no annotations needed on
        // the corpus trees).
        let probs: Vec<f64> = (0..n)
            .map(|i| 0.02 + 0.9 * (i as f64) / (n as f64))
            .collect();
        let top = Formula::atom(tree.name(tree.top()));
        // MCS(top) makes the per-scenario recompile genuinely expensive.
        let phi = top.mcs();
        let query = Query::exists(phi.clone());
        // Fail and fix each basic event in turn — the Section VI what-if
        // sweep, quantitatively.
        let mut set = ScenarioSet::new();
        for event in tree.basic_event_names() {
            set.push(bfl_core::Scenario::new().bind(event, true));
            set.push(bfl_core::Scenario::new().bind(event, false));
        }

        // Naive: fresh checker + evidence-wrapped formula per scenario.
        let start = std::time::Instant::now();
        let mut naive_values = Vec::with_capacity(set.len());
        for s in &set {
            let mut mc = bfl_core::ModelChecker::new(tree);
            let wrapped = s.specialise(&phi);
            naive_values.push(quant::probability(&mut mc, &wrapped, &probs).expect("naive"));
        }
        let t_naive = start.elapsed();

        // Prepared: compile once, sweep twice (cold fills the memos,
        // warm is pure lookups).
        let session = AnalysisSession::builder()
            .probabilities(probs.iter().map(|&p| Some(p)).collect())
            .build(tree.clone());
        let start = std::time::Instant::now();
        let prepared = session.prepare(&query).expect("prepares");
        let cold = prepared.sweep_probabilities(&set).expect("sweeps");
        let t_cold = start.elapsed();
        let start = std::time::Instant::now();
        let warm = prepared.sweep_probabilities(&set).expect("sweeps");
        let t_warm = start.elapsed();

        // Cross-check: both paths computed the same probabilities.
        for (i, o) in cold.outcomes.iter().enumerate() {
            let p = o.probability.expect("unconditional");
            assert!(
                (p - naive_values[i]).abs() < 1e-9,
                "{name} scenario {i}: prepared {p} vs naive {}",
                naive_values[i]
            );
        }
        assert_eq!(warm.stats.memo_hits as usize, set.len());
        assert_eq!(warm.stats.fresh_nodes, 0);

        let naive_ms = t_naive.as_secs_f64() * 1000.0;
        let cold_ms = t_cold.as_secs_f64() * 1000.0;
        let warm_ms = t_warm.as_secs_f64() * 1000.0;
        let speedup = naive_ms / warm_ms.max(1e-6);
        min_speedup = min_speedup.min(speedup);
        println!(
            "{:<18} {:>6} {:>10} {:>11.3} {:>11.3} {:>11.3} {:>8.1}x",
            name,
            n,
            set.len(),
            naive_ms,
            cold_ms,
            warm_ms,
            speedup
        );
        if !rows.is_empty() {
            rows.push(',');
        }
        rows.push_str(&format!(
            "{{\"tree\":\"{name}\",\"basic_events\":{n},\"scenarios\":{},\
             \"naive_ms\":{naive_ms:.3},\"cold_ms\":{cold_ms:.3},\"warm_ms\":{warm_ms:.3},\
             \"warm_speedup\":{speedup:.2},\"cold_memo_misses\":{},\"warm_memo_hits\":{},\
             \"warm_fresh_nodes\":{}}}",
            set.len(),
            cold.stats.memo_misses,
            warm.stats.memo_hits,
            warm.stats.fresh_nodes,
        ));
    }
    let json = format!(
        "{{\"artifact\":\"quant\",\"mode\":\"{}\",\"baseline\":\"recompute-per-scenario\",\
         \"query\":\"exists MCS(top)\",\"min_warm_speedup\":{min_speedup:.2},\"trees\":[{rows}]}}\n",
        if smoke { "smoke" } else { "full" }
    );
    let path = "BENCH_quant.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path} (min warm speedup {min_speedup:.1}x)"),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
}

/// Latency histogram bucket upper bounds, in microseconds; the last
/// implicit bucket is `> 100ms`.
const HIST_BOUNDS_US: [u64; 10] = [
    100, 200, 500, 1000, 2000, 5000, 10_000, 20_000, 50_000, 100_000,
];

/// Buckets a latency sample set into [`HIST_BOUNDS_US`] + overflow.
fn latency_histogram(latencies_us: &[u64]) -> [u64; 11] {
    let mut hist = [0u64; 11];
    for &l in latencies_us {
        let idx = HIST_BOUNDS_US
            .iter()
            .position(|&bound| l <= bound)
            .unwrap_or(HIST_BOUNDS_US.len());
        hist[idx] += 1;
    }
    hist
}

/// Live threads of this process whose name starts with `bfl-` — the
/// server's acceptor + shard + worker threads (everything it spawns is
/// so prefixed). `None` off Linux, where `/proc` is unavailable.
#[cfg(target_os = "linux")]
fn server_thread_count() -> Option<usize> {
    let tasks = std::fs::read_dir("/proc/self/task").ok()?;
    let mut count = 0;
    for task in tasks.flatten() {
        let comm = std::fs::read_to_string(task.path().join("comm")).unwrap_or_default();
        if comm.starts_with("bfl-") {
            count += 1;
        }
    }
    Some(count)
}

#[cfg(not(target_os = "linux"))]
fn server_thread_count() -> Option<usize> {
    None
}

/// SERVE: the sharded analysis service under a mixed
/// check/eval/sweep/prob workload replayed over 1→250 concurrent
/// connections against an in-process `bfl-server`. A bounded pool of
/// driver threads multiplexes the connections in lock-step rounds, so
/// hundreds of sockets are genuinely open and in flight at once.
/// Measures throughput and p50/p99/p999 latency (plus a log-bucketed
/// latency histogram) per connection count, proves the server thread
/// count stays fixed while connections scale, and proves the warm path
/// never rebuilds a plan (zero translation-cache misses across the
/// measured phases). Writes the `BENCH_serve.json` artifact.
fn serve_bench(smoke: bool) {
    use bfl_server::{
        Client, Op, ProbOptions, ProbTarget, Request, Response, Server, ServerConfig,
    };
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::time::Instant;

    banner("SERVE — bfl-server: mixed workload over concurrent connections");
    let shards = if smoke { 2 } else { 4 };
    let workers = if smoke {
        2
    } else {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .clamp(2, 8)
    };
    let handle = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        shards,
        queue_capacity: 4096,
        max_connections: 1024,
        ..ServerConfig::default()
    })
    .expect("bind server");
    let addr = handle.addr();

    // The COVID case study with a deterministic probability profile.
    let tree = corpus::covid();
    let n = tree.num_basic_events();
    let probs: Vec<Option<f64>> = (0..n)
        .map(|i| Some(0.02 + 0.9 * (i as f64) / (n as f64)))
        .collect();
    let model = bfl_fault_tree::galileo::to_galileo(&tree, Some(&probs));

    let mut admin = Client::connect(addr).expect("connect");
    let session = admin.load(&model).expect("load");
    let plan_bool = admin
        .prepare(&session, "exists MCS(IWoS) & H4")
        .expect("prepare");
    let plan_prob = admin.prepare(&session, "P(IWoS) <= 0.05").expect("prepare");

    // The request mix: 50% plan evals, 20% spec checks, 20% plan
    // probabilities, 10% small sweeps — every existing feature served.
    let scenario_pool: Vec<String> = tree
        .basic_event_names()
        .iter()
        .flat_map(|e| [format!("{e} = 1"), format!("{e} = 0")])
        .collect();
    let spec_pool = [
        "forall IS => MoT",
        "exists MCS(IWoS) & H4",
        "IDP(CIO, CIS)",
        "P(IWoS | H1) <= 0.5",
    ];
    let sweep_set: String = scenario_pool
        .iter()
        .take(8)
        .enumerate()
        .map(|(i, s)| format!("w{i}: {s}\n"))
        .collect();
    #[derive(Clone, Copy)]
    enum Item {
        Eval(usize),
        Check(usize),
        Prob(usize),
        Sweep,
    }
    let total = if smoke { 400 } else { 2000 };
    let items: Vec<Item> = (0..total)
        .map(|i| match i % 10 {
            0..=4 => Item::Eval(i),
            5 | 6 => Item::Check(i),
            7 | 8 => Item::Prob(i),
            _ => Item::Sweep,
        })
        .collect();
    let run_item = |client: &mut Client, item: Item| match item {
        Item::Eval(i) => {
            client
                .eval(
                    &session,
                    &plan_bool,
                    &scenario_pool[i % scenario_pool.len()],
                )
                .expect("eval");
        }
        Item::Check(i) => {
            client
                .check(&session, spec_pool[i % spec_pool.len()])
                .expect("check");
        }
        Item::Prob(i) => {
            client
                .prob_plan(
                    &session,
                    &plan_prob,
                    Some(&scenario_pool[i % scenario_pool.len()]),
                )
                .expect("prob");
        }
        Item::Sweep => {
            client
                .sweep(&session, &plan_bool, &sweep_set)
                .expect("sweep");
        }
    };

    // Session-level translation-cache misses = plan/pipeline rebuilds.
    let cache_misses = |client: &mut Client| -> u64 {
        client
            .stats(Some(&session))
            .expect("stats")
            .get("stats")
            .and_then(|s| s.get("cache_misses"))
            .and_then(|v| v.as_u64())
            .expect("cache_misses")
    };
    let plan_memo = |client: &mut Client, plan: &str| -> (u64, u64) {
        let stats = client.stats(Some(&session)).expect("stats");
        let p = stats
            .get("plans")
            .and_then(|p| p.get(plan))
            .expect("plan stats");
        (
            p.get("memo_hits").and_then(|v| v.as_u64()).unwrap_or(0),
            p.get("memo_misses").and_then(|v| v.as_u64()).unwrap_or(0),
        )
    };

    // Cold phase: every distinct request once — fills the scenario and
    // probability memos (the translation caches were filled at prepare).
    let t = std::time::Instant::now();
    for i in 0..scenario_pool.len() {
        run_item(&mut admin, Item::Eval(i));
        run_item(&mut admin, Item::Prob(i));
    }
    for i in 0..spec_pool.len() {
        run_item(&mut admin, Item::Check(i));
    }
    run_item(&mut admin, Item::Sweep);
    let cold_ms = t.elapsed().as_secs_f64() * 1000.0;
    let misses_after_warmup = cache_misses(&mut admin);
    let (cold_hits, cold_misses) = plan_memo(&mut admin, &plan_bool);

    // The wire form of one workload item, for the raw multiplexed
    // drivers below (the `Client` convenience wrapper is one-at-a-time;
    // here we keep hundreds of sockets in flight from a few threads).
    let build_op = |item: Item| -> Op {
        match item {
            Item::Eval(i) => Op::Eval {
                session: session.clone(),
                plan: plan_bool.clone(),
                scenario: scenario_pool[i % scenario_pool.len()].clone(),
            },
            Item::Check(i) => Op::Check {
                session: session.clone(),
                query: spec_pool[i % spec_pool.len()].to_string(),
            },
            Item::Prob(i) => Op::Prob {
                session: session.clone(),
                target: ProbTarget::Plan {
                    plan: plan_prob.clone(),
                    scenario: Some(scenario_pool[i % scenario_pool.len()].clone()),
                },
                options: ProbOptions::default(),
            },
            Item::Sweep => Op::Sweep {
                session: session.clone(),
                plan: plan_bool.clone(),
                scenarios: sweep_set.clone(),
                stream: false,
            },
        }
    };

    // One measured phase: `connections` open sockets driven by at most
    // 8 threads. Each driver owns a slice of the connections and runs
    // them in lock-step rounds — send one pipelined request per owned
    // socket, then collect each response — so all sockets stay in
    // flight while the driver pool stays bounded.
    let drive_phase = |connections: usize| -> (f64, Vec<u64>) {
        let drivers = connections.min(8);
        let started = Instant::now();
        let latencies: Vec<u64> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for d in 0..drivers {
                let items = &items;
                let build_op = &build_op;
                handles.push(scope.spawn(move || {
                    struct DrivenConn {
                        reader: BufReader<TcpStream>,
                        writer: TcpStream,
                        queue: Vec<usize>,
                    }
                    let mut conns: Vec<DrivenConn> = (0..connections)
                        .filter(|c| c % drivers == d)
                        .map(|c| {
                            let writer = TcpStream::connect(addr).expect("connect");
                            writer.set_nodelay(true).ok();
                            let reader = BufReader::new(writer.try_clone().expect("clone stream"));
                            let queue: Vec<usize> =
                                (0..items.len()).filter(|i| i % connections == c).collect();
                            DrivenConn {
                                reader,
                                writer,
                                queue,
                            }
                        })
                        .collect();
                    let mut latencies = Vec::new();
                    let mut round = 0usize;
                    loop {
                        let mut sent: Vec<(usize, Instant)> = Vec::new();
                        for (k, conn) in conns.iter_mut().enumerate() {
                            if let Some(&item_idx) = conn.queue.get(round) {
                                let request =
                                    Request::with_id(item_idx as u64, build_op(items[item_idx]));
                                let mut line = request.to_json_line();
                                line.push('\n');
                                let t = Instant::now();
                                conn.writer.write_all(line.as_bytes()).expect("send");
                                sent.push((k, t));
                            }
                        }
                        if sent.is_empty() {
                            break;
                        }
                        for (k, t) in sent {
                            let mut line = String::new();
                            conns[k].reader.read_line(&mut line).expect("recv");
                            let response =
                                Response::parse(line.trim_end()).expect("parse response");
                            assert!(response.is_ok(), "request failed: {line}");
                            latencies.push(t.elapsed().as_micros() as u64);
                        }
                        round += 1;
                    }
                    latencies
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("driver"))
                .collect()
        });
        (started.elapsed().as_secs_f64(), latencies)
    };

    // Measured phases: the same mixed workload over a rising connection
    // count; every request is warm (scenario memos populated). The
    // server thread count is sampled at each point — the whole point of
    // the sharded architecture is that it must not move.
    let connection_counts: Vec<usize> = if smoke {
        vec![1, 8, 100]
    } else {
        vec![1, 2, 8, 32, 100, 250]
    };
    println!(
        "workload: {total} requests (50% eval, 20% check, 20% prob, 10% sweep) · \
         {shards} shards · {workers} workers"
    );
    println!(
        "{:>12} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "connections", "total ms", "req/s", "p50 µs", "p99 µs", "p999 µs", "threads"
    );
    let mut scaling_rows = String::new();
    let mut throughputs: Vec<f64> = Vec::new();
    let mut thread_samples: Vec<usize> = Vec::new();
    for &connections in &connection_counts {
        let (wall_s, mut latencies) = drive_phase(connections);
        let threads = server_thread_count();
        if let Some(n) = threads {
            thread_samples.push(n);
        }
        latencies.sort_unstable();
        let percentile = |q: f64| -> u64 {
            let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
            latencies[idx]
        };
        let (p50, p99, p999) = (percentile(0.50), percentile(0.99), percentile(0.999));
        let hist = latency_histogram(&latencies);
        let throughput = total as f64 / wall_s;
        throughputs.push(throughput);
        println!(
            "{:>12} {:>12.2} {:>10.0} {:>10} {:>10} {:>10} {:>10}",
            connections,
            wall_s * 1000.0,
            throughput,
            p50,
            p99,
            p999,
            threads.map_or("n/a".to_string(), |n| n.to_string()),
        );
        if !scaling_rows.is_empty() {
            scaling_rows.push(',');
        }
        let hist_json: Vec<String> = hist.iter().map(|c| c.to_string()).collect();
        scaling_rows.push_str(&format!(
            "{{\"connections\":{connections},\"driver_threads\":{},\"total_ms\":{:.3},\
             \"throughput_rps\":{throughput:.1},\"p50_us\":{p50},\"p99_us\":{p99},\
             \"p999_us\":{p999},\"server_threads\":{},\"histogram\":[{}]}}",
            connections.min(8),
            wall_s * 1000.0,
            threads.map_or("null".to_string(), |n| n.to_string()),
            hist_json.join(",")
        ));
    }

    // Acceptance: the serving layer is a fixed set of threads — the
    // 250-connection point must run on exactly the same acceptor +
    // shard + worker threads as the 1-connection point.
    let expected_threads = 1 + shards + workers;
    for &n in &thread_samples {
        assert_eq!(
            n, expected_threads,
            "server thread count must stay fixed at 1 acceptor + {shards} shards + \
             {workers} workers while connections scale"
        );
    }

    // Acceptance: the warm phases never rebuilt a plan or recompiled a
    // formula — the resident caches absorbed the whole workload.
    let misses_after_load = cache_misses(&mut admin);
    let plan_rebuilds = misses_after_load - misses_after_warmup;
    assert_eq!(
        plan_rebuilds, 0,
        "warm served workload must not recompile formulas"
    );
    let (warm_hits, warm_misses) = plan_memo(&mut admin, &plan_bool);
    assert_eq!(
        warm_misses, cold_misses,
        "warm served workload must not compute fresh restrictions"
    );
    println!(
        "plan rebuilds across {} warm requests: {plan_rebuilds} (cold: {cold_misses} \
         restrictions, {cold_hits} hits; warm: +{} hits)",
        total * connection_counts.len(),
        warm_hits - cold_hits
    );

    admin.shutdown().expect("shutdown");
    handle.join();

    // Scaling is only observable with real hardware parallelism; the
    // artifact records the host's CPU budget so readers can tell a flat
    // curve on a 1-core container from a saturated pool.
    let cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let hist_bounds: Vec<String> = HIST_BOUNDS_US.iter().map(|b| b.to_string()).collect();
    let json = format!(
        "{{\"artifact\":\"serve\",\"mode\":\"{}\",\"tree\":\"covid\",\"workers\":{workers},\
         \"shards\":{shards},\"server_threads_expected\":{expected_threads},\"cpus\":{cpus},\
         \"requests_per_phase\":{total},\"mix\":{{\"eval\":0.5,\"check\":0.2,\"prob\":0.2,\"sweep\":0.1}},\
         \"histogram_bounds_us\":[{}],\
         \"cold\":{{\"warmup_ms\":{cold_ms:.3},\"plan_memo_misses\":{cold_misses},\"plan_memo_hits\":{cold_hits}}},\
         \"warm\":{{\"plan_rebuilds\":{plan_rebuilds},\"plan_memo_misses_added\":{},\"plan_memo_hits_added\":{}}},\
         \"scaling\":[{scaling_rows}]}}\n",
        if smoke { "smoke" } else { "full" },
        hist_bounds.join(","),
        warm_misses - cold_misses,
        warm_hits - cold_hits
    );
    let path = "BENCH_serve.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!(
            "\nwrote {path} (max throughput {:.0} req/s)",
            throughputs.iter().cloned().fold(0.0f64, f64::max)
        ),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
}

/// MC: the Monte Carlo estimator of the uncertainty engine —
/// samples/sec over 1→N workers (with the byte-identity determinism
/// cross-check the engine promises at any thread count), the
/// MC-vs-exact error curve over growing sample budgets, and an
/// estimate + Wilson CI on a random tree far beyond what this binary
/// ever hands to the exact BDD path. Writes the `BENCH_mc.json`
/// artifact.
fn mc_bench(smoke: bool) {
    use bfl_core::quant;
    use bfl_core::uncertainty::estimate_probability;
    use bfl_core::{Formula, ModelChecker};

    banner("MC — Monte Carlo estimator: throughput, error curve, beyond-exact scale");

    // Part 1: samples/sec vs worker count on the COVID tree. The same
    // (seed, samples) pair must produce a byte-identical estimate at
    // every worker count — chunk-owned seed streams, not per-thread
    // ones — so the scaling series doubles as a determinism check.
    let tree = corpus::covid();
    let n = tree.num_basic_events();
    let probs: Vec<f64> = (0..n)
        .map(|i| 0.02 + 0.9 * (i as f64) / (n as f64))
        .collect();
    let top_name = tree.name(tree.top()).to_string();
    let phi = Formula::atom(&top_name);
    let samples: u64 = if smoke { 40_000 } else { 2_000_000 };
    let max_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .clamp(1, 8);
    let mut thread_counts = vec![1usize];
    let mut t = 2usize;
    while t < max_threads {
        thread_counts.push(t);
        t *= 2;
    }
    if max_threads > 1 {
        thread_counts.push(max_threads);
    }

    println!("throughput: P({top_name}) on covid · {samples} samples · seed 42");
    println!("{:>8} {:>10} {:>14}", "threads", "ms", "samples/s");
    let mut throughput_rows = String::new();
    let mut reference_bits: Option<u64> = None;
    for &threads in &thread_counts {
        let start = std::time::Instant::now();
        let est = estimate_probability(&tree, &probs, &phi, None, &[], samples, 42, 0.99, threads)
            .expect("estimates")
            .expect("unconditional");
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        let rate = samples as f64 / (ms / 1000.0).max(1e-9);
        match reference_bits {
            None => reference_bits = Some(est.point.to_bits()),
            Some(bits) => assert_eq!(
                bits,
                est.point.to_bits(),
                "estimate must be byte-identical at {threads} threads"
            ),
        }
        println!("{threads:>8} {ms:>10.2} {rate:>14.0}");
        if !throughput_rows.is_empty() {
            throughput_rows.push(',');
        }
        throughput_rows.push_str(&format!(
            "{{\"threads\":{threads},\"ms\":{ms:.3},\"samples_per_sec\":{rate:.0}}}"
        ));
    }
    // On a single-core host the timing loop only ran one worker count;
    // still prove byte-identity by re-running oversubscribed.
    if max_threads == 1 {
        for threads in [2usize, 8] {
            let est =
                estimate_probability(&tree, &probs, &phi, None, &[], samples, 42, 0.99, threads)
                    .expect("estimates")
                    .expect("unconditional");
            assert_eq!(
                reference_bits,
                Some(est.point.to_bits()),
                "estimate must be byte-identical at {threads} threads"
            );
        }
    }

    // Part 2: MC vs exact — absolute error and CI coverage over growing
    // sample budgets, against the exact Shannon-walk probability.
    let mut checker = ModelChecker::new(&tree);
    let exact = quant::probability(&mut checker, &phi, &probs).expect("exact");
    let budgets: &[u64] = if smoke {
        &[1_000, 4_000, 16_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };
    println!("\nerror curve: exact P({top_name}) = {exact:.6} · 99% CIs · seed 7");
    println!(
        "{:>10} {:>12} {:>12} {:>24} {:>7}",
        "samples", "estimate", "abs error", "99% CI", "covers"
    );
    let mut curve_rows = String::new();
    for &budget in budgets {
        let est =
            estimate_probability(&tree, &probs, &phi, None, &[], budget, 7, 0.99, max_threads)
                .expect("estimates")
                .expect("unconditional");
        let err = (est.point - exact).abs();
        let covers = est.ci_lo <= exact && exact <= est.ci_hi;
        println!(
            "{budget:>10} {:>12.6} {err:>12.6} [{:.6}, {:.6}]   {covers:>5}",
            est.point, est.ci_lo, est.ci_hi
        );
        if !curve_rows.is_empty() {
            curve_rows.push(',');
        }
        curve_rows.push_str(&format!(
            "{{\"samples\":{budget},\"estimate\":{},\"abs_error\":{err:.8},\
             \"ci_lo\":{},\"ci_hi\":{},\"ci_contains_exact\":{covers}}}",
            est.point, est.ci_lo, est.ci_hi
        ));
    }

    // Part 3: a random tree an order of magnitude beyond anything else
    // this binary compiles. The estimator never builds a BDD, so cost
    // stays linear in (tree size × samples) no matter how the ordering
    // heuristics would fare.
    let (nb, ng) = if smoke { (300, 200) } else { (2000, 1400) };
    let big = random_tree(&RandomTreeConfig {
        num_basic: nb,
        num_gates: ng,
        max_children: 4,
        vot_probability: 0.1,
        seed: 9,
    });
    let nb_actual = big.num_basic_events();
    let big_probs: Vec<f64> = (0..nb_actual)
        .map(|i| 0.001 + 0.05 * (i as f64) / (nb_actual as f64))
        .collect();
    let big_phi = Formula::atom(big.name(big.top()));
    let big_samples: u64 = if smoke { 5_000 } else { 200_000 };
    let start = std::time::Instant::now();
    let est = estimate_probability(
        &big,
        &big_probs,
        &big_phi,
        None,
        &[],
        big_samples,
        11,
        0.99,
        max_threads,
    )
    .expect("estimates")
    .expect("unconditional");
    let big_ms = start.elapsed().as_secs_f64() * 1000.0;
    let big_name = format!("rand-{nb}x{ng}-s9");
    println!(
        "\nbeyond-exact: {big_name} — {nb_actual} basic events, {} gates, no BDD compiled",
        big.num_gates()
    );
    println!(
        "P(top) ≈ {:.6} (99% CI [{:.6}, {:.6}], {big_samples} samples, {big_ms:.1} ms)",
        est.point, est.ci_lo, est.ci_hi
    );

    let json = format!(
        "{{\"artifact\":\"mc\",\"mode\":\"{}\",\"confidence\":0.99,\
         \"throughput\":{{\"tree\":\"covid\",\"samples\":{samples},\"seed\":42,\
         \"deterministic_across_threads\":true,\"threads\":[{throughput_rows}]}},\
         \"error_curve\":{{\"tree\":\"covid\",\"exact\":{exact},\"seed\":7,\
         \"points\":[{curve_rows}]}},\
         \"beyond_exact\":{{\"tree\":\"{big_name}\",\"basic_events\":{nb_actual},\
         \"gates\":{},\"bdd_compiled\":false,\"samples\":{big_samples},\"seed\":11,\
         \"estimate\":{},\"ci_lo\":{},\"ci_hi\":{},\"ms\":{big_ms:.3}}}}}\n",
        if smoke { "smoke" } else { "full" },
        big.num_gates(),
        est.point,
        est.ci_lo,
        est.ci_hi
    );
    let path = "BENCH_mc.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
}

/// CAUSE: the actual-causality layer — a prepared `cause(ϕ, evidence)`
/// plan swept over per-event what-if scenarios, cold (filling the
/// scenario memo, pinning + maximal-zeros per observation) vs warm
/// (pure memo lookups), plus a recompile-per-scenario baseline through
/// the session path. Records causes/sec and witness counts vs tree
/// size. Writes the `BENCH_cause.json` artifact.
fn cause_bench(smoke: bool) {
    use bfl_core::engine::AnalysisSession;
    use bfl_core::scenario::{Scenario, ScenarioSet};
    use bfl_core::{Formula, Query};
    use bfl_fault_tree::FaultTree;

    banner("CAUSE — actual causes: prepared sweep (cold vs warm) vs session path");
    let mut trees: Vec<(String, FaultTree)> = vec![
        ("fig1".into(), corpus::fig1()),
        ("covid".into(), corpus::covid()),
    ];
    if !smoke {
        trees.push(("pressure_tank".into(), corpus::pressure_tank()));
        trees.push(("attack_tree".into(), corpus::attack_tree()));
        for &(nb, ng, seed) in &[(16, 10, 1u64), (24, 16, 7), (32, 20, 13)] {
            let tree = random_tree(&RandomTreeConfig {
                num_basic: nb,
                num_gates: ng,
                max_children: 3,
                vot_probability: 0.1,
                seed,
            });
            trees.push((format!("rand-{nb}x{ng}-s{seed}"), tree));
        }
    }

    println!(
        "{:<18} {:>6} {:>10} {:>8} {:>11} {:>11} {:>11} {:>12}",
        "tree", "basic", "scenarios", "causes", "session ms", "cold ms", "warm ms", "warm c/s"
    );
    let mut rows = String::new();
    for (name, tree) in &trees {
        let n = tree.num_basic_events();
        let top = Formula::atom(tree.name(tree.top()));
        // The plan's own evidence fixes every other event as failed; the
        // scenarios vary the remaining half (query evidence wins any
        // conflict, so only the free half is swept). The all-failed
        // baseline makes the witness count track the cut-set structure.
        let names = tree.basic_event_names();
        let evidence: Vec<(String, bool)> = names
            .iter()
            .step_by(2)
            .map(|e| (e.to_string(), true))
            .collect();
        let free: Vec<&str> = names.iter().skip(1).step_by(2).copied().collect();
        let query = Query::cause(top, evidence);
        // Fail and repair each free event in turn, plus the all-failed
        // worst case — "which repairs still leave this event causal?".
        let mut set = ScenarioSet::new();
        for event in &free {
            set.push(Scenario::new().bind(*event, true));
            set.push(Scenario::new().bind(*event, false));
        }
        let mut all_failed = Scenario::new();
        for event in &free {
            all_failed = all_failed.bind(*event, true);
        }
        set.push(all_failed);
        let session = AnalysisSession::builder()
            .witness_limit(1 << 16)
            .build(tree.clone());

        // Session path: re-check the full query per scenario (fresh
        // restriction + enumeration each time, no plan reuse).
        let t = std::time::Instant::now();
        let topname = tree.name(tree.top()).to_string();
        let mut session_causes = 0usize;
        for s in &set {
            let o = session
                .check_query(&s.specialise_query(&query, &topname))
                .expect("session cause");
            session_causes += o.causes.as_ref().map_or(0, |r| r.causes.len());
        }
        let t_session = t.elapsed();

        // Prepared path: compile once, sweep cold (fills the scenario
        // memo) then warm (pure lookups).
        let t = std::time::Instant::now();
        let prepared = session.prepare(&query).expect("prepares");
        let cold = prepared.sweep_causes(&set).expect("cold sweep");
        let t_cold = t.elapsed();
        let t = std::time::Instant::now();
        let warm = prepared.sweep_causes(&set).expect("warm sweep");
        let t_warm = t.elapsed();

        // Cross-checks: all three passes agree, and the warm sweep never
        // computed a fresh restriction.
        let causes_of = |outcomes: &[bfl_core::report::Outcome]| -> usize {
            outcomes
                .iter()
                .map(|o| o.causes.as_ref().map_or(0, |r| r.causes.len()))
                .sum()
        };
        let total_causes = causes_of(&cold.outcomes);
        assert_eq!(total_causes, session_causes, "{name}: paths diverged");
        assert_eq!(total_causes, causes_of(&warm.outcomes));
        assert_eq!(warm.stats.memo_misses, 0, "{name}: warm sweep missed");
        let truncated = cold
            .outcomes
            .iter()
            .any(|o| o.causes.as_ref().is_some_and(|r| r.truncated));
        assert!(!truncated, "{name}: enumeration hit the witness limit");

        let session_ms = t_session.as_secs_f64() * 1000.0;
        let cold_ms = t_cold.as_secs_f64() * 1000.0;
        let warm_ms = t_warm.as_secs_f64() * 1000.0;
        let cold_cps = total_causes as f64 / (t_cold.as_secs_f64()).max(1e-9);
        let warm_cps = total_causes as f64 / (t_warm.as_secs_f64()).max(1e-9);
        println!(
            "{:<18} {:>6} {:>10} {:>8} {:>11.3} {:>11.3} {:>11.3} {:>12.0}",
            name,
            n,
            set.len(),
            total_causes,
            session_ms,
            cold_ms,
            warm_ms,
            warm_cps
        );
        if !rows.is_empty() {
            rows.push(',');
        }
        rows.push_str(&format!(
            "{{\"tree\":\"{name}\",\"basic_events\":{n},\"scenarios\":{},\
             \"total_causes\":{total_causes},\"session_ms\":{session_ms:.3},\
             \"cold_ms\":{cold_ms:.3},\"warm_ms\":{warm_ms:.3},\
             \"cold_causes_per_sec\":{cold_cps:.0},\"warm_causes_per_sec\":{warm_cps:.0},\
             \"cold_memo_misses\":{},\"warm_memo_hits\":{}}}",
            set.len(),
            cold.stats.memo_misses,
            warm.stats.memo_hits,
        ));
    }
    let json = format!(
        "{{\"artifact\":\"cause\",\"mode\":\"{}\",\
         \"query\":\"cause(top, evens-failed)\",\"baseline\":\"recheck-per-scenario\",\
         \"trees\":[{rows}]}}\n",
        if smoke { "smoke" } else { "full" }
    );
    let path = "BENCH_cause.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
}

/// REORDER: dynamic sifting + garbage collection vs the static DFS
/// order, on the paper trees plus (full mode) a randomized series.
/// Writes the `BENCH_reorder.json` artifact.
fn reorder(smoke: bool) {
    use bfl_fault_tree::FaultTree;

    banner("REORDER — sifting + GC vs the static DfsPreorder order");
    let mut trees: Vec<(String, FaultTree)> = vec![
        ("or2".into(), corpus::or2()),
        ("fig1".into(), corpus::fig1()),
        ("table1".into(), corpus::table1_tree()),
    ];
    if !smoke {
        trees.push(("covid".into(), corpus::covid()));
        trees.push(("pressure_tank".into(), corpus::pressure_tank()));
        trees.push(("attack_tree".into(), corpus::attack_tree()));
        trees.push(("chain6".into(), corpus::chain(6)));
        for &(nb, ng, seed) in &[
            (20, 12, 1u64),
            (40, 25, 7),
            (50, 30, 5),
            (60, 40, 13),
            (80, 50, 42),
            (100, 60, 99),
        ] {
            let tree = random_tree(&RandomTreeConfig {
                num_basic: nb,
                num_gates: ng,
                max_children: 4,
                vot_probability: 0.1,
                seed,
            });
            trees.push((format!("rand-{nb}x{ng}-s{seed}"), tree));
        }
    }

    println!(
        "{:<18} {:>6} {:>10} {:>10} {:>8} {:>8} {:>9} {:>9} {:>10}",
        "tree", "basic", "dfs nodes", "sifted", "Δ%", "swaps", "sift ms", "gc freed", "mcs Δms"
    );
    let mut rows = String::new();
    let mut improved = 0usize;
    for (name, tree) in &trees {
        let mut tb = TreeBdd::new(tree, VariableOrdering::DfsPreorder);
        let top = tb.element_bdd(tree, tree.top());
        let nodes_dfs = tb.manager().node_count(top);
        let universe = tb.unprimed_vars();
        // MCS counting (minsol + model count) before sifting…
        let t = std::time::Instant::now();
        let ms_static = analysis::minsol(tb.manager_mut(), top, &universe);
        let count_static = tb.manager().sat_count_over(ms_static, &universe);
        let mcs_ms_static = t.elapsed().as_secs_f64() * 1000.0;
        // …then sift + collect and measure the same query again. Only the
        // top cone stays rooted: it is the "live BDD" the artifact tracks.
        tb.retain_elements(&[tree.top()]);
        let t = std::time::Instant::now();
        let stats = tb.sift();
        let sift_ms = t.elapsed().as_secs_f64() * 1000.0;
        let gc = tb.collect_garbage();
        let top = tb.element_bdd(tree, tree.top()); // remapped handle
        let nodes_sifted = tb.manager().node_count(top);
        let t = std::time::Instant::now();
        let ms_sifted = analysis::minsol(tb.manager_mut(), top, &universe);
        let count_sifted = tb.manager().sat_count_over(ms_sifted, &universe);
        let mcs_ms_sifted = t.elapsed().as_secs_f64() * 1000.0;
        assert_eq!(
            count_static, count_sifted,
            "{name}: MCS count diverged after maintenance"
        );
        let reduction = 100.0 * (1.0 - nodes_sifted as f64 / nodes_dfs as f64);
        if reduction >= 20.0 {
            improved += 1;
        }
        println!(
            "{:<18} {:>6} {:>10} {:>10} {:>7.1}% {:>8} {:>9.2} {:>9} {:>10.2}",
            name,
            tree.num_basic_events(),
            nodes_dfs,
            nodes_sifted,
            reduction,
            stats.swaps,
            sift_ms,
            gc.collected,
            mcs_ms_static - mcs_ms_sifted,
        );
        if !rows.is_empty() {
            rows.push(',');
        }
        rows.push_str(&format!(
            "{{\"tree\":\"{name}\",\"basic_events\":{},\"nodes_dfs\":{nodes_dfs},\
             \"nodes_sifted\":{nodes_sifted},\"reduction_pct\":{reduction:.2},\
             \"swaps\":{},\"sift_ms\":{sift_ms:.3},\"gc_collected\":{},\
             \"arena_after\":{},\"mcs_count\":{count_static},\
             \"mcs_ms_static\":{mcs_ms_static:.3},\"mcs_ms_sifted\":{mcs_ms_sifted:.3}}}",
            tree.num_basic_events(),
            stats.swaps,
            gc.collected,
            tb.manager().arena_size(),
        ));
    }
    let json = format!(
        "{{\"artifact\":\"reorder\",\"mode\":\"{}\",\"baseline\":\"DfsPreorder\",\
         \"trees_with_20pct_reduction\":{improved},\"trees\":[{rows}]}}\n",
        if smoke { "smoke" } else { "full" }
    );
    let path = "BENCH_reorder.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!(
            "\nwrote {path} ({improved}/{} trees ≥ 20% smaller)",
            trees.len()
        ),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
}

/// SCALE: the industrial corpus (1k–10k basic events) compiled
/// sequentially vs with modular-parallel construction at 1..=4 workers.
/// Every parallel compile is cross-checked against the sequential one:
/// node-for-node identical diagrams for every element, bit-identical
/// verdicts on sampled status vectors and bit-identical top-event
/// probability. Writes the `BENCH_scale.json` artifact.
fn scale_bench(smoke: bool) {
    use bfl_fault_tree::prob;

    banner("SCALE — industrial corpus: modular parallel BDD construction");
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("host parallelism: {host} (wall-clock speedup needs real cores)");
    let sizes: &[usize] = if smoke {
        &[1_000, 5_000]
    } else {
        &[1_000, 2_000, 5_000, 10_000]
    };
    let max_workers = 4usize;
    let mut rows = String::new();
    for &n in sizes {
        let model = corpus::scaled_model(n);
        let tree = &model.tree;
        let probs: Vec<f64> = model.probabilities.iter().map(|p| p.unwrap()).collect();

        // Sequential baseline: the lazy single-threaded compile.
        let t0 = std::time::Instant::now();
        let mut seq = TreeBdd::new(tree, VariableOrdering::DfsPreorder);
        let top_seq = seq.element_bdd(tree, tree.top());
        let t_seq = t0.elapsed();
        let live_seq = seq.live_node_count(&[]);
        let p_seq = prob::bdd_probability(tree, &seq, top_seq, &probs).expect("probability");
        let nodes_per_sec = live_seq as f64 / t_seq.as_secs_f64().max(1e-9);
        println!(
            "\ntree scaled-{n}: {} elements, {} live nodes, P(top) = {p_seq:.6e}",
            tree.len(),
            live_seq
        );
        println!(
            "{:<10} {:>10} {:>10} {:>9} {:>8} {:>9}",
            "workers", "total ms", "stitch ms", "speedup", "modules", "nodes/s"
        );
        println!(
            "{:<10} {:>10.1} {:>10} {:>9} {:>8} {:>9.2e}",
            "seq",
            t_seq.as_secs_f64() * 1e3,
            "-",
            "1.00",
            "-",
            nodes_per_sec
        );

        let mut wrows = String::new();
        let mut modules_detected = 0usize;
        let mut speedup_at_max = 1.0f64;
        for workers in 1..=max_workers {
            let t0 = std::time::Instant::now();
            let mut par = TreeBdd::new(tree, VariableOrdering::DfsPreorder);
            let stats = par.compile_parallel(tree, workers);
            let t_par = t0.elapsed();
            modules_detected = modules_detected.max(stats.modules_detected);

            // Cross-checks: parallel construction is a strategy, not a
            // semantics change. Node-for-node identical diagrams ...
            let top_par = par.element_bdd(tree, tree.top());
            assert_eq!(
                par.manager().node_count(top_par),
                seq.manager().node_count(top_seq),
                "scaled-{n}: top node count diverged at {workers} workers"
            );
            assert_eq!(
                par.live_node_count(&[]),
                live_seq,
                "scaled-{n}: live node count diverged at {workers} workers"
            );
            for e in tree.iter() {
                let fp = par.element_bdd(tree, e);
                let fs = seq.element_bdd(tree, e);
                assert_eq!(
                    par.manager().node_count(fp),
                    seq.manager().node_count(fs),
                    "scaled-{n}: node count of {} diverged",
                    tree.name(e)
                );
            }
            // ... identical verdicts on sampled vectors ...
            for seed in 0..20u64 {
                let bits: Vec<bool> = (0..n)
                    .map(|i| {
                        (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            ^ (i as u64).wrapping_mul(0xD134_2543_DE82_EF95))
                        .count_ones()
                        .is_multiple_of(2)
                    })
                    .collect();
                let b = StatusVector::from_bits(bits);
                assert_eq!(
                    par.eval_vector(tree, top_par, &b),
                    seq.eval_vector(tree, top_seq, &b),
                    "scaled-{n}: verdict diverged at {workers} workers"
                );
            }
            // ... and a bit-identical probability (same diagram, same walk).
            let p_par = prob::bdd_probability(tree, &par, top_par, &probs).expect("probability");
            assert_eq!(
                p_par.to_bits(),
                p_seq.to_bits(),
                "scaled-{n}: probability diverged at {workers} workers"
            );

            let speedup = t_seq.as_secs_f64() / t_par.as_secs_f64().max(1e-9);
            if workers == max_workers {
                speedup_at_max = speedup;
            }
            println!(
                "{:<10} {:>10.1} {:>10.1} {:>9.2} {:>8} {:>9.2e}",
                workers,
                t_par.as_secs_f64() * 1e3,
                stats.stitch_micros as f64 / 1e3,
                speedup,
                stats.modules_detected,
                live_seq as f64 / t_par.as_secs_f64().max(1e-9)
            );
            if !wrows.is_empty() {
                wrows.push(',');
            }
            wrows.push_str(&format!(
                "{{\"workers\":{workers},\"total_ms\":{:.3},\"stitch_ms\":{:.3},\
                 \"speedup\":{speedup:.3},\"nodes_per_sec\":{:.0},\
                 \"modules_detected\":{}}}",
                t_par.as_secs_f64() * 1e3,
                stats.stitch_micros as f64 / 1e3,
                live_seq as f64 / t_par.as_secs_f64().max(1e-9),
                stats.modules_detected,
            ));
        }
        if !rows.is_empty() {
            rows.push(',');
        }
        rows.push_str(&format!(
            "{{\"tree\":\"scaled-{n}\",\"basic_events\":{n},\"elements\":{},\
             \"modules\":{modules_detected},\"live_nodes\":{live_seq},\
             \"probability\":{p_seq:e},\"seq_ms\":{:.3},\
             \"seq_nodes_per_sec\":{nodes_per_sec:.0},\
             \"speedup_at_{max_workers}_workers\":{speedup_at_max:.3},\
             \"identical_node_counts\":true,\"identical_verdicts\":true,\
             \"identical_probabilities\":true,\"workers\":[{wrows}]}}",
            tree.len(),
            t_seq.as_secs_f64() * 1e3,
        ));
    }
    let json = format!(
        "{{\"artifact\":\"scale\",\"mode\":\"{}\",\"host_parallelism\":{host},\
         \"baseline\":\"sequential element_bdd\",\"trees\":[{rows}]}}\n",
        if smoke { "smoke" } else { "full" }
    );
    let path = "BENCH_scale.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
}
