//! PREP: compiled query plans vs per-scenario recompilation.
//!
//! The workload of Section VI's what-if analyses: one layer-2 property,
//! many evidence hypotheses. Three contenders:
//!
//! * `recompile`: the classic path — wrap the query in evidence
//!   operators per scenario and `check_query` it (AST rewriting + BDD
//!   pipeline each time, fresh session so nothing is amortised);
//! * `prepare_cold`: `session.prepare` once, then `sweep` a fresh
//!   prepared query (restriction per scenario, memo cold);
//! * `prepare_warm`: sweep an already-swept prepared query (pure memo
//!   lookups — the steady-state serving cost).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use bfl_core::parser::parse_query;
use bfl_core::scenario::ScenarioSet;
use bfl_core::AnalysisSession;
use bfl_fault_tree::corpus;

fn scenarios(session: &AnalysisSession) -> ScenarioSet {
    let mut set = ScenarioSet::new();
    for name in session.tree().basic_event_names() {
        set.push(bfl_core::Scenario::new().bind(name, true));
        set.push(bfl_core::Scenario::new().bind(name, false));
    }
    set
}

fn bench_prepared_sweep(c: &mut Criterion) {
    let query = "exists MCS(IWoS) & H4";
    let mut group = c.benchmark_group("prepared_sweep");
    group.sample_size(20).measurement_time(Duration::from_secs(3));

    group.bench_function("recompile", |b| {
        b.iter(|| {
            // Fresh session per iteration: every scenario pays the whole
            // pipeline, as the pre-`prepare` examples did.
            let session = AnalysisSession::new(corpus::covid());
            let q = parse_query(query).expect("parses");
            let top = session.tree().name(session.tree().top()).to_string();
            let set = scenarios(&session);
            let mut holding = 0usize;
            for s in &set {
                let specialised = s.specialise_query(&q, &top);
                if session.check_query(&specialised).expect("checks").holds {
                    holding += 1;
                }
            }
            black_box(holding)
        })
    });

    group.bench_function("prepare_cold", |b| {
        b.iter(|| {
            let session = AnalysisSession::new(corpus::covid());
            let q = parse_query(query).expect("parses");
            let prepared = session.prepare(&q).expect("prepares");
            let set = scenarios(&session);
            black_box(prepared.sweep(&set).expect("sweeps").holding())
        })
    });

    group.bench_function("prepare_warm", |b| {
        let session = AnalysisSession::new(corpus::covid());
        let q = parse_query(query).expect("parses");
        let prepared = session.prepare(&q).expect("prepares");
        let set = scenarios(&session);
        let _ = prepared.sweep(&set).expect("warms the memo");
        b.iter(|| black_box(prepared.sweep(&set).expect("sweeps").holding()))
    });

    group.finish();
}

criterion_group!(benches, bench_prepared_sweep);
criterion_main!(benches);
