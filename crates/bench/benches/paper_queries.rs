//! Benchmarks for every query of the paper's case study and worked
//! examples: one Criterion group per experiment id (see `DESIGN.md` §7).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bfl_bench::{covid_properties, parse, property_6};
use bfl_core::parser::{parse_formula, Spec};
use bfl_core::patterns::{table1_rows, table1_tree};
use bfl_core::{counterexample, MinimalityScope, ModelChecker};
use bfl_fault_tree::{analysis, corpus, StatusVector};

/// FIG1: MCS/MPS of the Fig. 1 subtree.
fn bench_fig1(c: &mut Criterion) {
    let tree = corpus::fig1();
    let mut group = c.benchmark_group("fig1_mcs_mps");
    group.bench_function("mcs", |b| {
        b.iter(|| black_box(analysis::minimal_cut_sets(&tree, tree.top())))
    });
    group.bench_function("mps", |b| {
        b.iter(|| black_box(analysis::minimal_path_sets(&tree, tree.top())))
    });
    group.finish();
}

/// EX2: Algorithm 2 — vector walk on MCS(e_top) of the OR gate.
fn bench_algo2_walk(c: &mut Criterion) {
    let tree = corpus::or2();
    let mut mc = ModelChecker::new(&tree);
    let phi = parse_formula("MCS(Top)").expect("parses");
    let b = StatusVector::from_bits([false, true]);
    // Warm the translation cache: the walk itself is the benchmark.
    let _ = mc.holds(&b, &phi).expect("checks");
    c.bench_function("algo2_walk", |bench| {
        bench.iter(|| black_box(mc.holds(&b, &phi).expect("checks")))
    });
}

/// EX3: Algorithm 3 — AllSat on MCS(e_top).
fn bench_algo3_allsat(c: &mut Criterion) {
    let tree = corpus::or2();
    let mut mc = ModelChecker::new(&tree);
    let phi = parse_formula("MCS(Top)").expect("parses");
    let _ = mc.satisfying_vectors(&phi).expect("warm");
    c.bench_function("algo3_allsat", |bench| {
        bench.iter(|| black_box(mc.satisfying_vectors(&phi).expect("enumerates")))
    });
}

/// P1–P9: each case-study property, end to end (cold checker per
/// iteration batch would dominate, so the translation cache is shared —
/// matching how the paper envisions repeated queries).
fn bench_covid_properties(c: &mut Criterion) {
    let tree = corpus::covid();
    let mut group = c.benchmark_group("covid_properties");
    for p in covid_properties() {
        let spec = parse(p.source);
        group.bench_function(format!("P{}", p.id), |bench| {
            let mut mc = ModelChecker::new(&tree);
            bench.iter(|| match &spec {
                Spec::Query(q) => black_box(mc.check_query(q).expect("checks")),
                Spec::Formula(f) => black_box(!mc.satisfying_vectors(f).expect("enumerates").is_empty()),
            })
        });
    }
    group.bench_function("P6", |bench| {
        let mut mc = ModelChecker::new(&tree);
        let q = property_6(&tree);
        bench.iter(|| black_box(mc.check_query(&q).expect("checks")))
    });
    group.finish();
}

/// P-cold: the dominant cost — building the checker and translating
/// MCS(IWoS) from scratch.
fn bench_covid_cold_translation(c: &mut Criterion) {
    let tree = corpus::covid();
    let phi = parse_formula("MCS(IWoS)").expect("parses");
    c.bench_function("covid_cold_mcs_translation", |bench| {
        bench.iter(|| {
            let mut mc = ModelChecker::new(&tree);
            black_box(mc.formula_bdd(&phi).expect("translates"))
        })
    });
}

/// TAB1: Algorithm 4 on every Table I row.
fn bench_table1_counterexamples(c: &mut Criterion) {
    let tree = table1_tree();
    let rows = table1_rows();
    let mut group = c.benchmark_group("table1_counterexamples");
    for (i, row) in rows.iter().enumerate() {
        group.bench_function(format!("row{}", i + 1), |bench| {
            let mut mc = ModelChecker::new(&tree);
            if row.needs_support_scope {
                mc.set_minimality_scope(MinimalityScope::FormulaSupport);
            }
            bench.iter(|| {
                black_box(counterexample(&mut mc, &row.example, &row.formula).expect("checks"))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig1,
    bench_algo2_walk,
    bench_algo3_allsat,
    bench_covid_properties,
    bench_covid_cold_translation,
    bench_table1_counterexamples
);
criterion_main!(benches);
