//! Ablation benchmarks for the design choices called out in `DESIGN.md`:
//!
//! * ABL-ORD: variable orderings (declaration / DFS / BFS / Bouissou);
//! * ABL-MCS: the paper's primed-variable MCS construction vs Rauzy's
//!   `minsol`;
//! * ABL-VOT: dynamic-programming VOT translation vs the paper's literal
//!   subset expansion;
//! * ABL-CEX: Algorithm 4 vs the exhaustive nearest-witness baseline.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Sample/measurement settings keeping the full sweep affordable.
macro_rules! tune {
    ($group:expr) => {
        $group.sample_size(20).measurement_time(Duration::from_secs(3))
    };
}
use std::hint::black_box;

use bfl_bdd::Manager;
use bfl_core::counterexample::{counterexample, nearest_witnesses};
use bfl_core::{Formula, ModelChecker};
use bfl_fault_tree::bdd::{vot_naive, vot_threshold, TreeBdd};
use bfl_fault_tree::generator::{random_tree, RandomTreeConfig};
use bfl_fault_tree::{analysis, corpus, StatusVector, VariableOrdering};

/// ABL-ORD: BDD construction for the COVID tree and a random tree under
/// each static ordering.
fn bench_orderings(c: &mut Criterion) {
    let covid = corpus::covid();
    let random = random_tree(&RandomTreeConfig {
        num_basic: 40,
        num_gates: 25,
        max_children: 4,
        vot_probability: 0.1,
        seed: 7,
    });
    let mut group = c.benchmark_group("ablation_ordering");
    tune!(group);
    for ordering in VariableOrdering::all() {
        group.bench_with_input(
            BenchmarkId::new("covid", format!("{ordering:?}")),
            &ordering,
            |b, &ord| {
                b.iter(|| {
                    let mut tb = TreeBdd::new(&covid, ord);
                    black_box(tb.element_bdd(&covid, covid.top()))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("random40", format!("{ordering:?}")),
            &ordering,
            |b, &ord| {
                b.iter(|| {
                    let mut tb = TreeBdd::new(&random, ord);
                    black_box(tb.element_bdd(&random, random.top()))
                })
            },
        );
    }
    group.finish();
}

/// ABL-MCS: the two MCS engines on the COVID tree and a larger random
/// tree.
fn bench_mcs_engines(c: &mut Criterion) {
    let covid = corpus::covid();
    let random = random_tree(&RandomTreeConfig {
        num_basic: 30,
        num_gates: 20,
        max_children: 4,
        vot_probability: 0.0,
        seed: 11,
    });
    let mut group = c.benchmark_group("ablation_mcs_engine");
    tune!(group);
    group.bench_function("covid/minsol", |b| {
        b.iter(|| black_box(analysis::minimal_cut_sets(&covid, covid.top())))
    });
    group.bench_function("covid/paper_construction", |b| {
        b.iter(|| black_box(analysis::minimal_cut_sets_paper(&covid, covid.top())))
    });
    group.bench_function("random30/minsol", |b| {
        b.iter(|| black_box(analysis::minimal_cut_sets(&random, random.top())))
    });
    group.bench_function("random30/paper_construction", |b| {
        b.iter(|| black_box(analysis::minimal_cut_sets_paper(&random, random.top())))
    });
    group.bench_function("covid/zdd_bottom_up", |b| {
        b.iter(|| black_box(bfl_fault_tree::zdd_engine::minimal_cut_sets_zdd(&covid, covid.top())))
    });
    group.bench_function("random30/zdd_bottom_up", |b| {
        b.iter(|| {
            black_box(bfl_fault_tree::zdd_engine::minimal_cut_sets_zdd(&random, random.top()))
        })
    });
    group.finish();
}

/// ABL-VOT: threshold DP vs the exponential subset expansion of Def. 6.
fn bench_vot(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_vot");
    tune!(group);
    for n in [8u32, 12, 16] {
        let k = n / 2;
        group.bench_with_input(BenchmarkId::new("dp", n), &n, |b, &n| {
            b.iter(|| {
                let mut m = Manager::new(2 * n);
                let children: Vec<_> = (0..n).map(|i| m.var(bfl_bdd::Var(2 * i))).collect();
                black_box(vot_threshold(&mut m, &children, k))
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, &n| {
            b.iter(|| {
                let mut m = Manager::new(2 * n);
                let children: Vec<_> = (0..n).map(|i| m.var(bfl_bdd::Var(2 * i))).collect();
                black_box(vot_naive(&mut m, &children, k))
            })
        });
    }
    group.finish();
}

/// ABL-CEX: Algorithm 4 vs the exhaustive nearest-witness search on the
/// COVID tree.
fn bench_counterexample_strategies(c: &mut Criterion) {
    let tree = corpus::covid();
    let phi = Formula::atom("IWoS").mcs();
    let b = StatusVector::all_failed(tree.num_basic_events());
    let mut group = c.benchmark_group("ablation_counterexample");
    tune!(group);
    group.bench_function("algorithm4", |bench| {
        let mut mc = ModelChecker::new(&tree);
        let _ = mc.formula_bdd(&phi).expect("warm");
        bench.iter(|| black_box(counterexample(&mut mc, &b, &phi).expect("checks")))
    });
    group.bench_function("nearest_witness", |bench| {
        let mut mc = ModelChecker::new(&tree);
        let _ = mc.formula_bdd(&phi).expect("warm");
        bench.iter(|| black_box(nearest_witnesses(&mut mc, &b, &phi).expect("enumerates")))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_orderings,
    bench_mcs_engines,
    bench_vot,
    bench_counterexample_strategies
);
criterion_main!(benches);
