//! Scaling benchmarks: BDD construction, minimal cut sets, model checking
//! and counterexamples as functions of fault-tree size (SCAL-BDD and
//! SCAL-MCS of the experiment index).

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Sample/measurement settings keeping the full sweep affordable.
macro_rules! tune {
    ($group:expr) => {
        $group.sample_size(20).measurement_time(Duration::from_secs(3))
    };
}

use bfl_core::{counterexample, Formula, ModelChecker};
use bfl_fault_tree::bdd::TreeBdd;
use bfl_fault_tree::generator::{random_tree, RandomTreeConfig};
use bfl_fault_tree::{analysis, corpus, FaultTree, StatusVector, VariableOrdering};

fn sizes() -> Vec<(usize, usize)> {
    vec![(10, 6), (20, 12), (40, 25), (80, 50), (160, 100)]
}

fn tree_of(nb: usize, ng: usize) -> FaultTree {
    random_tree(&RandomTreeConfig {
        num_basic: nb,
        num_gates: ng,
        max_children: 4,
        vot_probability: 0.1,
        seed: 42,
    })
}

/// SCAL-BDD: Ψ_FT translation time vs tree size.
fn bench_bdd_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_bdd_build");
    tune!(group);
    for (nb, ng) in sizes() {
        let tree = tree_of(nb, ng);
        group.bench_with_input(BenchmarkId::from_parameter(nb), &tree, |b, tree| {
            b.iter(|| {
                let mut tb = TreeBdd::new(tree, VariableOrdering::DfsPreorder);
                black_box(tb.element_bdd(tree, tree.top()))
            })
        });
    }
    group.finish();
}

/// SCAL-MCS: minimal cut sets (minsol engine) vs tree size.
fn bench_mcs(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_mcs");
    tune!(group);
    for (nb, ng) in sizes() {
        let tree = tree_of(nb, ng);
        group.bench_with_input(BenchmarkId::from_parameter(nb), &tree, |b, tree| {
            b.iter(|| black_box(analysis::minimal_cut_sets(tree, tree.top())))
        });
    }
    group.finish();
}

/// Model checking a quantified implication on growing trees.
fn bench_forall(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_forall");
    tune!(group);
    for (nb, ng) in sizes() {
        let tree = tree_of(nb, ng);
        let phi = Formula::atom("be0").implies(Formula::atom("g0"));
        group.bench_with_input(BenchmarkId::from_parameter(nb), &tree, |b, tree| {
            b.iter(|| {
                let mut mc = ModelChecker::new(tree);
                black_box(
                    mc.check_query(&bfl_core::Query::Forall(phi.clone()))
                        .expect("checks"),
                )
            })
        });
    }
    group.finish();
}

/// Algorithm 4 on growing trees (all-failed vector, MCS of the top).
fn bench_counterexample(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_counterexample");
    tune!(group);
    for (nb, ng) in sizes() {
        let tree = tree_of(nb, ng);
        let phi = Formula::atom("g0").mcs();
        let b = StatusVector::all_failed(tree.num_basic_events());
        group.bench_with_input(BenchmarkId::from_parameter(nb), &tree, |bench, tree| {
            let mut mc = ModelChecker::new(tree);
            let _ = mc.formula_bdd(&phi).expect("warm");
            bench.iter(|| black_box(counterexample(&mut mc, &b, &phi).expect("checks")))
        });
    }
    group.finish();
}

/// Balanced AND/OR chains (corpus::chain) — worst-case distinct leaves.
/// Beyond depth 8 the number of MCSs explodes double-exponentially
/// (depth 10 has ~10^9), so enumeration is benchmarked up to depth 8 and
/// *counting* (BDD model counting on the minsol diagram) carries the
/// series onwards.
fn bench_chain_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_chain_depth");
    tune!(group);
    for depth in [4u32, 6, 8] {
        let tree = corpus::chain(depth);
        group.bench_with_input(
            BenchmarkId::new("enumerate", depth),
            &tree,
            |b, tree| b.iter(|| black_box(analysis::minimal_cut_sets(tree, tree.top()).len())),
        );
    }
    for depth in [4u32, 6, 8, 10, 12] {
        let tree = corpus::chain(depth);
        group.bench_with_input(BenchmarkId::new("count", depth), &tree, |b, tree| {
            b.iter(|| black_box(analysis::count_minimal_cut_sets(tree, tree.top())))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bdd_build,
    bench_mcs,
    bench_forall,
    bench_counterexample,
    bench_chain_depth
);
criterion_main!(benches);
