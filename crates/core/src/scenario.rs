//! What-if scenarios: named bundles of evidence bindings `e ← b`.
//!
//! BFL's evidence operator `ϕ[e↦b]` (Definition 5) is the logic's
//! hypothesis mechanism: "suppose basic event `e` is known to have
//! failed (or to be operational) — does the property still hold?"
//! Section VI's what-if analyses ask exactly this, for *many*
//! hypotheses against the *same* property. A [`Scenario`] reifies one
//! such hypothesis as data (instead of baking it into the formula AST),
//! and a [`ScenarioSet`] holds a whole sweep of them.
//!
//! Scenarios are deliberately tree-independent — just names and Boolean
//! values. They are validated against a concrete fault tree when they
//! are *applied*: by
//! [`PreparedQuery::eval`](crate::plan::PreparedQuery::eval) (which
//! implements them as BDD restriction on an already-compiled diagram)
//! or by [`Scenario::specialise`]/[`Scenario::specialise_query`] (which
//! produce the equivalent evidence-wrapped AST for the classic
//! recompile-per-scenario path).
//!
//! ## Text format
//!
//! One scenario per line; blank lines and `#` comments are skipped:
//!
//! ```text
//! # COVID what-ifs
//! baseline:
//! infected-worker: IW = 1
//! disinfected:     H5 = 0, H4 = 0
//! ```
//!
//! A leading `label:` names the scenario (optional). Bindings are
//! comma-separated `event = 0|1` pairs (`:=` is also accepted, matching
//! the evidence syntax); a line with no bindings is the baseline
//! scenario (no evidence), and a bare `-` is the *unnamed* baseline.

use std::fmt;

use crate::ast::{Formula, Query};
use crate::parser::ParseError;

/// One named what-if hypothesis: an ordered list of evidence bindings
/// `e ← b` over basic-event names.
///
/// Bindings apply in order with **first-binding-wins** semantics for a
/// repeated event — exactly the semantics of chained evidence
/// `ϕ[e↦v][e↦v′]`, where the inner (first) restriction eliminates the
/// variable and the outer one becomes an identity.
///
/// ```
/// use bfl_core::scenario::Scenario;
/// let s = Scenario::named("lockdown").bind("IW", false).bind("IS", false);
/// assert_eq!(s.to_string(), "lockdown: IW = 0, IS = 0");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Scenario {
    name: Option<String>,
    bindings: Vec<(String, bool)>,
}

impl Scenario {
    /// The empty (baseline) scenario: no evidence.
    pub fn new() -> Self {
        Scenario::default()
    }

    /// An empty scenario carrying a display name.
    pub fn named(name: impl Into<String>) -> Self {
        Scenario {
            name: Some(name.into()),
            bindings: Vec::new(),
        }
    }

    /// Builds a scenario from `(event, value)` pairs.
    pub fn from_pairs<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, bool)>,
        S: Into<String>,
    {
        Scenario {
            name: None,
            bindings: pairs.into_iter().map(|(e, v)| (e.into(), v)).collect(),
        }
    }

    /// Adds the binding `event ← value` (builder style).
    pub fn bind(mut self, event: impl Into<String>, value: bool) -> Self {
        self.bindings.push((event.into(), value));
        self
    }

    /// Renames the scenario (builder style).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// The scenario's display name, if any.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// The evidence bindings, in binding order.
    pub fn bindings(&self) -> &[(String, bool)] {
        &self.bindings
    }

    /// Whether the scenario binds nothing (the baseline).
    pub fn is_baseline(&self) -> bool {
        self.bindings.is_empty()
    }

    /// The bindings rendered without the name: `A = 1, B = 0`.
    pub fn bindings_string(&self) -> String {
        self.bindings
            .iter()
            .map(|(e, v)| format!("{e} = {}", u8::from(*v)))
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// The classic AST encoding of this scenario: `ϕ[e1↦v1][e2↦v2]…` —
    /// what a per-scenario `with_evidence` + recompile loop would build.
    /// Used by the cross-check tests and the migration docs; the
    /// prepared-query path evaluates the same semantics by restriction.
    pub fn specialise(&self, phi: &Formula) -> Formula {
        self.bindings
            .iter()
            .fold(phi.clone(), |acc, (e, v)| acc.with_evidence(e.clone(), *v))
    }

    /// Lifts [`Scenario::specialise`] to layer-2 queries: evidence wraps
    /// the quantified formula (`∃ϕ` → `∃ϕ[…]`) and both operands of an
    /// `IDP`; `SUP(e)` expands to its defining `IDP(e, e_top)` first,
    /// with the top element resolved by name at evaluation time.
    pub fn specialise_query(&self, psi: &Query, top_name: &str) -> Query {
        match psi {
            Query::Exists(phi) => Query::Exists(self.specialise(phi)),
            Query::Forall(phi) => Query::Forall(self.specialise(phi)),
            Query::Idp(a, b) => Query::Idp(self.specialise(a), self.specialise(b)),
            Query::Sup(name) => Query::Idp(
                self.specialise(&Formula::atom(name.clone())),
                self.specialise(&Formula::atom(top_name)),
            ),
            Query::Prob {
                formula,
                given,
                op,
                bound,
            } => Query::Prob {
                formula: self.specialise(formula),
                given: given.as_ref().map(|g| self.specialise(g)),
                op: *op,
                bound: *bound,
            },
            Query::Importance(phi) => Query::Importance(self.specialise(phi)),
            // Causality evidence is *observational*, not counterfactual:
            // scenario bindings extend the observation instead of
            // wrapping ϕ, and the query's own evidence wins conflicts
            // (first binding wins).
            Query::Cause {
                formula,
                evidence,
                limit,
            } => Query::Cause {
                formula: formula.clone(),
                evidence: evidence
                    .iter()
                    .cloned()
                    .chain(self.bindings.iter().cloned())
                    .collect(),
                limit: *limit,
            },
        }
    }

    /// Parses one scenario line (see the [module docs](self)).
    ///
    /// # Errors
    ///
    /// [`ParseError`] (line 1) on malformed bindings.
    pub fn parse(line: &str) -> Result<Scenario, ParseError> {
        parse_line(line, 1)
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.name, self.bindings.is_empty()) {
            (Some(n), true) => write!(f, "{n}:"),
            (Some(n), false) => write!(f, "{n}: {}", self.bindings_string()),
            (None, true) => write!(f, "(baseline)"),
            (None, false) => write!(f, "{}", self.bindings_string()),
        }
    }
}

/// A batch of scenarios to sweep a prepared query over.
///
/// ```
/// use bfl_core::scenario::ScenarioSet;
/// let set = ScenarioSet::parse("baseline:\nworst: IW = 1, H5 = 1\n").unwrap();
/// assert_eq!(set.len(), 2);
/// assert!(set.scenarios[0].is_baseline());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScenarioSet {
    /// The scenarios, in sweep order.
    pub scenarios: Vec<Scenario>,
}

impl ScenarioSet {
    /// An empty set.
    pub fn new() -> Self {
        ScenarioSet::default()
    }

    /// Builds a set from scenarios.
    pub fn from_scenarios<I: IntoIterator<Item = Scenario>>(scenarios: I) -> Self {
        ScenarioSet {
            scenarios: scenarios.into_iter().collect(),
        }
    }

    /// Appends a scenario.
    pub fn push(&mut self, scenario: Scenario) -> &mut Self {
        self.scenarios.push(scenario);
        self
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Iterates over the scenarios.
    pub fn iter(&self) -> std::slice::Iter<'_, Scenario> {
        self.scenarios.iter()
    }

    /// Parses the line-oriented scenario format (see the
    /// [module docs](self)).
    ///
    /// # Errors
    ///
    /// The first [`ParseError`], with the line number of the offending
    /// scenario.
    pub fn parse(text: &str) -> Result<ScenarioSet, ParseError> {
        let mut scenarios = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            scenarios.push(parse_line(line, lineno + 1)?);
        }
        Ok(ScenarioSet { scenarios })
    }

    /// Every single-event scenario `e ← value` over the given names — the
    /// classic "fail (or fix) each component in turn" sweep.
    pub fn singletons<I, S>(names: I, value: bool) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        // Label charset excludes `=`, so the names spell the value out —
        // keeping the whole set re-parseable through `Display`.
        let verdict = if value { "failed" } else { "operational" };
        ScenarioSet {
            scenarios: names
                .into_iter()
                .map(|n| {
                    let n = n.into();
                    Scenario::named(format!("{n} {verdict}")).bind(n, value)
                })
                .collect(),
        }
    }
}

impl fmt::Display for ScenarioSet {
    /// One line per scenario, re-parseable by [`ScenarioSet::parse`]. An
    /// unnamed baseline scenario renders as the bare `-` line (a blank
    /// line would be skipped by the parser).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.scenarios {
            match (&s.name, s.bindings.is_empty()) {
                (Some(n), true) => writeln!(f, "{n}:")?,
                (Some(n), false) => writeln!(f, "{n}: {}", s.bindings_string())?,
                (None, true) => writeln!(f, "-")?,
                (None, false) => writeln!(f, "{}", s.bindings_string())?,
            }
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a ScenarioSet {
    type Item = &'a Scenario;
    type IntoIter = std::slice::Iter<'a, Scenario>;
    fn into_iter(self) -> Self::IntoIter {
        self.scenarios.iter()
    }
}

impl From<Scenario> for ScenarioSet {
    fn from(s: Scenario) -> Self {
        ScenarioSet { scenarios: vec![s] }
    }
}

impl FromIterator<Scenario> for ScenarioSet {
    fn from_iter<I: IntoIterator<Item = Scenario>>(iter: I) -> Self {
        ScenarioSet::from_scenarios(iter)
    }
}

fn err(line: usize, col: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        col,
        message: message.into(),
    }
}

fn parse_line(line: &str, lineno: usize) -> Result<Scenario, ParseError> {
    // A bare `-` is the unnamed baseline (the form `Display` emits for
    // it; a blank line would be skipped entirely).
    if line.trim() == "-" {
        return Ok(Scenario::new());
    }
    // Spec-file label splitting, with spaces allowed in scenario names.
    let (label, rest) = crate::report::split_label(line.trim(), true);
    let mut scenario = Scenario {
        name: label.map(str::to_string),
        bindings: Vec::new(),
    };
    if rest.is_empty() {
        return Ok(scenario);
    }
    for part in rest.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        // `event = value` with `:=` accepted as in evidence syntax.
        let (name, value) = match part.split_once(":=").or_else(|| part.split_once('=')) {
            Some((n, v)) => (n.trim().trim_matches('"'), v.trim()),
            None => {
                return Err(err(
                    lineno,
                    1,
                    format!("binding `{part}` is not of the form `event = 0|1`"),
                ))
            }
        };
        if name.is_empty() {
            return Err(err(
                lineno,
                1,
                format!("binding `{part}` has no event name"),
            ));
        }
        let value = match value {
            "0" | "false" => false,
            "1" | "true" => true,
            other => {
                return Err(err(
                    lineno,
                    1,
                    format!("binding value `{other}` is not 0/1 (or false/true)"),
                ))
            }
        };
        scenario.bindings.push((name.to_string(), value));
    }
    Ok(scenario)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_formula, parse_query};

    #[test]
    fn builder_and_display() {
        let s = Scenario::named("lockdown")
            .bind("IW", false)
            .bind("IS", false);
        assert_eq!(s.name(), Some("lockdown"));
        assert_eq!(s.bindings().len(), 2);
        assert_eq!(s.to_string(), "lockdown: IW = 0, IS = 0");
        assert_eq!(Scenario::new().to_string(), "(baseline)");
        assert!(Scenario::new().is_baseline());
    }

    #[test]
    fn specialise_matches_with_evidence_chain() {
        let phi = parse_formula("MCS(IWoS)").unwrap();
        let s = Scenario::from_pairs([("IW", true), ("H5", false)]);
        let expected = phi
            .clone()
            .with_evidence("IW", true)
            .with_evidence("H5", false);
        assert_eq!(s.specialise(&phi), expected);
    }

    #[test]
    fn specialise_query_covers_all_shapes() {
        let s = Scenario::from_pairs([("H1", true)]);
        let q = parse_query("forall IS => MoT").unwrap();
        match s.specialise_query(&q, "IWoS") {
            Query::Forall(Formula::Evidence { element, value, .. }) => {
                assert_eq!(element, "H1");
                assert!(value);
            }
            other => panic!("{other:?}"),
        }
        let sup = parse_query("SUP(PP)").unwrap();
        match s.specialise_query(&sup, "IWoS") {
            Query::Idp(a, b) => {
                assert!(matches!(a, Formula::Evidence { .. }));
                assert!(matches!(b, Formula::Evidence { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_set_round_trips() {
        let text = "# sweep\nbaseline:\ninfected: IW = 1\nboth: H5 = 0, H4 = 1\n-\n";
        let set = ScenarioSet::parse(text).unwrap();
        assert_eq!(set.len(), 4);
        assert!(set.scenarios[0].is_baseline());
        assert_eq!(set.scenarios[0].name(), Some("baseline"));
        assert_eq!(set.scenarios[1].bindings(), &[("IW".to_string(), true)]);
        assert_eq!(
            set.scenarios[2].bindings(),
            &[("H5".to_string(), false), ("H4".to_string(), true)]
        );
        // The unnamed baseline renders as `-` and survives the round-trip
        // (a blank line would be skipped by the parser).
        assert_eq!(set.scenarios[3], Scenario::new());
        let again = ScenarioSet::parse(&set.to_string()).unwrap();
        assert_eq!(set, again);
    }

    #[test]
    fn parse_accepts_evidence_style_bindings() {
        let s = Scenario::parse("A := 1, B := false").unwrap();
        assert_eq!(
            s.bindings(),
            &[("A".to_string(), true), ("B".to_string(), false)]
        );
        assert_eq!(s.name(), None);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = ScenarioSet::parse("ok: A = 1\nbad: A ? 1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("A ? 1"), "{e}");
        let e = ScenarioSet::parse("v: A = 2\n").unwrap_err();
        assert!(e.message.contains("`2`"), "{e}");
    }

    #[test]
    fn singletons_sweep() {
        let set = ScenarioSet::singletons(["A", "B"], false);
        assert_eq!(set.len(), 2);
        assert_eq!(set.scenarios[0].to_string(), "A operational: A = 0");
        assert_eq!(set.scenarios[1].bindings(), &[("B".to_string(), false)]);
        // Labels avoid `=`, so a rendered set of singletons re-parses.
        let again = ScenarioSet::parse(&set.to_string()).unwrap();
        assert_eq!(set, again);
    }
}
