//! Compiled query plans: [`PreparedQuery`], [`Plan`] and [`SweepReport`].
//!
//! BFL's what-if workload ("does the property still hold, given that
//! these events are known failed/operational?") runs the *same* layer-2
//! query under many evidence hypotheses. Recompiling the whole pipeline
//! per hypothesis — wrap the formula in evidence operators, desugar,
//! translate to a BDD, minimise — wastes all the work that does not
//! depend on the evidence. This module is the prepared-statement answer:
//!
//! * [`AnalysisSession::prepare`](crate::engine::AnalysisSession::prepare)
//!   runs the pass pipeline **once** — desugar → NNF → simplify → BDD
//!   build (with the `MCS`/`MPS` primed-variable minimisation where the
//!   formula needs it) — and returns an owned, `Send + Sync`
//!   [`PreparedQuery`] sharing the session's caches;
//! * [`PreparedQuery::eval`] answers one [`Scenario`] by **restriction**
//!   (cofactoring) of the compiled diagram — the cheap operation on an
//!   already-built BDD — and memoises the result, so repeated scenarios
//!   are pure cache lookups;
//! * [`PreparedQuery::sweep`] fans a whole [`ScenarioSet`] across
//!   `std::thread::scope` workers over the shared caches and returns a
//!   [`SweepReport`];
//! * [`PreparedQuery::explain`] exposes the [`Plan`]: pass-by-pass
//!   formula sizes, compiled BDD node counts and whether the minimality
//!   machinery was needed, rendered as text or JSON.
//!
//! Soundness of evidence-as-restriction: the checker compiles an
//! outermost evidence chain `ϕ[e1↦v1]…[ek↦vk]` as
//! `restrict(…restrict(B(ϕ), v1, b1)…)`, and BDDs are canonical — so
//! restricting the *prepared* diagram yields the **identical** node the
//! recompile-per-scenario path ends at, witnesses included. The
//! cross-check suite (`tests/prepared_query.rs`) asserts this agreement
//! on the COVID case study and on randomized trees and formulas.
//!
//! # Migration: per-scenario recompile → prepare/sweep
//!
//! | before (evidence in the AST)                          | after (evidence as restriction)        |
//! |-------------------------------------------------------|----------------------------------------|
//! | `phi.with_evidence("IW", true)` per scenario          | `Scenario::named("s").bind("IW", true)`|
//! | loop { `session.check_query(&wrapped)?` }             | `prepared.sweep(&scenarios)?`          |
//! | one full pipeline run per scenario                    | one `session.prepare(&q)?`, then       |
//! |                                                       | restriction + memo per scenario        |
//! | stats scattered per query                             | `SweepReport` totals + `SweepStats`    |
//!
//! # Example
//!
//! ```
//! use bfl_core::engine::AnalysisSession;
//! use bfl_core::parser::parse_query;
//! use bfl_core::scenario::{Scenario, ScenarioSet};
//! use bfl_fault_tree::corpus;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let session = AnalysisSession::new(corpus::covid());
//! let prepared = session.prepare(&parse_query("exists IWoS")?)?;
//!
//! // Is the top event still reachable if the vulnerable worker is
//! // protected? (No: VW is in every cut set.)
//! let protected = Scenario::named("protected").bind("VW", false);
//! assert!(!prepared.eval(&protected)?.holds);
//!
//! // Sweep: force each human error operational in turn.
//! let set = ScenarioSet::parse("no-H1: H1 = 0\nno-H4: H4 = 0\n")?;
//! let report = prepared.sweep(&set)?;
//! assert_eq!(report.outcomes.len(), 2);
//! assert_eq!(report.stats.translation_misses, 0); // no recompilation
//!
//! // The plan shows what `prepare` did, pass by pass.
//! println!("{}", prepared.explain());
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use bfl_bdd::{Bdd, Var};
use bfl_fault_tree::{FaultTree, StatusVector};

use crate::ast::{CmpOp, Formula, Query};
use crate::checker::ModelChecker;
use crate::engine::{default_mc_threads, MaintenanceReport, SessionInner};
use crate::error::BflError;
use crate::quant;
use crate::report::{
    json_estimate, json_interval, json_outcome, json_stats, json_str, EvalStats, Outcome,
};
use crate::rewrite::{desugar, simplify, to_nnf};
use crate::scenario::{Scenario, ScenarioSet};
use crate::uncertainty::{self, Estimate, Method, ProbInterval, ProbValue};

/// `VOT` operators wider than this skip the (exponential) desugar pass;
/// the native threshold translation compiles them directly.
const DESUGAR_VOT_LIMIT: usize = 8;

/// Formula renderings in the [`Plan`] are truncated to this many
/// characters; sizes are always exact.
const RENDER_LIMIT: usize = 96;

// ---------------------------------------------------------------------------
// The plan: what `prepare` did.
// ---------------------------------------------------------------------------

/// One rewriting pass over one operand formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassStep {
    /// Pass name: `parse`, `desugar`, `nnf` or `simplify`.
    pub pass: &'static str,
    /// Whether the pass ran (`desugar` is skipped for very wide `VOT`
    /// operators, whose native threshold translation is exponentially
    /// smaller).
    pub applied: bool,
    /// AST size after the pass.
    pub size: usize,
    /// The formula after the pass, truncated to a display-friendly
    /// length.
    pub rendered: String,
}

/// The compilation record of one operand formula of a prepared query.
#[derive(Debug, Clone, PartialEq)]
pub struct OperandPlan {
    /// The operand's role in the query (`operand`, `left`, `right`).
    pub role: &'static str,
    /// The rewriting passes, in execution order.
    pub passes: Vec<PassStep>,
    /// Node count of the compiled diagram.
    pub bdd_nodes: usize,
    /// Number of basic events in the diagram's support (= `IBE`).
    pub support: usize,
    /// `Some(b)` when the operand compiled to the constant `b` — the
    /// query is then scenario-independent.
    pub constant: Option<bool>,
}

/// One module compiled during parallel construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleReport {
    /// Name of the module's root gate.
    pub root: String,
    /// Elements in the module's cone (root included).
    pub cone: usize,
    /// BDD nodes of the module root's diagram.
    pub nodes: usize,
    /// Worker-side compile time, µs.
    pub micros: u64,
    /// Index of the worker thread that compiled it.
    pub worker: usize,
}

/// The record of a parallel session build: how the tree's independent
/// modules were farmed out to worker arenas and stitched back (see
/// [`SessionBuilder::parallelism`](crate::engine::SessionBuilder::parallelism)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstructionReport {
    /// Worker threads actually used.
    pub workers: usize,
    /// Independent modules that met the parallelisation threshold.
    pub modules_detected: usize,
    /// Per-module compile statistics.
    pub modules: Vec<ModuleReport>,
    /// Time spent importing worker diagrams into the session arena, µs.
    pub stitch_micros: u64,
    /// End-to-end wall-clock of the construction, µs.
    pub total_micros: u64,
}

impl ConstructionReport {
    pub(crate) fn from_stats(
        tree: &bfl_fault_tree::FaultTree,
        stats: &bfl_fault_tree::bdd::ParallelCompileStats,
    ) -> Self {
        ConstructionReport {
            workers: stats.workers,
            modules_detected: stats.modules_detected,
            modules: stats
                .modules
                .iter()
                .map(|m| ModuleReport {
                    root: tree.name(m.root).to_string(),
                    cone: m.cone,
                    nodes: m.nodes,
                    micros: m.micros,
                    worker: m.worker,
                })
                .collect(),
            stitch_micros: stats.stitch_micros,
            total_micros: stats.total_micros,
        }
    }

    /// Serialises the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"workers\":{},\"modules_detected\":{},\"stitch_micros\":{},\"total_micros\":{},\"modules\":[",
            self.workers, self.modules_detected, self.stitch_micros, self.total_micros
        );
        for (i, m) in self.modules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"root\":{},\"cone\":{},\"nodes\":{},\"micros\":{},\"worker\":{}}}",
                json_str(&m.root),
                m.cone,
                m.nodes,
                m.micros,
                m.worker
            ));
        }
        out.push_str("]}");
        out
    }
}

/// The compiled query plan: pass-by-pass formula sizes, BDD statistics
/// and build cost. Rendered human-readably by [`fmt::Display`] and
/// machine-readably by [`Plan::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Concrete syntax of the prepared query.
    pub query: String,
    /// Query shape: `exists`, `forall`, `idp` or `sup`.
    pub kind: &'static str,
    /// `true` when no operand contains `MCS`/`MPS`, i.e. the compile
    /// skipped the primed-variable minimisation machinery entirely (the
    /// fast path Section V notes for minimality-free formulas).
    pub minimality_fast_path: bool,
    /// Per-operand compilation records.
    pub operands: Vec<OperandPlan>,
    /// Cost of the one-time compile: duration, translation-cache
    /// hits/misses and arena size after the build.
    pub prepare: EvalStats,
    /// Dynamic maintenance run right after the compile (per the session's
    /// [`ReorderPolicy`](crate::engine::ReorderPolicy)): live node counts
    /// before/after plus the GC and sifting statistics. `None` when no
    /// maintenance was due.
    pub maintenance: Option<MaintenanceReport>,
    /// The session's parallel-construction record, when the session was
    /// built with [`SessionBuilder::parallelism`](crate::engine::SessionBuilder::parallelism)
    /// `> 1`: module count, per-module node counts and stitch time.
    /// `None` for sequentially built sessions.
    pub construction: Option<ConstructionReport>,
}

impl Plan {
    /// Serialises the plan as a self-contained JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"query\":{}", json_str(&self.query)));
        out.push_str(&format!(",\"kind\":{}", json_str(self.kind)));
        out.push_str(&format!(
            ",\"minimality_fast_path\":{}",
            self.minimality_fast_path
        ));
        out.push_str(",\"operands\":[");
        for (i, op) in self.operands.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            out.push_str(&format!("\"role\":{}", json_str(op.role)));
            out.push_str(",\"passes\":[");
            for (j, p) in op.passes.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"pass\":{},\"applied\":{},\"size\":{},\"rendered\":{}}}",
                    json_str(p.pass),
                    p.applied,
                    p.size,
                    json_str(&p.rendered)
                ));
            }
            out.push(']');
            out.push_str(&format!(",\"bdd_nodes\":{}", op.bdd_nodes));
            out.push_str(&format!(",\"support\":{}", op.support));
            match op.constant {
                Some(b) => out.push_str(&format!(",\"constant\":{b}")),
                None => out.push_str(",\"constant\":null"),
            }
            out.push('}');
        }
        out.push_str(&format!("],\"prepare\":{}", json_stats(&self.prepare)));
        match &self.maintenance {
            None => out.push_str(",\"maintenance\":null"),
            Some(m) => {
                out.push_str(&format!(
                    ",\"maintenance\":{{\"live_before\":{},\"live_after\":{}",
                    m.live_before, m.live_after
                ));
                match m.gc {
                    Some(gc) => out.push_str(&format!(
                        ",\"gc\":{{\"arena_before\":{},\"arena_after\":{},\"collected\":{}}}",
                        gc.arena_before, gc.arena_after, gc.collected
                    )),
                    None => out.push_str(",\"gc\":null"),
                }
                match m.sift {
                    Some(s) => out.push_str(&format!(
                        ",\"sift\":{{\"live_before\":{},\"live_after\":{},\"swaps\":{},\"blocks_sifted\":{}}}",
                        s.live_before, s.live_after, s.swaps, s.blocks_sifted
                    )),
                    None => out.push_str(",\"sift\":null"),
                }
                out.push('}');
            }
        }
        match &self.construction {
            None => out.push_str(",\"construction\":null"),
            Some(c) => out.push_str(&format!(",\"construction\":{}", c.to_json())),
        }
        out.push('}');
        out
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "plan for `{}`", self.query)?;
        writeln!(
            f,
            "  kind: {} · minimality fast path: {}",
            self.kind,
            if self.minimality_fast_path {
                "yes (no MCS/MPS operators)"
            } else {
                "no (primed-variable minimisation required)"
            }
        )?;
        for op in &self.operands {
            writeln!(f, "  {}:", op.role)?;
            for p in &op.passes {
                if p.applied {
                    writeln!(f, "    {:<9} size {:<4} {}", p.pass, p.size, p.rendered)?;
                } else {
                    writeln!(f, "    {:<9} (skipped)", p.pass)?;
                }
            }
            match op.constant {
                Some(b) => writeln!(f, "    BDD: constant {b} · scenario-independent")?,
                None => writeln!(
                    f,
                    "    BDD: {} nodes · support {} basic events",
                    op.bdd_nodes, op.support
                )?,
            }
        }
        writeln!(
            f,
            "  prepared in {} µs · {} cache hits / {} misses · arena {} nodes",
            self.prepare.duration_micros,
            self.prepare.cache_hits,
            self.prepare.cache_misses,
            self.prepare.arena_nodes
        )?;
        if let Some(m) = &self.maintenance {
            write!(
                f,
                "  maintenance: {} -> {} live nodes",
                m.live_before, m.live_after
            )?;
            if let Some(s) = m.sift {
                write!(f, " · sift {} swaps", s.swaps)?;
            }
            if let Some(gc) = m.gc {
                write!(f, " · gc reclaimed {}", gc.collected)?;
            }
            writeln!(f)?;
        }
        if let Some(c) = &self.construction {
            writeln!(
                f,
                "  construction: {} modules on {} workers · stitch {} µs · total {} µs",
                c.modules_detected, c.workers, c.stitch_micros, c.total_micros
            )?;
            for m in &c.modules {
                writeln!(
                    f,
                    "    module {:<20} cone {:<5} {} nodes · {} µs · worker {}",
                    m.root, m.cone, m.nodes, m.micros, m.worker
                )?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The compiled query.
// ---------------------------------------------------------------------------

/// The compiled shape of a layer-2 query: everything scenario evaluation
/// needs is one or two BDD roots.
#[derive(Debug, Clone, Copy)]
enum Compiled {
    /// `∃ϕ` (`exists = true`) or `∀ϕ`.
    Quantifier { root: Bdd, exists: bool },
    /// `IDP(ϕ, ϕ′)`; `SUP(e)` compiles to its defining independence.
    Independence { left: Bdd, right: Bdd },
    /// `P(ϕ[ | ψ]) ▷◁ p`: `joint` is `B(ϕ ∧ ψ)` (just `B(ϕ)` when
    /// unconditioned), `given` is `B(ψ)`.
    Prob {
        joint: Bdd,
        given: Option<Bdd>,
        op: CmpOp,
        bound: f64,
    },
    /// `importance(ϕ)`.
    Importance { root: Bdd },
    /// `cause(ϕ, evidence)` / `causes(ϕ, evidence, k)`: the observation
    /// (query evidence + scenario bindings) and the enumeration bound
    /// live in the stored [`Query`]; the compiled root is just `B(ϕ)`.
    Cause { root: Bdd },
}

/// The remappable root slots of one prepared query.
///
/// Garbage collection compacts the arena and rewrites handles; prepared
/// queries outlive collections, so their roots live behind a mutex that
/// the session's maintenance (which registers a weak reference per
/// prepared query) rewrites in place. All reads and writes happen while
/// the session's checker lock is held, which serialises evaluation
/// against remapping.
#[derive(Debug)]
pub(crate) struct PlanRoots {
    compiled: Mutex<Compiled>,
    /// Bumped by every [`PlanRoots::set_roots`], i.e. every maintenance
    /// pass over this plan. Node-keyed caches (the probability memo)
    /// compare against it and drop stale entries: both GC (which
    /// renumbers nodes) and sifting (which rewrites them in place)
    /// invalidate node-id keys.
    generation: AtomicU64,
}

impl PlanRoots {
    fn new(compiled: Compiled) -> Arc<Self> {
        Arc::new(PlanRoots {
            compiled: Mutex::new(compiled),
            generation: AtomicU64::new(0),
        })
    }

    fn snapshot(&self) -> Compiled {
        *self.compiled.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The current maintenance generation (see the field docs).
    fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Appends this query's root handles (in slot order) to `out`.
    pub(crate) fn extend_roots(&self, out: &mut Vec<Bdd>) {
        match self.snapshot() {
            Compiled::Quantifier { root, .. }
            | Compiled::Importance { root }
            | Compiled::Cause { root } => out.push(root),
            Compiled::Independence { left, right } => {
                out.push(left);
                out.push(right);
            }
            Compiled::Prob { joint, given, .. } => {
                out.push(joint);
                if let Some(g) = given {
                    out.push(g);
                }
            }
        }
    }

    /// Writes remapped handles back, in the order produced by
    /// [`PlanRoots::extend_roots`].
    pub(crate) fn set_roots(&self, roots: &[Bdd]) {
        let mut c = self.compiled.lock().unwrap_or_else(|e| e.into_inner());
        match &mut *c {
            Compiled::Quantifier { root, .. }
            | Compiled::Importance { root }
            | Compiled::Cause { root } => *root = roots[0],
            Compiled::Independence { left, right } => {
                *left = roots[0];
                *right = roots[1];
            }
            Compiled::Prob { joint, given, .. } => {
                *joint = roots[0];
                if let Some(g) = given {
                    *g = roots[1];
                }
            }
        }
        self.generation.fetch_add(1, Ordering::Release);
    }
}

/// A scenario evaluation, memoised under the resolved bindings.
#[derive(Debug, Clone)]
struct CachedEval {
    holds: bool,
    witnesses: Vec<StatusVector>,
    counterexamples: Vec<StatusVector>,
    shared_events: Vec<String>,
    probability: Option<f64>,
    importance: Vec<quant::EventImportance>,
    causes: Option<crate::causality::CauseReport>,
    bdd_nodes: usize,
    arena_nodes: usize,
}

impl CachedEval {
    fn bare(holds: bool, bdd_nodes: usize, arena_nodes: usize) -> Self {
        CachedEval {
            holds,
            witnesses: Vec::new(),
            counterexamples: Vec::new(),
            shared_events: Vec::new(),
            probability: None,
            importance: Vec::new(),
            causes: None,
            bdd_nodes,
            arena_nodes,
        }
    }
}

/// One scenario's probability evaluation, memoised under the resolved
/// bindings. The values are semantic (maintenance never changes them),
/// so — unlike the node-keyed memo — this cache survives GC/reorder.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ProbEval {
    /// The probability; `None` for conditionals whose condition has
    /// (effectively) zero probability.
    probability: Option<f64>,
    /// The threshold verdict for `P(…) ▷◁ p`-shaped plans, `None` for
    /// plans with no bound to judge.
    holds: Option<bool>,
}

/// The node-keyed Shannon memos of one prepared query, tagged with the
/// plan-registry generation they were built against. Point and interval
/// walks cache separately (they memoise different value types) but
/// share the generation-invalidation discipline.
#[derive(Debug, Default)]
struct ProbMemo {
    generation: u64,
    nodes: HashMap<u32, f64>,
    interval_nodes: HashMap<u32, (f64, f64)>,
}

/// A layer-2 query compiled once against a session, evaluable under
/// arbitrary evidence [`Scenario`]s without recompilation.
///
/// Created by
/// [`AnalysisSession::prepare`](crate::engine::AnalysisSession::prepare).
/// The handle is owned and `Send + Sync`: it keeps the session's shared
/// core (tree, BDD manager, translation caches) alive via an [`Arc`], so
/// it outlives the `AnalysisSession` value it came from and can be moved
/// freely across threads. See the [module docs](self) for the design.
#[derive(Debug)]
pub struct PreparedQuery {
    inner: Arc<SessionInner>,
    query: Query,
    source: String,
    /// Compiled roots, shared with the session's maintenance so garbage
    /// collection can remap them (see [`PlanRoots`]).
    roots: Arc<PlanRoots>,
    plan: Plan,
    memo: Mutex<HashMap<Vec<(usize, bool)>, CachedEval>>,
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
    /// Node-keyed Shannon memo shared by every probability evaluation of
    /// this plan (restrictions of one diagram share almost all nodes).
    /// Invalidated by generation whenever maintenance remaps the roots.
    prob_memo: Mutex<ProbMemo>,
    /// Scenario-keyed probability results (semantic — survive
    /// maintenance).
    prob_scenarios: Mutex<HashMap<Vec<(usize, bool)>, ProbEval>>,
    prob_hits: AtomicU64,
    prob_misses: AtomicU64,
}

/// Cumulative evaluation statistics of one [`PreparedQuery`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PreparedStats {
    /// Total number of [`PreparedQuery::eval`] calls.
    pub evals: u64,
    /// Evaluations answered from the scenario memo (pure lookups).
    pub memo_hits: u64,
    /// Evaluations that computed a restriction (first sight of a
    /// scenario).
    pub memo_misses: u64,
    /// Distinct scenarios memoised.
    pub distinct_scenarios: usize,
}

impl PreparedQuery {
    /// Runs the full pass pipeline once and compiles the query. Called
    /// via [`AnalysisSession::prepare`](crate::engine::AnalysisSession::prepare).
    pub(crate) fn compile(inner: Arc<SessionInner>, psi: &Query) -> Result<Self, BflError> {
        let source = psi.to_string();
        let start = Instant::now();
        let mut mc = inner.lock();
        let (hits0, misses0) = (mc.cache_hits(), mc.cache_misses());
        let (compiled, kind, operands, fast_path) = match psi {
            Query::Exists(phi) | Query::Forall(phi) => {
                let exists = matches!(psi, Query::Exists(_));
                let (op, root) = compile_operand(&mut mc, "operand", phi)?;
                (
                    Compiled::Quantifier { root, exists },
                    if exists { "exists" } else { "forall" },
                    vec![op],
                    !phi.has_minimality_operator(),
                )
            }
            Query::Idp(a, b) => {
                let (la, left) = compile_operand(&mut mc, "left", a)?;
                let (rb, right) = compile_operand(&mut mc, "right", b)?;
                (
                    Compiled::Independence { left, right },
                    "idp",
                    vec![la, rb],
                    !a.has_minimality_operator() && !b.has_minimality_operator(),
                )
            }
            Query::Sup(name) => {
                // SUP(e) ::= IDP(e, e_top).
                let a = Formula::atom(name.clone());
                let top = Formula::atom(inner.tree.name(inner.tree.top()));
                let (la, left) = compile_operand(&mut mc, "left", &a)?;
                let (rb, right) = compile_operand(&mut mc, "right", &top)?;
                (
                    Compiled::Independence { left, right },
                    "sup",
                    vec![la, rb],
                    true,
                )
            }
            Query::Prob {
                formula,
                given,
                op,
                bound,
            } => {
                let (op_plan, root) = compile_operand(&mut mc, "operand", formula)?;
                let mut operands = vec![op_plan];
                let mut fast = !formula.has_minimality_operator();
                let (joint, compiled_given) = match given {
                    None => (root, None),
                    Some(g) => {
                        let (gp, groot) = compile_operand(&mut mc, "given", g)?;
                        operands.push(gp);
                        fast = fast && !g.has_minimality_operator();
                        let joint = mc.tree_bdd_mut().manager_mut().and(root, groot);
                        (joint, Some(groot))
                    }
                };
                (
                    Compiled::Prob {
                        joint,
                        given: compiled_given,
                        op: *op,
                        bound: bound.get(),
                    },
                    "prob",
                    operands,
                    fast,
                )
            }
            Query::Importance(phi) => {
                let (op_plan, root) = compile_operand(&mut mc, "operand", phi)?;
                (
                    Compiled::Importance { root },
                    "importance",
                    vec![op_plan],
                    !phi.has_minimality_operator(),
                )
            }
            Query::Cause {
                formula, evidence, ..
            } => {
                // Validate the query's own evidence at prepare time so a
                // bad binding fails here, not on first eval; the bindings
                // themselves are applied per scenario (observationally —
                // they do not restrict the compiled root).
                crate::semantics::observation_vector(&inner.tree, evidence)?;
                let (op_plan, root) = compile_operand(&mut mc, "operand", formula)?;
                (
                    Compiled::Cause { root },
                    "cause",
                    vec![op_plan],
                    !formula.has_minimality_operator(),
                )
            }
        };
        // The `prepare` stats describe the compile alone: snapshot them
        // before the prepare-time maintenance, which reports separately.
        let prepare = EvalStats {
            bdd_nodes: 0,
            arena_nodes: mc.manager().arena_size(),
            cache_hits: mc.cache_hits() - hits0,
            cache_misses: mc.cache_misses() - misses0,
            duration_micros: start.elapsed().as_micros(),
        };
        // Register the compiled roots with the session *before* the
        // prepare-time maintenance: a collection remaps them in place.
        let roots = PlanRoots::new(compiled);
        inner.register_plan(&roots);
        let maintenance = inner.maintain_at_prepare(&mut mc);
        let plan = Plan {
            query: source.clone(),
            kind,
            minimality_fast_path: fast_path,
            operands,
            prepare,
            maintenance,
            construction: inner.construction.clone(),
        };
        drop(mc);
        Ok(PreparedQuery {
            inner,
            query: psi.clone(),
            source,
            roots,
            plan,
            memo: Mutex::new(HashMap::new()),
            memo_hits: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
            prob_memo: Mutex::new(ProbMemo::default()),
            prob_scenarios: Mutex::new(HashMap::new()),
            prob_hits: AtomicU64::new(0),
            prob_misses: AtomicU64::new(0),
        })
    }

    /// The prepared query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Concrete syntax of the prepared query.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The fault tree the query was compiled against.
    pub fn tree(&self) -> &FaultTree {
        &self.inner.tree
    }

    /// The compiled query plan (pass sizes, BDD statistics, build cost).
    pub fn explain(&self) -> &Plan {
        &self.plan
    }

    /// Cumulative evaluation statistics since `prepare`.
    pub fn stats(&self) -> PreparedStats {
        let hits = self.memo_hits.load(Ordering::Relaxed);
        let misses = self.memo_misses.load(Ordering::Relaxed);
        PreparedStats {
            evals: hits + misses,
            memo_hits: hits,
            memo_misses: misses,
            distinct_scenarios: self.memo.lock().unwrap_or_else(|e| e.into_inner()).len(),
        }
    }

    /// Resolves a scenario's bindings against the tree: basic indices,
    /// first-binding-wins for repeated events, sorted for memo keying.
    ///
    /// `cause` plans carry evidence of their own; it is prepended so it
    /// wins conflicts with scenario bindings, and so a scenario-extended
    /// observation and a query spelling the same evidence inline share
    /// one memo entry.
    fn resolve(&self, scenario: &Scenario) -> Result<Vec<(usize, bool)>, BflError> {
        let tree = &self.inner.tree;
        let own: &[(String, bool)] = match &self.query {
            Query::Cause { evidence, .. } => evidence,
            _ => &[],
        };
        let mut resolved: Vec<(usize, bool)> =
            Vec::with_capacity(own.len() + scenario.bindings().len());
        for (name, value) in own.iter().chain(scenario.bindings()) {
            let e = tree
                .element(name)
                .ok_or_else(|| BflError::UnknownElement(name.clone()))?;
            let bi = tree
                .basic_index(e)
                .ok_or_else(|| BflError::EvidenceOnGate(name.clone()))?;
            if !resolved.iter().any(|&(b, _)| b == bi) {
                resolved.push((bi, *value));
            }
        }
        resolved.sort_unstable_by_key(|&(bi, _)| bi);
        Ok(resolved)
    }

    /// Evaluates the prepared query under one scenario — BDD restriction
    /// on the compiled diagram, memoised so repeated scenarios are pure
    /// cache lookups.
    ///
    /// The returned [`Outcome`] agrees exactly (verdict *and*
    /// witnesses/counterexamples) with wrapping the query in the
    /// scenario's evidence and re-checking it from scratch; its
    /// `stats.cache_hits`/`cache_misses` count the **scenario memo** (1
    /// hit for a memoised scenario, 1 miss for a fresh restriction).
    ///
    /// # Errors
    ///
    /// [`BflError::UnknownElement`] / [`BflError::EvidenceOnGate`] for
    /// bindings that do not name a basic event of the tree;
    /// [`BflError::MissingProbabilities`] /
    /// [`BflError::InvalidProbability`] when a probabilistic plan
    /// (`P(…) ▷◁ p`, `importance(…)`) runs on a session without valid
    /// annotations.
    pub fn eval(&self, scenario: &Scenario) -> Result<Outcome, BflError> {
        let key = self.resolve(scenario)?;
        let probs = self.probabilities_if_needed()?;
        Ok(self.eval_resolved(scenario, key, probs.as_deref()))
    }

    /// Whether the plan compiles a `P(…) ▷◁ p` judgement — the shape
    /// whose scenario rows [`sweep_probabilities`] judges against the
    /// bound. Callers use this to route such plans through the
    /// method-aware probability sweep instead of the Boolean one.
    ///
    /// [`sweep_probabilities`]: PreparedQuery::sweep_probabilities
    pub fn is_probability_judgement(&self) -> bool {
        matches!(self.roots.snapshot(), Compiled::Prob { .. })
    }

    /// Whether the compiled shape needs probability annotations.
    fn needs_probabilities(&self) -> bool {
        matches!(
            self.roots.snapshot(),
            Compiled::Prob { .. } | Compiled::Importance { .. }
        )
    }

    /// The session's validated probability vector, fetched only for
    /// plans that evaluate probabilities.
    fn probabilities_if_needed(&self) -> Result<Option<Vec<f64>>, BflError> {
        if self.needs_probabilities() {
            Ok(Some(self.inner.full_probabilities()?))
        } else {
            Ok(None)
        }
    }

    /// The post-resolution evaluation core — shared by [`eval`] and
    /// [`sweep`], which validates (and thereby resolves) every scenario
    /// up front and hands the keys through.
    ///
    /// [`eval`]: PreparedQuery::eval
    /// [`sweep`]: PreparedQuery::sweep
    fn eval_resolved(
        &self,
        scenario: &Scenario,
        key: Vec<(usize, bool)>,
        probs: Option<&[f64]>,
    ) -> Outcome {
        let start = Instant::now();
        let cached = self.lookup(&key);
        let (cached, memo_hit) = match cached {
            Some(c) => {
                self.memo_hits.fetch_add(1, Ordering::Relaxed);
                (c, true)
            }
            None => {
                let computed = self.restrict_and_judge(&key, probs);
                self.memo_misses.fetch_add(1, Ordering::Relaxed);
                self.memo
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .entry(key)
                    .or_insert_with(|| computed.clone());
                (computed, false)
            }
        };
        let label = scenario.name().map(str::to_string);
        let source = if scenario.is_baseline() {
            self.source.clone()
        } else {
            format!("{} [{}]", self.source, scenario.bindings_string())
        };
        let mut o = Outcome::bare(label, source, cached.holds);
        o.witnesses = cached.witnesses;
        o.counterexamples = cached.counterexamples;
        o.shared_events = cached.shared_events;
        o.probability = cached.probability;
        o.importance = cached.importance;
        o.causes = cached.causes;
        o.stats = EvalStats {
            bdd_nodes: cached.bdd_nodes,
            arena_nodes: cached.arena_nodes,
            cache_hits: u64::from(memo_hit),
            cache_misses: u64::from(!memo_hit),
            duration_micros: start.elapsed().as_micros(),
        };
        o
    }

    fn lookup(&self, key: &[(usize, bool)]) -> Option<CachedEval> {
        self.memo
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .cloned()
    }

    /// The restriction core: specialises the compiled diagram(s) to the
    /// resolved bindings in one traversal each and judges the result.
    /// `probs` is `Some` exactly for probabilistic shapes (the callers
    /// fetch and validate it up front).
    fn restrict_and_judge(&self, key: &[(usize, bool)], probs: Option<&[f64]>) -> CachedEval {
        let limit = self.inner.witness_limit;
        let mut mc = self.inner.lock();
        // Snapshot the roots only while holding the checker lock: the
        // session's maintenance (which may remap them) also runs under it.
        let compiled = self.roots.snapshot();
        let assignments = to_vars(&mc, key);
        let cached = match compiled {
            Compiled::Quantifier { root, exists } => {
                let r = mc
                    .tree_bdd_mut()
                    .manager_mut()
                    .restrict_many(root, &assignments);
                let holds = if exists { !r.is_false() } else { r.is_true() };
                let mut witnesses = Vec::new();
                let mut counterexamples = Vec::new();
                if exists && holds && limit > 0 {
                    witnesses = mc.vectors_of_bdd(r, limit);
                } else if !exists && !holds && limit > 0 {
                    let nr = mc.tree_bdd_mut().manager_mut().not(r);
                    counterexamples = mc.vectors_of_bdd(nr, limit);
                }
                let mut c = CachedEval::bare(holds, mc.bdd_size(r), mc.manager().arena_size());
                c.witnesses = witnesses;
                c.counterexamples = counterexamples;
                c
            }
            Compiled::Independence { left, right } => {
                let m = mc.tree_bdd_mut().manager_mut();
                let ra = m.restrict_many(left, &assignments);
                let rb = m.restrict_many(right, &assignments);
                let ia = mc.support_basic_names(ra);
                let ib = mc.support_basic_names(rb);
                let shared: Vec<String> = ia.into_iter().filter(|e| ib.contains(e)).collect();
                let mut c = CachedEval::bare(
                    shared.is_empty(),
                    mc.bdd_size(ra) + mc.bdd_size(rb),
                    mc.manager().arena_size(),
                );
                c.shared_events = shared;
                c
            }
            Compiled::Prob {
                joint,
                given,
                op,
                bound,
            } => match probs {
                Some(probs) => {
                    // Boolean eval and the probability entry points share
                    // one computation per scenario: reuse a result the
                    // probability path already memoised, and publish
                    // fresh ones back so `probability`/
                    // `sweep_probabilities` find them.
                    let prior = self.prob_scenario_lookup(key);
                    let (pe, r) = match prior {
                        Some(pe) => {
                            // Only the restriction (manager-memoised) is
                            // redone, for the bdd_nodes statistic; the
                            // Shannon walks are skipped.
                            let r = mc
                                .tree_bdd_mut()
                                .manager_mut()
                                .restrict_many(joint, &assignments);
                            (pe, r)
                        }
                        None => {
                            let (pe, r) = self.prob_judge_locked(
                                &mut mc,
                                joint,
                                given,
                                op,
                                bound,
                                &assignments,
                                probs,
                            );
                            self.prob_scenario_insert(key, pe);
                            (pe, r)
                        }
                    };
                    let mut c = CachedEval::bare(
                        pe.holds.unwrap_or(false),
                        mc.bdd_size(r),
                        mc.manager().arena_size(),
                    );
                    c.probability = pe.probability;
                    c
                }
                // Unreachable: `eval`/`sweep` fetch the vector first.
                None => CachedEval::bare(false, 0, mc.manager().arena_size()),
            },
            Compiled::Cause { root } => {
                // The resolved key IS the observation: bound events at
                // their value, everything else operational. The causality
                // core pins the non-failed events itself, so no separate
                // restriction pass is needed.
                let mut b = StatusVector::all_operational(self.inner.tree.num_basic_events());
                for &(bi, v) in key {
                    b.set(bi, v);
                }
                let cap = match &self.query {
                    Query::Cause { limit: Some(k), .. } => *k as usize,
                    _ => limit,
                };
                let report = crate::causality::causes_from_bdd(&mut mc, root, &b, cap);
                let mut c =
                    CachedEval::bare(report.holds(), mc.bdd_size(root), mc.manager().arena_size());
                c.causes = Some(report);
                c
            }
            Compiled::Importance { root } => match probs {
                Some(probs) => {
                    let r = mc
                        .tree_bdd_mut()
                        .manager_mut()
                        .restrict_many(root, &assignments);
                    let ranked =
                        self.with_prob_memo(|memo| quant::rank_events_bdd(&mut mc, r, probs, memo));
                    let mut c =
                        CachedEval::bare(ranked.is_ok(), mc.bdd_size(r), mc.manager().arena_size());
                    // A ranking of an (almost-surely) false restricted
                    // formula is undefined: "does not hold" with an
                    // empty table, the same policy as the session
                    // evaluator and `quant::check_query`. (`probs` are
                    // pre-validated, so `DivisionByZero` is the only
                    // error `rank_events_bdd` can produce here.)
                    c.importance = ranked.unwrap_or_default();
                    c
                }
                None => CachedEval::bare(false, 0, mc.manager().arena_size()),
            },
        };
        // The restriction result is fully extracted (vectors, counts);
        // maintenance may now reorder/compact freely.
        self.inner.maybe_maintain(&mut mc);
        cached
    }

    /// Runs `f` over the node-keyed probability memo, clearing it first
    /// if maintenance has remapped this plan's roots since it was
    /// filled. Must be called with the checker lock held (maintenance
    /// also runs under it, so generation and node ids cannot move while
    /// `f` walks).
    fn with_prob_memo<R>(&self, f: impl FnOnce(&mut HashMap<u32, f64>) -> R) -> R {
        let generation = self.roots.generation();
        let mut memo = self.prob_memo.lock().unwrap_or_else(|e| e.into_inner());
        if memo.generation != generation {
            memo.nodes.clear();
            memo.interval_nodes.clear();
            memo.generation = generation;
        }
        f(&mut memo.nodes)
    }

    /// The interval twin of [`PreparedQuery::with_prob_memo`] — same
    /// locking and generation discipline, separate node-keyed cache.
    fn with_interval_memo<R>(&self, f: impl FnOnce(&mut HashMap<u32, (f64, f64)>) -> R) -> R {
        let generation = self.roots.generation();
        let mut memo = self.prob_memo.lock().unwrap_or_else(|e| e.into_inner());
        if memo.generation != generation {
            memo.nodes.clear();
            memo.interval_nodes.clear();
            memo.generation = generation;
        }
        f(&mut memo.interval_nodes)
    }

    /// The probability core shared by Boolean `eval` on `P(…)`-shaped
    /// plans and the probability sweeps: restrict, walk with the plan
    /// memo, judge the bound. Caller holds the checker lock. Returns the
    /// evaluation plus the restricted joint diagram (for statistics).
    #[allow(clippy::too_many_arguments)]
    fn prob_judge_locked(
        &self,
        mc: &mut ModelChecker,
        joint: Bdd,
        given: Option<Bdd>,
        op: CmpOp,
        bound: f64,
        assignments: &[(Var, bool)],
        probs: &[f64],
    ) -> (ProbEval, Bdd) {
        let r_joint = mc
            .tree_bdd_mut()
            .manager_mut()
            .restrict_many(joint, assignments);
        let p_joint =
            self.with_prob_memo(|memo| quant::bdd_probability_with_memo(mc, r_joint, probs, memo));
        let probability = match given {
            None => Some(p_joint),
            Some(g) => {
                let r_given = mc
                    .tree_bdd_mut()
                    .manager_mut()
                    .restrict_many(g, assignments);
                let base = self.with_prob_memo(|memo| {
                    quant::bdd_probability_with_memo(mc, r_given, probs, memo)
                });
                if base < quant::MIN_CONDITIONING_PROBABILITY {
                    None
                } else {
                    Some(p_joint / base)
                }
            }
        };
        let eval = ProbEval {
            probability,
            holds: Some(quant::judge_bound(probability, op, bound)),
        };
        (eval, r_joint)
    }

    /// **Sweeps** a whole scenario set: validates every scenario up
    /// front, then fans the evaluations across `std::thread::scope`
    /// workers sharing this query's memo and the session's caches.
    ///
    /// Fresh restrictions mutate the session's shared BDD manager, so
    /// those computes serialise on its lock (as all session queries do —
    /// see [`AnalysisSession`](crate::engine::AnalysisSession)); the
    /// fan-out overlaps memoised lookups, outcome assembly and witness
    /// rendering, which run outside it. For parallelism across the
    /// *compute* itself, use one session per shard of scenarios.
    ///
    /// # Errors
    ///
    /// The first scenario whose bindings fail to resolve aborts the sweep
    /// before any worker starts.
    pub fn sweep(&self, set: &ScenarioSet) -> Result<SweepReport, BflError> {
        // Validate everything first so workers cannot fail; the resolved
        // keys (and, for probabilistic plans, the probability vector)
        // are handed through so nothing is resolved twice.
        let keys: Vec<Vec<(usize, bool)>> = set
            .iter()
            .map(|s| self.resolve(s))
            .collect::<Result<_, _>>()?;
        let probs = self.probabilities_if_needed()?;
        let before = self.stats();
        let (arena_before, translation_misses0) = {
            let mc = self.inner.lock();
            (mc.manager().arena_size(), mc.cache_misses())
        };

        let n = set.len();
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n)
            .max(1);
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Outcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let o =
                        self.eval_resolved(&set.scenarios[i], keys[i].clone(), probs.as_deref());
                    *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(o);
                });
            }
        });

        let after = self.stats();
        let (translation_misses, arena_after) = {
            let mc = self.inner.lock();
            (
                mc.cache_misses() - translation_misses0,
                mc.manager().arena_size(),
            )
        };
        let mut report = SweepReport {
            tree: Arc::clone(&self.inner.tree),
            query: self.source.clone(),
            outcomes: Vec::with_capacity(n),
            totals: EvalStats::default(),
            stats: SweepStats {
                scenarios: n,
                workers,
                memo_hits: after.memo_hits - before.memo_hits,
                memo_misses: after.memo_misses - before.memo_misses,
                translation_misses,
                arena_before,
                arena_after,
            },
        };
        for (i, slot) in slots.into_iter().enumerate() {
            let outcome = slot
                .into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .ok_or_else(|| BflError::Internal {
                    context: format!(
                        "sweep worker left scenario {i} of `{}` unfilled",
                        self.source
                    ),
                })?;
            report.totals.absorb(&outcome.stats);
            report.outcomes.push(outcome);
        }
        Ok(report)
    }

    // ------------------------------------------------------------------
    // Causality on compiled plans.
    // ------------------------------------------------------------------

    /// Whether the plan compiles a `cause(…)` / `causes(…, k)` judgement —
    /// the shape [`PreparedQuery::cause`] and
    /// [`PreparedQuery::sweep_causes`] operate on.
    pub fn is_cause_plan(&self) -> bool {
        matches!(self.roots.snapshot(), Compiled::Cause { .. })
    }

    /// Evaluates a `cause(…)` plan under one scenario: the scenario's
    /// bindings **extend the observation** (the query's own evidence wins
    /// conflicts), the compiled `B(ϕ)` is cofactored on the non-failed
    /// events, and the minimal actual causes come out of the `MPS`
    /// maximality machinery — memoised in the plan's scenario memo, so
    /// repeated observations are pure lookups. The outcome's `causes`
    /// field carries the [`CauseReport`](crate::causality::CauseReport).
    ///
    /// # Errors
    ///
    /// [`BflError::PlanShapeMismatch`] when the plan was not prepared
    /// from a `cause(…)` query; binding resolution errors as for
    /// [`PreparedQuery::eval`].
    pub fn cause(&self, scenario: &Scenario) -> Result<Outcome, BflError> {
        if !self.is_cause_plan() {
            return Err(BflError::PlanShapeMismatch {
                expected: "cause",
                query: self.source.clone(),
            });
        }
        self.eval(scenario)
    }

    /// **Sweeps causes**: [`PreparedQuery::cause`] for every scenario of
    /// the set, fanned across the same `std::thread::scope` workers and
    /// scenario memo as [`PreparedQuery::sweep`] — a warm sweep over seen
    /// observations is pure cache lookups.
    ///
    /// # Errors
    ///
    /// [`BflError::PlanShapeMismatch`] on non-`cause` plans; otherwise as
    /// for [`PreparedQuery::sweep`].
    pub fn sweep_causes(&self, set: &ScenarioSet) -> Result<SweepReport, BflError> {
        if !self.is_cause_plan() {
            return Err(BflError::PlanShapeMismatch {
                expected: "cause",
                query: self.source.clone(),
            });
        }
        self.sweep(set)
    }

    // ------------------------------------------------------------------
    // Probability on compiled plans.
    // ------------------------------------------------------------------

    /// `P(ϕ | scenario)` on the compiled diagram: the scenario's
    /// bindings are applied by `restrict_many` cofactoring and the
    /// result is walked with this plan's node-keyed Shannon memo —
    /// **never** recompiled per scenario. For `P(…)`-shaped plans the
    /// conditional form is honoured; for `exists`/`forall`/`importance`
    /// plans this is the probability of the (restricted) operand.
    ///
    /// The memo is keyed on BDD node ids and remapped plans drop it: the
    /// session's GC/reorder registry bumps this plan's generation
    /// whenever maintenance rewrites its roots, and the next walk starts
    /// fresh (results are identical — only the cache is rebuilt).
    ///
    /// # Errors
    ///
    /// [`BflError::UnsupportedProbability`] for `IDP`/`SUP` plans;
    /// [`BflError::MissingProbabilities`] /
    /// [`BflError::InvalidProbability`] for the session's annotations;
    /// [`BflError::DivisionByZero`] when a conditional plan's condition
    /// has (effectively) zero probability under the scenario; binding
    /// resolution errors as for [`PreparedQuery::eval`].
    pub fn probability(&self, scenario: &Scenario) -> Result<f64, BflError> {
        if matches!(
            self.roots.snapshot(),
            Compiled::Independence { .. } | Compiled::Cause { .. }
        ) {
            return Err(BflError::UnsupportedProbability {
                query: self.source.clone(),
            });
        }
        let key = self.resolve(scenario)?;
        let probs = self.inner.full_probabilities()?;
        match self.prob_eval_resolved(&key, &probs).probability {
            Some(p) => Ok(p),
            None => Err(BflError::DivisionByZero {
                context: format!(
                    "conditional `{}` has a zero-probability condition under [{}]",
                    self.source,
                    scenario.bindings_string()
                ),
            }),
        }
    }

    /// `P(ϕ | scenario)` under `method` — or the session's default when
    /// `None` — as a method-shaped [`ProbValue`]. The three methods
    /// share the compiled plan but answer differently:
    ///
    /// * [`Method::Exact`] — restriction + memoised Shannon walk, like
    ///   [`PreparedQuery::probability`] (but zero-probability conditions
    ///   return `Ok(None)` instead of erroring);
    /// * [`Method::Interval`] — the same restriction, walked with the
    ///   plan's node-keyed **interval** memo (same generation
    ///   invalidation as the point memo);
    /// * [`Method::Mc`] — deterministic sampling of the prepared
    ///   query's formula; the scenario's bindings **pin the sampled
    ///   bits**, the Monte Carlo analogue of BDD restriction. No
    ///   diagram is touched.
    ///
    /// # Errors
    ///
    /// As [`PreparedQuery::probability`], plus the method-specific
    /// annotation errors of
    /// [`AnalysisSession::probability_value`](crate::engine::AnalysisSession::probability_value).
    pub fn probability_value(
        &self,
        scenario: &Scenario,
        method: Option<Method>,
    ) -> Result<Option<ProbValue>, BflError> {
        if matches!(
            self.roots.snapshot(),
            Compiled::Independence { .. } | Compiled::Cause { .. }
        ) {
            return Err(BflError::UnsupportedProbability {
                query: self.source.clone(),
            });
        }
        let method = method.unwrap_or(self.inner.method);
        let key = self.resolve(scenario)?;
        self.probability_value_resolved(&key, method, default_mc_threads())
    }

    /// The prepared query's operand formulae for per-sample Monte Carlo
    /// evaluation: the target and (for conditional `P` plans) the
    /// condition.
    fn mc_operands(&self) -> Result<(&Formula, Option<&Formula>), BflError> {
        match &self.query {
            Query::Prob { formula, given, .. } => Ok((formula, given.as_ref())),
            Query::Exists(phi) | Query::Forall(phi) | Query::Importance(phi) => Ok((phi, None)),
            Query::Idp(..) | Query::Sup(..) | Query::Cause { .. } => {
                Err(BflError::UnsupportedProbability {
                    query: self.source.clone(),
                })
            }
        }
    }

    /// The post-resolution method dispatch behind
    /// [`PreparedQuery::probability_value`] and the method-aware sweeps
    /// (which pass `threads = 1` — the sweep already owns the cores).
    fn probability_value_resolved(
        &self,
        key: &[(usize, bool)],
        method: Method,
        threads: usize,
    ) -> Result<Option<ProbValue>, BflError> {
        match method {
            Method::Exact => {
                let probs = self.inner.full_probabilities()?;
                Ok(self
                    .prob_eval_resolved(key, &probs)
                    .probability
                    .map(ProbValue::Exact))
            }
            Method::Interval => {
                let intervals = self.inner.full_intervals()?;
                let mut mc = self.inner.lock();
                let compiled = self.roots.snapshot();
                let assignments = to_vars(&mc, key);
                let value = match compiled {
                    Compiled::Quantifier { root, .. } | Compiled::Importance { root } => {
                        let r = mc
                            .tree_bdd_mut()
                            .manager_mut()
                            .restrict_many(root, &assignments);
                        Some(self.with_interval_memo(|memo| {
                            quant::bdd_probability_interval_with_memo(&mc, r, &intervals, memo)
                        }))
                    }
                    Compiled::Prob { joint, given, .. } => {
                        let r_joint = mc
                            .tree_bdd_mut()
                            .manager_mut()
                            .restrict_many(joint, &assignments);
                        let iv_joint = self.with_interval_memo(|memo| {
                            quant::bdd_probability_interval_with_memo(
                                &mc, r_joint, &intervals, memo,
                            )
                        });
                        match given {
                            None => Some(iv_joint),
                            Some(g) => {
                                let r_given = mc
                                    .tree_bdd_mut()
                                    .manager_mut()
                                    .restrict_many(g, &assignments);
                                let base = self.with_interval_memo(|memo| {
                                    quant::bdd_probability_interval_with_memo(
                                        &mc, r_given, &intervals, memo,
                                    )
                                });
                                quant::interval_conditional(iv_joint, base)
                            }
                        }
                    }
                    // `probability_value` rejects independence and cause
                    // plans before resolving.
                    Compiled::Independence { .. } | Compiled::Cause { .. } => None,
                };
                self.inner.maybe_maintain(&mut mc);
                drop(mc);
                self.prob_misses.fetch_add(1, Ordering::Relaxed);
                Ok(value.map(ProbValue::Interval))
            }
            Method::Mc {
                samples,
                seed,
                confidence,
            } => {
                let probs = self.inner.full_probabilities()?;
                let (phi, given) = self.mc_operands()?;
                let est = uncertainty::estimate_probability(
                    &self.inner.tree,
                    &probs,
                    phi,
                    given,
                    key,
                    samples,
                    seed,
                    confidence,
                    threads,
                )?;
                self.inner.sampler.record(samples);
                self.prob_misses.fetch_add(1, Ordering::Relaxed);
                Ok(est.map(ProbValue::Estimate))
            }
        }
    }

    /// Looks up one scenario's memoised probability evaluation.
    fn prob_scenario_lookup(&self, key: &[(usize, bool)]) -> Option<ProbEval> {
        self.prob_scenarios
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .copied()
    }

    /// Publishes one scenario's probability evaluation to the shared
    /// scenario memo.
    fn prob_scenario_insert(&self, key: &[(usize, bool)], pe: ProbEval) {
        self.prob_scenarios
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key.to_vec(), pe);
    }

    /// The scenario-memoised probability core (resolved key → result).
    /// `Independence` shapes are rejected by the callers; `probs` is
    /// validated by them.
    fn prob_eval_resolved(&self, key: &[(usize, bool)], probs: &[f64]) -> ProbEval {
        if let Some(pe) = self.prob_scenario_lookup(key) {
            self.prob_hits.fetch_add(1, Ordering::Relaxed);
            return pe;
        }
        // On `P(…)`-shaped plans the Boolean evaluator shares the
        // computation: a scenario it has already judged carries the
        // probability and verdict (the shape — unlike the handles — is
        // stable across maintenance, so an unlocked snapshot suffices).
        if matches!(self.roots.snapshot(), Compiled::Prob { .. }) {
            if let Some(c) = self.lookup(key) {
                let pe = ProbEval {
                    probability: c.probability,
                    holds: Some(c.holds),
                };
                self.prob_hits.fetch_add(1, Ordering::Relaxed);
                self.prob_scenario_insert(key, pe);
                return pe;
            }
        }
        let mut mc = self.inner.lock();
        let compiled = self.roots.snapshot();
        let assignments = to_vars(&mc, key);
        let pe = match compiled {
            Compiled::Quantifier { root, .. } | Compiled::Importance { root } => {
                let r = mc
                    .tree_bdd_mut()
                    .manager_mut()
                    .restrict_many(root, &assignments);
                let p = self
                    .with_prob_memo(|memo| quant::bdd_probability_with_memo(&mc, r, probs, memo));
                ProbEval {
                    probability: Some(p),
                    holds: None,
                }
            }
            Compiled::Prob {
                joint,
                given,
                op,
                bound,
            } => {
                self.prob_judge_locked(&mut mc, joint, given, op, bound, &assignments, probs)
                    .0
            }
            // Callers reject independence and cause plans before
            // resolving.
            Compiled::Independence { .. } | Compiled::Cause { .. } => ProbEval {
                probability: None,
                holds: None,
            },
        };
        self.inner.maybe_maintain(&mut mc);
        drop(mc);
        self.prob_misses.fetch_add(1, Ordering::Relaxed);
        self.prob_scenario_insert(key, pe);
        pe
    }

    /// **Sweeps probabilities**: `P(ϕ | scenario)` for every scenario of
    /// the set, fanned across `std::thread::scope` workers sharing the
    /// plan's scenario memo and node-keyed Shannon memo. A warm sweep
    /// (every scenario seen before) is pure cache lookups — the
    /// `reproduce -- quant` artifact benchmarks this against the
    /// recompute-per-scenario path.
    ///
    /// # Errors
    ///
    /// As [`PreparedQuery::probability`], except that zero-probability
    /// conditions are reported per-outcome (`probability: None`) rather
    /// than as an error.
    pub fn sweep_probabilities(&self, set: &ScenarioSet) -> Result<ProbSweepReport, BflError> {
        self.sweep_probabilities_with(set, None)
    }

    /// [`PreparedQuery::sweep_probabilities`] under an explicit
    /// [`Method`] (`None` = the session's default). Interval sweeps
    /// share the plan's node-keyed interval memo across workers; Monte
    /// Carlo sweeps sample **single-threaded per scenario** (the sweep
    /// already owns the cores) with the scenario's bindings pinning the
    /// sampled bits — results are byte-identical to evaluating each
    /// scenario alone.
    ///
    /// # Errors
    ///
    /// As [`PreparedQuery::probability_value`]; the first failing
    /// scenario aborts the sweep.
    pub fn sweep_probabilities_with(
        &self,
        set: &ScenarioSet,
        method: Option<Method>,
    ) -> Result<ProbSweepReport, BflError> {
        if matches!(
            self.roots.snapshot(),
            Compiled::Independence { .. } | Compiled::Cause { .. }
        ) {
            return Err(BflError::UnsupportedProbability {
                query: self.source.clone(),
            });
        }
        let method = method.unwrap_or(self.inner.method);
        let keys: Vec<Vec<(usize, bool)>> = set
            .iter()
            .map(|s| self.resolve(s))
            .collect::<Result<_, _>>()?;
        // Validate the annotations and (for Monte Carlo) the query shape
        // once, before any worker starts.
        match method {
            Method::Exact => {
                self.inner.full_probabilities()?;
            }
            Method::Interval => {
                self.inner.full_intervals()?;
            }
            Method::Mc { .. } => {
                self.inner.full_probabilities()?;
                self.mc_operands()?;
            }
        }
        // The threshold to judge, for `P(…) ▷◁ p`-shaped plans.
        let judgement = match self.roots.snapshot() {
            Compiled::Prob { op, bound, .. } => Some((op, bound)),
            _ => None,
        };
        let (hits0, misses0) = (
            self.prob_hits.load(Ordering::Relaxed),
            self.prob_misses.load(Ordering::Relaxed),
        );
        let memo_len = |m: &ProbMemo| m.nodes.len() + m.interval_nodes.len();
        let fresh0 = memo_len(&self.prob_memo.lock().unwrap_or_else(|e| e.into_inner()));

        let n = set.len();
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n)
            .max(1);
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<ProbOutcome, BflError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = self
                        .probability_value_resolved(&keys[i], method, 1)
                        .map(|value| {
                            let s = &set.scenarios[i];
                            // Impossible conditions satisfy no bound;
                            // interval judgements straddling the bound
                            // stay undecided (`None`).
                            let holds = match (&judgement, &value) {
                                (Some((op, bound)), Some(v)) => v.judge(*op, *bound),
                                (Some(_), None) => Some(false),
                                (None, _) => None,
                            };
                            let mut o = ProbOutcome {
                                label: s.name().map(str::to_string),
                                bindings: s.bindings_string(),
                                probability: None,
                                interval: None,
                                estimate: None,
                                holds,
                            };
                            match value {
                                Some(ProbValue::Exact(p)) => o.probability = Some(p),
                                Some(ProbValue::Interval(iv)) => o.interval = Some(iv),
                                Some(ProbValue::Estimate(e)) => o.estimate = Some(e),
                                None => {}
                            }
                            o
                        });
                    *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
                });
            }
        });

        let fresh1 = memo_len(&self.prob_memo.lock().unwrap_or_else(|e| e.into_inner()));
        let stats = ProbSweepStats {
            scenarios: n,
            workers,
            memo_hits: self.prob_hits.load(Ordering::Relaxed) - hits0,
            memo_misses: self.prob_misses.load(Ordering::Relaxed) - misses0,
            fresh_nodes: fresh1.saturating_sub(fresh0),
        };
        let mut outcomes = Vec::with_capacity(n);
        for (i, slot) in slots.into_iter().enumerate() {
            outcomes.push(
                slot.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .ok_or_else(|| BflError::Internal {
                        context: format!(
                            "probability sweep worker left scenario {i} of `{}` unfilled",
                            self.source
                        ),
                    })??,
            );
        }
        Ok(ProbSweepReport {
            query: self.source.clone(),
            method,
            outcomes,
            stats,
        })
    }
}

/// Maps resolved `(basic index, value)` bindings to BDD variables.
fn to_vars(mc: &ModelChecker, key: &[(usize, bool)]) -> Vec<(Var, bool)> {
    key.iter()
        .map(|&(bi, value)| (mc.var_of_basic(bi), value))
        .collect()
}

/// Runs the rewriting pipeline on one operand and compiles it.
fn compile_operand(
    mc: &mut ModelChecker,
    role: &'static str,
    phi: &Formula,
) -> Result<(OperandPlan, Bdd), BflError> {
    let mut passes = vec![PassStep {
        pass: "parse",
        applied: true,
        size: phi.size(),
        rendered: truncate(&phi.to_string()),
    }];
    let mut current = phi.clone();
    if max_vot_arity(&current) <= DESUGAR_VOT_LIMIT {
        current = desugar(&current);
        passes.push(PassStep {
            pass: "desugar",
            applied: true,
            size: current.size(),
            rendered: truncate(&current.to_string()),
        });
    } else {
        passes.push(PassStep {
            pass: "desugar",
            applied: false,
            size: current.size(),
            rendered: String::new(),
        });
    }
    current = to_nnf(&current);
    passes.push(PassStep {
        pass: "nnf",
        applied: true,
        size: current.size(),
        rendered: truncate(&current.to_string()),
    });
    current = simplify(&current);
    passes.push(PassStep {
        pass: "simplify",
        applied: true,
        size: current.size(),
        rendered: truncate(&current.to_string()),
    });
    // BDD canonicity makes the rewritten formula compile to the same
    // diagram as the original; compiling the rewritten form keeps the
    // plan honest about what was built.
    let root = mc.formula_bdd(&current)?;
    let support = mc.support_basic_names(root).len();
    let constant = if root.is_true() {
        Some(true)
    } else if root.is_false() {
        Some(false)
    } else {
        None
    };
    Ok((
        OperandPlan {
            role,
            passes,
            bdd_nodes: mc.bdd_size(root),
            support,
            constant,
        },
        root,
    ))
}

fn max_vot_arity(phi: &Formula) -> usize {
    let mut max = 0;
    phi.visit(&mut |f| {
        if let Formula::Vot { operands, .. } = f {
            max = max.max(operands.len());
        }
    });
    max
}

fn truncate(s: &str) -> String {
    if s.chars().count() <= RENDER_LIMIT {
        s.to_string()
    } else {
        let mut t: String = s.chars().take(RENDER_LIMIT).collect();
        t.push('…');
        t
    }
}

// ---------------------------------------------------------------------------
// The sweep report.
// ---------------------------------------------------------------------------

/// Aggregate statistics of one [`PreparedQuery::sweep`].
///
/// The counts are before/after deltas over the session's shared
/// counters, attributed to this sweep's window: if *other* queries run
/// on the same session (or prepared query) concurrently with the sweep,
/// their translations, memo traffic and arena growth land in the window
/// too. For attribution-grade numbers, let the sweep be the session's
/// only activity while it runs (as the test-suite's assertions do).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepStats {
    /// Number of scenarios evaluated.
    pub scenarios: usize,
    /// Number of `std::thread::scope` workers spawned (fresh restrictions
    /// still serialise on the session's shared BDD manager; see
    /// [`PreparedQuery::sweep`]).
    pub workers: usize,
    /// Evaluations answered from the scenario memo.
    pub memo_hits: u64,
    /// Evaluations that computed a fresh restriction.
    pub memo_misses: u64,
    /// Formula-translation cache misses during the sweep — **0**: the
    /// sweep path never recompiles a formula (asserted by the
    /// cross-check suite).
    pub translation_misses: u64,
    /// BDD arena size when the sweep started.
    pub arena_before: usize,
    /// BDD arena size when the sweep finished.
    pub arena_after: usize,
}

impl SweepStats {
    /// Nodes added to the shared arena during the sweep (restriction may
    /// build a few residual nodes on first sight of a scenario; memoised
    /// sweeps add none).
    pub fn arena_growth(&self) -> usize {
        self.arena_after - self.arena_before
    }
}

/// The result of sweeping a prepared query over a scenario set: one
/// [`Outcome`] per scenario (in set order) plus sweep-level statistics,
/// rendered as text ([`fmt::Display`]) or JSON ([`SweepReport::to_json`]).
#[derive(Debug, Clone)]
pub struct SweepReport {
    tree: Arc<FaultTree>,
    /// Concrete syntax of the prepared query.
    pub query: String,
    /// Per-scenario outcomes, in scenario-set order.
    pub outcomes: Vec<Outcome>,
    /// Component-wise aggregate of every outcome's statistics.
    pub totals: EvalStats,
    /// Sweep-level cache and arena statistics.
    pub stats: SweepStats,
}

impl SweepReport {
    /// The tree the sweep ran against.
    pub fn tree(&self) -> &FaultTree {
        &self.tree
    }

    /// Number of scenarios under which the query holds.
    pub fn holding(&self) -> usize {
        self.outcomes.iter().filter(|o| o.holds).count()
    }

    /// Serialises the report as a self-contained JSON document (the
    /// outcome schema matches [`Report::to_json`](crate::report::Report::to_json)).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"query\":{}", json_str(&self.query)));
        out.push_str(&format!(
            ",\"tree\":{}",
            json_str(self.tree.name(self.tree.top()))
        ));
        out.push_str(",\"outcomes\":[");
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_outcome(&self.tree, o));
        }
        out.push_str(&format!("],\"totals\":{}", json_stats(&self.totals)));
        let s = &self.stats;
        out.push_str(&format!(
            ",\"sweep\":{{\"scenarios\":{},\"workers\":{},\"memo_hits\":{},\"memo_misses\":{},\"translation_misses\":{},\"arena_before\":{},\"arena_after\":{}}}",
            s.scenarios, s.workers, s.memo_hits, s.memo_misses, s.translation_misses,
            s.arena_before, s.arena_after
        ));
        out.push('}');
        out
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sweep `{}` over {} scenarios ({} workers)",
            self.query, self.stats.scenarios, self.stats.workers
        )?;
        let failed_names = |v: &StatusVector| v.failed_names(&self.tree).join(", ");
        for o in &self.outcomes {
            writeln!(
                f,
                "{}  {}",
                if o.holds { "PASS" } else { "FAIL" },
                o.title()
            )?;
            for w in &o.witnesses {
                writeln!(f, "      witness {{{}}}", failed_names(w))?;
            }
            for c in &o.counterexamples {
                writeln!(f, "      refuted by {{{}}}", failed_names(c))?;
            }
            if !o.shared_events.is_empty() {
                writeln!(f, "      shared events {{{}}}", o.shared_events.join(", "))?;
            }
        }
        writeln!(
            f,
            "{}/{} hold · {} restrictions / {} memoised · {} translation misses · arena {} → {}",
            self.holding(),
            self.outcomes.len(),
            self.stats.memo_misses,
            self.stats.memo_hits,
            self.stats.translation_misses,
            self.stats.arena_before,
            self.stats.arena_after
        )
    }
}

// ---------------------------------------------------------------------------
// The probability-sweep report.
// ---------------------------------------------------------------------------

/// One scenario's probability in a [`ProbSweepReport`]. Exactly one of
/// `probability` / `interval` / `estimate` is populated, matching the
/// sweep's [`Method`] (all may be `None` when a conditional plan's
/// condition is impossible under the scenario).
#[derive(Debug, Clone, PartialEq)]
pub struct ProbOutcome {
    /// The scenario's name, if any.
    pub label: Option<String>,
    /// The scenario's bindings, rendered (`A = 1, B = 0`; empty for the
    /// baseline).
    pub bindings: String,
    /// `P(ϕ | scenario)` under [`Method::Exact`]; `None` when a
    /// conditional plan's condition has (effectively) zero probability
    /// under the scenario.
    pub probability: Option<f64>,
    /// Conservative bounds under [`Method::Interval`].
    pub interval: Option<ProbInterval>,
    /// The Monte Carlo estimate under [`Method::Mc`].
    pub estimate: Option<Estimate>,
    /// For `P(…) ▷◁ p`-shaped plans: the threshold verdict. `None` for
    /// plans with no bound (`exists`/`forall`/`importance` operands),
    /// and for interval judgements whose bounds straddle the threshold
    /// (undecidable from the annotations).
    pub holds: Option<bool>,
}

impl ProbOutcome {
    /// `label [bindings]`, or whichever half is present.
    pub fn title(&self) -> String {
        match (&self.label, self.bindings.is_empty()) {
            (Some(l), true) => l.clone(),
            (Some(l), false) => format!("{l} [{}]", self.bindings),
            (None, true) => "(baseline)".to_string(),
            (None, false) => format!("[{}]", self.bindings),
        }
    }
}

/// Cache statistics of one [`PreparedQuery::sweep_probabilities`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbSweepStats {
    /// Number of scenarios evaluated.
    pub scenarios: usize,
    /// Number of `std::thread::scope` workers spawned.
    pub workers: usize,
    /// Scenarios answered from the scenario memo (pure lookups — a warm
    /// sweep is all hits).
    pub memo_hits: u64,
    /// Scenarios computed by restriction + Shannon walk.
    pub memo_misses: u64,
    /// Nodes newly entered into the plan's node-keyed Shannon memo
    /// during the sweep — **0** on a warm sweep: restrictions of one
    /// diagram share almost all nodes, and repeats share all of them.
    pub fresh_nodes: usize,
}

/// The result of sweeping probabilities over a scenario set: one
/// [`ProbOutcome`] per scenario (in set order) plus cache statistics,
/// rendered as text ([`fmt::Display`]) or JSON
/// ([`ProbSweepReport::to_json`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ProbSweepReport {
    /// Concrete syntax of the prepared query.
    pub query: String,
    /// The evaluation method the sweep ran under.
    pub method: Method,
    /// Per-scenario probabilities, in scenario-set order.
    pub outcomes: Vec<ProbOutcome>,
    /// Sweep-level cache statistics.
    pub stats: ProbSweepStats,
}

impl ProbSweepReport {
    /// Serialises the report as a self-contained JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"query\":{}", json_str(&self.query)));
        out.push_str(&format!(",\"method\":{}", json_str(self.method.name())));
        out.push_str(",\"outcomes\":[");
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            match &o.label {
                Some(l) => out.push_str(&format!("\"label\":{}", json_str(l))),
                None => out.push_str("\"label\":null"),
            }
            out.push_str(&format!(",\"bindings\":{}", json_str(&o.bindings)));
            match o.probability {
                Some(p) => out.push_str(&format!(",\"probability\":{p}")),
                None => out.push_str(",\"probability\":null"),
            }
            match &o.interval {
                Some(iv) => out.push_str(&format!(",\"interval\":{}", json_interval(iv))),
                None => out.push_str(",\"interval\":null"),
            }
            match &o.estimate {
                Some(e) => out.push_str(&format!(",\"estimate\":{}", json_estimate(e))),
                None => out.push_str(",\"estimate\":null"),
            }
            match o.holds {
                Some(h) => out.push_str(&format!(",\"holds\":{h}")),
                None => out.push_str(",\"holds\":null"),
            }
            out.push('}');
        }
        let s = &self.stats;
        out.push_str(&format!(
            "],\"sweep\":{{\"scenarios\":{},\"workers\":{},\"memo_hits\":{},\"memo_misses\":{},\"fresh_nodes\":{}}}",
            s.scenarios, s.workers, s.memo_hits, s.memo_misses, s.fresh_nodes
        ));
        out.push('}');
        out
    }
}

impl fmt::Display for ProbSweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "probability sweep `{}` over {} scenarios ({} workers, method {})",
            self.query, self.stats.scenarios, self.stats.workers, self.method
        )?;
        for o in &self.outcomes {
            let verdict = match o.holds {
                Some(true) => "PASS  ",
                Some(false) => "FAIL  ",
                None => "      ",
            };
            if let Some(p) = o.probability {
                writeln!(f, "{verdict}{:<40} {p}", o.title())?;
            } else if let Some(iv) = &o.interval {
                writeln!(f, "{verdict}{:<40} [{}, {}]", o.title(), iv.lo, iv.hi)?;
            } else if let Some(e) = &o.estimate {
                writeln!(
                    f,
                    "{verdict}{:<40} ≈{} CI [{}, {}]",
                    o.title(),
                    e.point,
                    e.ci_lo,
                    e.ci_hi
                )?;
            } else {
                writeln!(f, "{verdict}{:<40} (condition impossible)", o.title())?;
            }
        }
        writeln!(
            f,
            "{} computed / {} memoised · {} fresh memo nodes",
            self.stats.memo_misses, self.stats.memo_hits, self.stats.fresh_nodes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AnalysisSession;
    use crate::parser::parse_query;
    use bfl_fault_tree::corpus;

    #[test]
    fn prepared_query_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PreparedQuery>();
        assert_send_sync::<SweepReport>();
    }

    #[test]
    fn prepared_outlives_its_session() {
        let prepared;
        {
            let session = AnalysisSession::new(corpus::covid());
            prepared = session
                .prepare(&parse_query("exists IWoS").unwrap())
                .unwrap();
            // `session` drops here; the prepared query keeps the core alive.
        }
        assert!(prepared.eval(&Scenario::new()).unwrap().holds);
        assert!(
            !prepared
                .eval(&Scenario::new().bind("VW", false))
                .unwrap()
                .holds
        );
    }

    #[test]
    fn eval_is_memoised() {
        let session = AnalysisSession::new(corpus::covid());
        let prepared = session
            .prepare(&parse_query("exists IWoS").unwrap())
            .unwrap();
        let s = Scenario::named("s").bind("IW", true);
        let first = prepared.eval(&s).unwrap();
        assert_eq!(first.stats.cache_misses, 1);
        assert_eq!(first.stats.cache_hits, 0);
        let second = prepared.eval(&s).unwrap();
        assert_eq!(second.stats.cache_misses, 0);
        assert_eq!(second.stats.cache_hits, 1);
        assert_eq!(first.holds, second.holds);
        let stats = prepared.stats();
        assert_eq!(stats.evals, 2);
        assert_eq!(stats.distinct_scenarios, 1);
    }

    #[test]
    fn binding_order_does_not_matter_for_memoisation() {
        let session = AnalysisSession::new(corpus::covid());
        let prepared = session
            .prepare(&parse_query("exists IWoS").unwrap())
            .unwrap();
        let a = Scenario::from_pairs([("IW", true), ("H5", false)]);
        let b = Scenario::from_pairs([("H5", false), ("IW", true)]);
        let _ = prepared.eval(&a).unwrap();
        let o = prepared.eval(&b).unwrap();
        assert_eq!(o.stats.cache_hits, 1);
        assert_eq!(prepared.stats().distinct_scenarios, 1);
    }

    #[test]
    fn invalid_bindings_are_rejected() {
        let session = AnalysisSession::new(corpus::covid());
        let prepared = session
            .prepare(&parse_query("exists IWoS").unwrap())
            .unwrap();
        assert_eq!(
            prepared.eval(&Scenario::new().bind("ghost", true)),
            Err(BflError::UnknownElement("ghost".into()))
        );
        assert_eq!(
            prepared.eval(&Scenario::new().bind("MoT", true)),
            Err(BflError::EvidenceOnGate("MoT".into()))
        );
        // A bad scenario aborts a sweep before any evaluation.
        let set = ScenarioSet::from_scenarios([
            Scenario::new().bind("IW", true),
            Scenario::new().bind("ghost", true),
        ]);
        assert!(prepared.sweep(&set).is_err());
        assert_eq!(prepared.stats().evals, 0);
    }

    #[test]
    fn plan_records_passes_and_fast_path() {
        let session = AnalysisSession::new(corpus::covid());
        let plain = session
            .prepare(&parse_query("forall IS => MoT").unwrap())
            .unwrap();
        let plan = plain.explain();
        assert_eq!(plan.kind, "forall");
        assert!(plan.minimality_fast_path);
        assert_eq!(plan.operands.len(), 1);
        let passes: Vec<&str> = plan.operands[0].passes.iter().map(|p| p.pass).collect();
        assert_eq!(passes, ["parse", "desugar", "nnf", "simplify"]);
        assert!(plan.operands[0].bdd_nodes > 0);
        assert!(plan.prepare.cache_misses > 0);

        let minimal = session
            .prepare(&parse_query("exists MCS(IWoS)").unwrap())
            .unwrap();
        assert!(!minimal.explain().minimality_fast_path);

        let text = plan.to_string();
        assert!(text.contains("forall"), "{text}");
        assert!(text.contains("simplify"), "{text}");
        let json = plan.to_json();
        assert!(json.contains("\"kind\":\"forall\""), "{json}");
        assert!(json.contains("\"minimality_fast_path\":true"), "{json}");
    }

    #[test]
    fn wide_vot_skips_desugar() {
        let mut b = bfl_fault_tree::FaultTreeBuilder::new();
        let names: Vec<String> = (0..10).map(|i| format!("e{i}")).collect();
        b.basic_events(names.iter().map(String::as_str)).unwrap();
        b.gate(
            "top",
            bfl_fault_tree::GateType::Or,
            names.iter().map(String::as_str),
        )
        .unwrap();
        let tree = b.build("top").unwrap();
        let session = AnalysisSession::new(tree);
        let operands = names.iter().map(|n| Formula::atom(n.clone()));
        let q = Query::exists(Formula::vot(crate::ast::CmpOp::Ge, 9, operands));
        let prepared = session.prepare(&q).unwrap();
        let desugar_step = &prepared.explain().operands[0].passes[1];
        assert_eq!(desugar_step.pass, "desugar");
        assert!(!desugar_step.applied);
        assert!(prepared.eval(&Scenario::new()).unwrap().holds);
    }

    #[test]
    fn sup_compiles_to_independence() {
        let session = AnalysisSession::new(corpus::covid());
        let prepared = session.prepare(&parse_query("SUP(PP)").unwrap()).unwrap();
        assert_eq!(prepared.explain().kind, "sup");
        let o = prepared.eval(&Scenario::new()).unwrap();
        assert!(!o.holds);
        assert!(o.shared_events.contains(&"PP".to_string()));
    }

    #[test]
    fn probability_value_methods_agree_on_plans() {
        let tree = corpus::covid();
        let n = tree.num_basic_events();
        let probs: Vec<Option<f64>> = (0..n).map(|i| Some(0.02 + (i as f64) * 0.05)).collect();
        let session = AnalysisSession::builder().probabilities(probs).build(tree);
        let prepared = session
            .prepare(&parse_query("P(IWoS) >= 0.5").unwrap())
            .unwrap();
        let scenario = Scenario::named("s").bind("H4", true);
        let exact = prepared.probability(&scenario).unwrap();
        // Exact through the method dispatch: same number.
        let v = prepared
            .probability_value(&scenario, None)
            .unwrap()
            .unwrap();
        assert_eq!(v, ProbValue::Exact(exact));
        // Degenerate interval propagation: bit-identical to exact.
        let v = prepared
            .probability_value(&scenario, Some(Method::Interval))
            .unwrap()
            .unwrap();
        let ProbValue::Interval(iv) = v else {
            panic!("{v:?}")
        };
        assert_eq!(iv.lo.to_bits(), exact.to_bits());
        assert_eq!(iv.hi.to_bits(), exact.to_bits());
        // Monte Carlo with the scenario pinning H4: deterministic, CI
        // brackets the exact restricted probability.
        let mc = Method::Mc {
            samples: 40_000,
            seed: 7,
            confidence: 0.99,
        };
        let a = prepared
            .probability_value(&scenario, Some(mc))
            .unwrap()
            .unwrap();
        let b = prepared
            .probability_value(&scenario, Some(mc))
            .unwrap()
            .unwrap();
        assert_eq!(a, b);
        let ProbValue::Estimate(e) = a else {
            panic!("{a:?}")
        };
        assert!(e.ci_lo <= exact && exact <= e.ci_hi, "{e:?} vs {exact}");
        assert!(session.sampler_stats().runs >= 2);
    }

    #[test]
    fn method_sweeps_share_plans_and_stay_deterministic() {
        let tree = corpus::covid();
        let n = tree.num_basic_events();
        let probs: Vec<Option<f64>> = (0..n).map(|i| Some(0.02 + (i as f64) * 0.05)).collect();
        let session = AnalysisSession::builder().probabilities(probs).build(tree);
        let prepared = session
            .prepare(&parse_query("P(IWoS) >= 0.5").unwrap())
            .unwrap();
        let set = ScenarioSet::parse("baseline:\nworst: IW = 1\nsafe: VW = 0\n").unwrap();
        let exact = prepared.sweep_probabilities(&set).unwrap();
        assert_eq!(exact.method, Method::Exact);
        // Interval sweep with degenerate intervals reproduces exact.
        let interval = prepared
            .sweep_probabilities_with(&set, Some(Method::Interval))
            .unwrap();
        for (e, iv) in exact.outcomes.iter().zip(&interval.outcomes) {
            let p = e.probability.unwrap();
            let iv = iv.interval.unwrap();
            assert_eq!(iv.lo.to_bits(), p.to_bits());
            assert_eq!(iv.hi.to_bits(), p.to_bits());
        }
        // Monte Carlo sweep: reproducible run to run, and each scenario
        // byte-identical to its standalone evaluation (workers pin the
        // scenario's bits; seeding is per chunk, not per worker).
        let mc = Method::Mc {
            samples: 20_000,
            seed: 42,
            confidence: 0.95,
        };
        let s1 = prepared.sweep_probabilities_with(&set, Some(mc)).unwrap();
        let s2 = prepared.sweep_probabilities_with(&set, Some(mc)).unwrap();
        assert_eq!(s1.outcomes, s2.outcomes);
        for (i, o) in s1.outcomes.iter().enumerate() {
            let standalone = prepared
                .probability_value(&set.scenarios[i], Some(mc))
                .unwrap()
                .unwrap();
            let ProbValue::Estimate(e) = standalone else {
                panic!("{standalone:?}")
            };
            assert_eq!(o.estimate, Some(e));
            // The sweep judged the threshold from the estimate.
            assert_eq!(o.holds, Some(e.point >= 0.5));
        }
        let json = s1.to_json();
        assert!(json.contains("\"method\":\"mc\""), "{json}");
        assert!(json.contains("\"estimate\":{\"point\":"), "{json}");
        let text = s1.to_string();
        assert!(text.contains("method mc"), "{text}");
    }

    #[test]
    fn interval_session_drives_prepared_plans() {
        // A session whose model carries real intervals: exact plans
        // refuse, interval plans bracket, and the undecidable judgement
        // stays unresolved in the sweep.
        let session = AnalysisSession::builder()
            .intervals(vec![
                ProbInterval::new(0.1, 0.3).ok(),
                ProbInterval::new(0.2, 0.2).ok(),
            ])
            .method(Method::Interval)
            .build(corpus::or2());
        let prepared = session
            .prepare(&parse_query("P(Top) >= 0.3").unwrap())
            .unwrap();
        assert!(matches!(
            prepared.probability(&Scenario::new()),
            Err(BflError::IntervalProbabilities { .. })
        ));
        // The session default (interval) applies when no override given.
        let v = prepared
            .probability_value(&Scenario::new(), None)
            .unwrap()
            .unwrap();
        let ProbValue::Interval(iv) = v else {
            panic!("{v:?}")
        };
        assert!((iv.lo - 0.28).abs() < 1e-12 && (iv.hi - 0.44).abs() < 1e-12);
        let report = prepared
            .sweep_probabilities(&ScenarioSet::parse("base:\npinned: e1 = 1\n").unwrap())
            .unwrap();
        // [0.28, 0.44] straddles 0.3: undecided. Pinning e1 failed
        // forces P(Top) = 1 under every annotation choice: decided.
        assert_eq!(report.outcomes[0].holds, None);
        assert_eq!(report.outcomes[1].holds, Some(true));
        assert_eq!(
            report.outcomes[1].interval,
            ProbInterval::new(1.0, 1.0).ok()
        );
    }

    #[test]
    fn sweep_report_renders_text_and_json() {
        let session = AnalysisSession::new(corpus::covid());
        let prepared = session
            .prepare(&parse_query("exists IWoS").unwrap())
            .unwrap();
        let set = ScenarioSet::parse("baseline:\nprotected: VW = 0\n").unwrap();
        let report = prepared.sweep(&set).unwrap();
        assert_eq!(report.outcomes.len(), 2);
        assert_eq!(report.holding(), 1);
        let text = report.to_string();
        assert!(text.contains("PASS  baseline"), "{text}");
        assert!(text.contains("FAIL  protected"), "{text}");
        let json = report.to_json();
        assert!(json.contains("\"sweep\""), "{json}");
        assert!(json.contains("\"translation_misses\":0"), "{json}");
    }
}
