//! Failure-propagation rendering: the textual analogue of the tree
//! drawings in Table I and Section VII, showing how the failures of a
//! status vector propagate through the gates.

use std::fmt::Write as _;

use bfl_fault_tree::{ElementId, FaultTree, GateType, StatusVector};

/// Marker used for failed elements.
pub const FAILED: char = '✗';
/// Marker used for operational elements.
pub const OPERATIONAL: char = '·';

/// Renders the tree under `b` as an indented ASCII tree: every element is
/// annotated with `✗` (failed) or `·` (operational). Shared subtrees are
/// expanded at every occurrence (trees are DAGs), matching the visual
/// duplication in the paper's figures.
///
/// # Example
///
/// ```
/// use bfl_core::render::propagation;
/// use bfl_fault_tree::{corpus, StatusVector};
/// let tree = corpus::fig1();
/// let b = StatusVector::from_failed_names(&tree, &["IW", "H3"]);
/// let text = propagation(&tree, &b);
/// assert!(text.starts_with("CP/R"));
/// assert!(text.contains('✗'));
/// ```
pub fn propagation(tree: &FaultTree, b: &StatusVector) -> String {
    let statuses = tree.evaluate_all(b);
    let mut out = String::new();
    render_node(tree, tree.top(), &statuses, "", true, true, &mut out);
    out
}

/// Renders the subtree rooted at `e` under `b`.
pub fn propagation_from(tree: &FaultTree, e: ElementId, b: &StatusVector) -> String {
    let statuses = tree.evaluate_all(b);
    let mut out = String::new();
    render_node(tree, e, &statuses, "", true, true, &mut out);
    out
}

fn render_node(
    tree: &FaultTree,
    e: ElementId,
    statuses: &[bool],
    prefix: &str,
    is_last: bool,
    is_root: bool,
    out: &mut String,
) {
    let marker = if statuses[e.index()] {
        FAILED
    } else {
        OPERATIONAL
    };
    let gate = match tree.gate_type(e) {
        None => String::new(),
        Some(GateType::And) => " [AND]".to_string(),
        Some(GateType::Or) => " [OR]".to_string(),
        Some(GateType::Vot { k }) => format!(" [VOT {k}/{}]", tree.children(e).len()),
    };
    if is_root {
        let _ = writeln!(out, "{} {marker}{gate}", tree.name(e));
    } else {
        let branch = if is_last { "└─ " } else { "├─ " };
        let _ = writeln!(out, "{prefix}{branch}{} {marker}{gate}", tree.name(e));
    }
    let child_prefix = if is_root {
        String::new()
    } else {
        format!("{prefix}{}", if is_last { "   " } else { "│  " })
    };
    let children = tree.children(e);
    for (i, &c) in children.iter().enumerate() {
        render_node(
            tree,
            c,
            statuses,
            &child_prefix,
            i + 1 == children.len(),
            false,
            out,
        );
    }
}

/// Renders an example/counterexample pair side by side conceptually: the
/// propagation under `b`, then under `revised`, with a diff line naming
/// the flipped basic events — the textual form of a Table I row.
pub fn counterexample_report(tree: &FaultTree, b: &StatusVector, revised: &StatusVector) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "vector b  = {b}");
    out.push_str(&propagation(tree, b));
    let _ = writeln!(out, "vector b' = {revised}");
    out.push_str(&propagation(tree, revised));
    let flipped: Vec<&str> = (0..b.len())
        .filter(|&i| b.get(i) != revised.get(i))
        .map(|i| tree.name(tree.basic_events()[i]))
        .collect();
    let _ = writeln!(out, "changed: {{{}}}", flipped.join(", "));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfl_fault_tree::corpus;

    #[test]
    fn propagation_marks_failures() {
        let tree = corpus::fig1();
        let b = StatusVector::from_failed_names(&tree, &["IW", "H3"]);
        let text = propagation(&tree, &b);
        // CP fails (both children failed), CR stays operational.
        assert!(text.contains("CP/R ✗"));
        assert!(text.contains("CP ✗"));
        assert!(text.contains("CR ·"));
        assert!(text.contains("[AND]"));
        assert!(text.contains("[OR]"));
    }

    #[test]
    fn repeated_events_rendered_at_each_occurrence() {
        let tree = corpus::covid();
        let b = StatusVector::all_operational(tree.num_basic_events());
        let text = propagation(&tree, &b);
        // IW occurs under CP, CIW, DT, AT and CVT.
        assert!(text.matches("IW ·").count() >= 5);
    }

    #[test]
    fn counterexample_report_shows_diff() {
        let tree = corpus::table1_tree();
        let b = StatusVector::from_bits([false, true, false]);
        let revised = StatusVector::from_bits([true, true, false]);
        let report = counterexample_report(&tree, &b, &revised);
        assert!(report.contains("vector b  = 010"));
        assert!(report.contains("vector b' = 110"));
        assert!(report.contains("changed: {e2}"));
    }

    #[test]
    fn subtree_rendering() {
        let tree = corpus::covid();
        let mot = tree.element("MoT").unwrap();
        let b = StatusVector::all_operational(tree.num_basic_events());
        let text = propagation_from(&tree, mot, &b);
        assert!(text.starts_with("MoT"));
        assert!(!text.contains("IWoS"));
    }
}
