//! Static analysis of fault-tree models and BFL specs.
//!
//! The linter answers a question the type system and the runtime
//! checkers cannot: *is this model/spec saying what its author meant?*
//! Well-formed inputs routinely contain degenerate structure — events
//! that cannot influence the top gate, voting gates that collapse to
//! AND/OR, probabilities pinned to `0`/`1`, queries that hold (or fail)
//! for every status vector — which waste BDD work and usually indicate
//! an authoring bug.
//!
//! Two rule families:
//!
//! * **structural rules** walk the [`FaultTree`] and its probability
//!   annotations directly (`L001`–`L007`);
//! * **semantic rules** reuse the compiled-plan pipeline: formulas are
//!   compiled to BDDs through the session's shared caches, so constant
//!   detection, support computation and evidence restriction are exact,
//!   not syntactic (`L000`, `L008`–`L013`).
//!
//! Every diagnostic carries a stable code from the [`RULES`] registry, a
//! severity, the *subject* (the element or spec item it is about) and a
//! concrete suggestion where one exists. Rendering is deterministic:
//! diagnostics sort by code, then subject, then message, and
//! [`to_json`] emits a canonical document — the CLI's `bfl lint --json`
//! and the server's `lint` op both print exactly this function's output,
//! so the two transports round-trip by construction.
//!
//! Entry points: [`AnalysisSession::lint`](crate::engine::AnalysisSession::lint)
//! (model only) and
//! [`AnalysisSession::lint_spec`](crate::engine::AnalysisSession::lint_spec)
//! (model + spec); see `docs/lint.md` for every code with a triggering
//! example and its fix.

use std::collections::HashMap;
use std::fmt;

use bfl_fault_tree::{FaultTree, GateType};

use crate::ast::{Formula, Query};
use crate::checker::ModelChecker;
use crate::report::{json_str, Spec, SpecKind};
use crate::uncertainty::ProbInterval;

/// Diagnostic severity, ordered `Info < Warning < Error`.
///
/// `bfl lint --deny warnings` fails on any diagnostic at
/// [`Severity::Warning`] or above; [`Severity::Info`] diagnostics are
/// advisory and never gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: harmless but worth knowing.
    Info,
    /// Almost certainly an authoring mistake.
    Warning,
    /// The item cannot mean what it says (e.g. it does not compile).
    Error,
}

impl Severity {
    /// The canonical lowercase name (`"info"` / `"warning"` / `"error"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parses [`Severity::as_str`] output back.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "info" => Some(Severity::Info),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One registered lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// Stable diagnostic code (`"L001"`, …).
    pub code: &'static str,
    /// Short kebab-case rule name.
    pub name: &'static str,
    /// One-line description of what the rule flags.
    pub summary: &'static str,
    /// Severity of diagnostics produced by this rule.
    pub severity: Severity,
}

/// The rule registry, in code order. `--select`/`--ignore` filters and
/// `docs/lint.md` are both defined against this table.
pub const RULES: &[Rule] = &[
    Rule {
        code: "L000",
        name: "invalid-item",
        summary: "a spec item does not compile against the model",
        severity: Severity::Error,
    },
    // Info, not Warning: in DAG-shaped models a shared subtree beside
    // one of its own leaves absorbs that leaf (x ∧ (x ∨ y) = x) as a
    // matter of course — industrial trees do this on purpose, so the
    // finding is informational; hand-written tree models should still
    // read it as a defect.
    Rule {
        code: "L001",
        name: "unused-basic-event",
        summary: "a basic event cannot influence the top event (absorbed)",
        severity: Severity::Info,
    },
    Rule {
        code: "L002",
        name: "single-child-gate",
        summary: "a gate with one child is a pass-through",
        severity: Severity::Warning,
    },
    Rule {
        code: "L003",
        name: "duplicate-child",
        summary: "a gate lists the same child more than once",
        severity: Severity::Warning,
    },
    Rule {
        code: "L004",
        name: "duplicate-subtree",
        summary: "two gates compute structurally identical subtrees",
        severity: Severity::Info,
    },
    Rule {
        code: "L005",
        name: "degenerate-vot",
        summary: "a voting gate with k=1 (≡ OR) or k=N (≡ AND)",
        severity: Severity::Warning,
    },
    Rule {
        code: "L006",
        name: "constant-probability",
        summary: "a basic event annotated with probability 0 or 1",
        severity: Severity::Warning,
    },
    Rule {
        code: "L007",
        name: "degenerate-interval",
        summary: "an interval annotation with lo = hi",
        severity: Severity::Info,
    },
    Rule {
        code: "L008",
        name: "tautological-formula",
        summary: "a formula that holds for every status vector",
        severity: Severity::Warning,
    },
    Rule {
        code: "L009",
        name: "contradictory-formula",
        summary: "a formula no status vector satisfies",
        severity: Severity::Warning,
    },
    Rule {
        code: "L010",
        name: "redundant-evidence",
        summary: "evidence that binds an event the formula ignores, or \
                  contradicts an earlier binding",
        severity: Severity::Warning,
    },
    Rule {
        code: "L011",
        name: "evidence-decides-formula",
        summary: "evidence that makes a non-constant formula constant",
        severity: Severity::Warning,
    },
    Rule {
        code: "L012",
        name: "shadowed-label",
        summary: "two spec items share a label",
        severity: Severity::Warning,
    },
    Rule {
        code: "L013",
        name: "impossible-condition",
        summary: "P(ϕ | ψ) with structurally impossible ψ",
        severity: Severity::Error,
    },
];

/// Looks a rule up by its code.
pub fn rule(code: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.code == code)
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule code (`"L001"`, …).
    pub code: String,
    /// Severity, as registered for the rule.
    pub severity: Severity,
    /// What the finding is about: an element name for model rules, the
    /// item label (or its source text) for spec rules.
    pub subject: String,
    /// Human-readable description of the finding.
    pub message: String,
    /// A concrete fix, when one exists.
    pub suggestion: Option<String>,
    /// Source location (`file:line:col`) when the front end tracked one.
    pub location: Option<String>,
}

impl Diagnostic {
    fn new(code: &'static str, subject: impl Into<String>, message: impl Into<String>) -> Self {
        let severity = rule(code).map_or(Severity::Warning, |r| r.severity);
        Diagnostic {
            code: code.to_string(),
            severity,
            subject: subject.into(),
            message: message.into(),
            suggestion: None,
            location: None,
        }
    }

    fn suggest(mut self, s: impl Into<String>) -> Self {
        self.suggestion = Some(s.into());
        self
    }

    /// Renders the diagnostic as one (or two) text lines:
    /// `severity[code] location subject: message` plus an indented
    /// `help:` line when a suggestion exists.
    pub fn render(&self) -> String {
        let mut out = format!("{}[{}]", self.severity, self.code);
        if let Some(loc) = &self.location {
            out.push(' ');
            out.push_str(loc);
        }
        out.push(' ');
        out.push_str(&self.subject);
        out.push_str(": ");
        out.push_str(&self.message);
        if let Some(s) = &self.suggestion {
            out.push_str("\n    help: ");
            out.push_str(s);
        }
        out
    }

    /// Serialises the diagnostic as one canonical JSON object (fixed
    /// field order: code, severity, subject, message, suggestion,
    /// location).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"code\":{}", json_str(&self.code)));
        out.push_str(&format!(
            ",\"severity\":{}",
            json_str(self.severity.as_str())
        ));
        out.push_str(&format!(",\"subject\":{}", json_str(&self.subject)));
        out.push_str(&format!(",\"message\":{}", json_str(&self.message)));
        match &self.suggestion {
            Some(s) => out.push_str(&format!(",\"suggestion\":{}", json_str(s))),
            None => out.push_str(",\"suggestion\":null"),
        }
        match &self.location {
            Some(l) => out.push_str(&format!(",\"location\":{}", json_str(l))),
            None => out.push_str(",\"location\":null"),
        }
        out.push('}');
        out
    }
}

/// The highest severity among `diags`, `None` when clean.
pub fn max_severity(diags: &[Diagnostic]) -> Option<Severity> {
    diags.iter().map(|d| d.severity).max()
}

/// Canonical JSON for a whole lint run: the sorted diagnostics plus a
/// per-severity summary. This exact document flows through every
/// transport (CLI `--json`, server `lint` op), so they round-trip.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&d.to_json());
    }
    let count = |s: Severity| diags.iter().filter(|d| d.severity == s).count();
    out.push_str(&format!(
        "],\"summary\":{{\"info\":{},\"warning\":{},\"error\":{}}}}}",
        count(Severity::Info),
        count(Severity::Warning),
        count(Severity::Error)
    ));
    out
}

/// Renders diagnostics as text, one finding per paragraph, with a
/// trailing per-severity summary line.
pub fn render_text(diags: &[Diagnostic]) -> String {
    if diags.is_empty() {
        return "lint: clean".to_string();
    }
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render());
        out.push('\n');
    }
    let count = |s: Severity| diags.iter().filter(|d| d.severity == s).count();
    out.push_str(&format!(
        "lint: {} error(s), {} warning(s), {} info",
        count(Severity::Error),
        count(Severity::Warning),
        count(Severity::Info)
    ));
    out
}

/// Sorts diagnostics into their canonical order (code, subject,
/// message) and drops exact duplicates.
pub fn finish(diags: &mut Vec<Diagnostic>) {
    diags.sort_by(|a, b| (&a.code, &a.subject, &a.message).cmp(&(&b.code, &b.subject, &b.message)));
    diags.dedup();
}

// ----------------------------------------------------------------------
// Structural rules: L002..L007 (pure tree/annotation walks).
// ----------------------------------------------------------------------

/// Runs the structural model rules (`L002`–`L007`).
///
/// `probabilities`/`intervals` are per-basic-event annotation slices in
/// [`FaultTree::basic_events`] order, as carried by sessions and Galileo
/// models; pass `None` when the model is unannotated.
pub fn lint_model(
    tree: &FaultTree,
    probabilities: Option<&[Option<f64>]>,
    intervals: Option<&[Option<ProbInterval>]>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    lint_gates(tree, &mut out);
    lint_duplicate_subtrees(tree, &mut out);
    lint_annotations(tree, probabilities, intervals, &mut out);
    out
}

fn lint_gates(tree: &FaultTree, out: &mut Vec<Diagnostic>) {
    for g in tree.gates() {
        let name = tree.name(g);
        let children = tree.children(g);
        let n = children.len();
        if n == 1 {
            out.push(
                Diagnostic::new(
                    "L002",
                    name,
                    format!(
                        "gate has a single child `{}` and is a pass-through",
                        tree.name(children[0])
                    ),
                )
                .suggest(format!(
                    "replace references to `{name}` with `{}` directly",
                    tree.name(children[0])
                )),
            );
        }
        // L003: duplicate children.
        let mut seen = HashMap::new();
        for &c in children {
            let count = seen.entry(c).or_insert(0usize);
            *count += 1;
            if *count == 2 {
                out.push(
                    Diagnostic::new(
                        "L003",
                        name,
                        format!("child `{}` is listed more than once", tree.name(c)),
                    )
                    .suggest(
                        "drop the repeated child; for VOT gates it silently \
                         changes the effective threshold",
                    ),
                );
            }
        }
        if let Some(GateType::Vot { k }) = tree.gate_type(g) {
            if n > 1 && k == 1 {
                out.push(
                    Diagnostic::new(
                        "L005",
                        name,
                        format!("VOT({k}/{n}) fails when any child fails"),
                    )
                    .suggest("write it as an OR gate"),
                );
            } else if n > 1 && k as usize == n {
                out.push(
                    Diagnostic::new(
                        "L005",
                        name,
                        format!("VOT({k}/{n}) fails only when all children fail"),
                    )
                    .suggest("write it as an AND gate"),
                );
            }
            // k > n and k = 0 are rejected at construction time
            // (FaultTree validation), so no rule can observe them here.
        }
    }
}

/// `L004`: bottom-up structural hashing over `(gate type, k, child
/// keys)`. Elements are keyed in post-order (children strictly before
/// parents, whatever order the front end declared them in), so each
/// element gets a small integer key and two gates share a key exactly
/// when their subtrees are structurally identical over identical
/// leaves. A gate *shared* through the DAG has one `ElementId` and is
/// keyed once — sharing is the fix, not the finding.
fn lint_duplicate_subtrees(tree: &FaultTree, out: &mut Vec<Diagnostic>) {
    let mut interned: HashMap<String, usize> = HashMap::new();
    let mut first_gate: HashMap<usize, bfl_fault_tree::ElementId> = HashMap::new();
    let mut key_of: HashMap<bfl_fault_tree::ElementId, usize> = HashMap::new();
    let mut stack: Vec<(bfl_fault_tree::ElementId, bool)> = Vec::new();
    for root in tree.iter() {
        stack.push((root, false));
        while let Some((e, expanded)) = stack.pop() {
            if key_of.contains_key(&e) {
                continue;
            }
            if !expanded {
                stack.push((e, true));
                for &c in tree.children(e) {
                    if !key_of.contains_key(&c) {
                        stack.push((c, false));
                    }
                }
                continue;
            }
            let shape = if tree.is_basic(e) {
                format!("b:{}", tree.name(e))
            } else {
                let tag = match tree.gate_type(e) {
                    Some(GateType::And) => "and".to_string(),
                    Some(GateType::Or) => "or".to_string(),
                    Some(GateType::Vot { k }) => format!("vot{k}"),
                    None => "?".to_string(),
                };
                // AND/OR/VOT are commutative: sort child keys so
                // reordered children still collide.
                let mut keys: Vec<usize> = tree.children(e).iter().map(|c| key_of[c]).collect();
                keys.sort_unstable();
                let keys: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
                format!("g:{tag}:{}", keys.join(","))
            };
            let next = interned.len();
            let key = *interned.entry(shape).or_insert(next);
            key_of.insert(e, key);
            if tree.is_basic(e) {
                continue;
            }
            match first_gate.get(&key) {
                None => {
                    first_gate.insert(key, e);
                }
                Some(&first) => out.push(
                    Diagnostic::new(
                        "L004",
                        tree.name(e),
                        format!("structurally identical to gate `{}`", tree.name(first)),
                    )
                    .suggest(format!(
                        "reuse `{}` instead of duplicating the subtree",
                        tree.name(first)
                    )),
                ),
            }
        }
    }
}

fn lint_annotations(
    tree: &FaultTree,
    probabilities: Option<&[Option<f64>]>,
    intervals: Option<&[Option<ProbInterval>]>,
    out: &mut Vec<Diagnostic>,
) {
    let basics = tree.basic_events();
    if let Some(probs) = probabilities {
        for (i, p) in probs.iter().enumerate().take(basics.len()) {
            let (p, name) = match p {
                Some(p) => (*p, tree.name(basics[i])),
                None => continue,
            };
            if p == 0.0 {
                out.push(
                    Diagnostic::new("L006", name, "probability 0: the event never fails")
                        .suggest("remove the event, or model certainty structurally"),
                );
            } else if p == 1.0 {
                out.push(
                    Diagnostic::new("L006", name, "probability 1: the event has already failed")
                        .suggest("remove the event, or model certainty structurally"),
                );
            }
        }
    }
    if let Some(ivs) = intervals {
        for (i, iv) in ivs.iter().enumerate().take(basics.len()) {
            if let Some(iv) = iv {
                if iv.lo == iv.hi {
                    out.push(
                        Diagnostic::new(
                            "L007",
                            tree.name(basics[i]),
                            format!("interval [{}, {}] carries no uncertainty", iv.lo, iv.hi),
                        )
                        .suggest(format!("use the point probability {}", iv.lo)),
                    );
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Semantic rules: L000..L001, L008..L013 (through the BDD pipeline).
// ----------------------------------------------------------------------

/// `L001`: basic events absent from the BDD support of the top event —
/// reachable in the DAG (validation guarantees that) yet *absorbed*
/// semantically, e.g. `y` in `top = x ∧ (x ∨ y)`.
pub fn lint_support(mc: &mut ModelChecker) -> Vec<Diagnostic> {
    let top = Formula::Atom(mc.tree().name(mc.tree().top()).to_string());
    let mut out = Vec::new();
    if let Ok(f) = mc.formula_bdd(&top) {
        let support = mc.support_basic_names(f);
        let tree = mc.tree();
        for &b in tree.basic_events() {
            let name = tree.name(b);
            if !support.iter().any(|s| s == name) {
                out.push(
                    Diagnostic::new(
                        "L001",
                        name,
                        "cannot influence the top event (absorbed by the gate structure)",
                    )
                    .suggest("remove the event or rewire the gates that absorb it"),
                );
            }
        }
    }
    out
}

/// Runs the semantic rules over every item of a spec (`L000`,
/// `L008`–`L013`).
pub fn lint_spec_items(mc: &mut ModelChecker, spec: &Spec) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // L012: shadowed labels.
    let mut labels: HashMap<&str, usize> = HashMap::new();
    for item in &spec.items {
        if let Some(label) = &item.label {
            let count = labels.entry(label.as_str()).or_insert(0);
            *count += 1;
            if *count == 2 {
                out.push(
                    Diagnostic::new(
                        "L012",
                        label.clone(),
                        "label is used by more than one spec item; later results \
                         shadow earlier ones in reports",
                    )
                    .suggest("give each item a unique label"),
                );
            }
        }
    }
    for item in &spec.items {
        let subject = item.label.clone().unwrap_or_else(|| item.source.clone());
        match &item.kind {
            SpecKind::Query(q) => lint_query(mc, &subject, q, &mut out),
            SpecKind::Vector { formula, .. } => {
                lint_formula(mc, &subject, formula, &mut out);
            }
        }
    }
    out
}

/// Semantic rules for one query (`L000`, `L008`–`L011`, `L013`).
pub fn lint_query(mc: &mut ModelChecker, subject: &str, q: &Query, out: &mut Vec<Diagnostic>) {
    match q {
        Query::Exists(f) | Query::Forall(f) | Query::Importance(f) => {
            lint_formula(mc, subject, f, out);
        }
        Query::Idp(a, b) => {
            lint_formula(mc, subject, a, out);
            lint_formula(mc, subject, b, out);
        }
        Query::Sup(e) => {
            // Compiles iff the element exists; surface that as L000 too.
            if let Err(e) = mc.formula_bdd(&Formula::Atom(e.clone())) {
                out.push(Diagnostic::new("L000", subject, e.to_string()));
            }
        }
        Query::Prob { formula, given, .. } => {
            lint_formula(mc, subject, formula, out);
            if let Some(psi) = given {
                match mc.formula_bdd(psi) {
                    Err(e) => out.push(Diagnostic::new("L000", subject, e.to_string())),
                    Ok(b) if b.is_false() => out.push(
                        Diagnostic::new(
                            "L013",
                            subject,
                            format!(
                                "conditioning formula `{psi}` is unsatisfiable: \
                                 P(ϕ | ψ) is undefined"
                            ),
                        )
                        .suggest("fix ψ — no status vector satisfies it"),
                    ),
                    Ok(b) if b.is_true() => out.push(
                        Diagnostic::new(
                            "L008",
                            subject,
                            format!("conditioning formula `{psi}` always holds"),
                        )
                        .suggest("drop the condition: P(ϕ | ⊤) = P(ϕ)"),
                    ),
                    Ok(_) => {}
                }
            }
        }
        Query::Cause {
            formula, evidence, ..
        } => {
            lint_formula(mc, subject, formula, out);
            if let Ok(f) = mc.formula_bdd(formula) {
                let support = mc.support_basic_names(f);
                let mut bound: HashMap<&str, bool> = HashMap::new();
                for (name, value) in evidence {
                    match bound.get(name.as_str()) {
                        Some(&prev) if prev != *value => out.push(
                            Diagnostic::new(
                                "L010",
                                subject,
                                format!(
                                    "evidence binds `{name}` to both values; the first \
                                     binding wins and the second is dead"
                                ),
                            )
                            .suggest("remove the contradictory binding"),
                        ),
                        Some(_) => {}
                        None => {
                            bound.insert(name.as_str(), *value);
                            if !support.iter().any(|s| s == name) {
                                out.push(
                                    Diagnostic::new(
                                        "L010",
                                        subject,
                                        format!(
                                            "evidence binds `{name}`, which the formula \
                                             does not depend on"
                                        ),
                                    )
                                    .suggest("drop the redundant binding"),
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

/// `L000`/`L008`/`L009` on a formula, plus `L010`/`L011` on every
/// evidence annotation inside it.
pub fn lint_formula(
    mc: &mut ModelChecker,
    subject: &str,
    phi: &Formula,
    out: &mut Vec<Diagnostic>,
) {
    match mc.formula_bdd(phi) {
        Err(e) => {
            out.push(Diagnostic::new("L000", subject, e.to_string()));
            return;
        }
        Ok(b) if b.is_true() && !matches!(phi, Formula::Const(_)) => out.push(
            Diagnostic::new(
                "L008",
                subject,
                format!("`{phi}` holds for every status vector"),
            )
            .suggest("the check is vacuous — simplify or fix the formula"),
        ),
        Ok(b) if b.is_false() && !matches!(phi, Formula::Const(_)) => out.push(
            Diagnostic::new(
                "L009",
                subject,
                format!("`{phi}` holds for no status vector"),
            )
            .suggest("the check is vacuous — simplify or fix the formula"),
        ),
        Ok(_) => {}
    }
    let mut evidence = Vec::new();
    collect_evidence(phi, &mut evidence);
    for (inner, element, value) in evidence {
        let f = match mc.formula_bdd(inner) {
            Ok(f) => f,
            Err(_) => continue, // already reported as L000 above
        };
        let support = mc.support_basic_names(f);
        if !support.iter().any(|s| s == element) {
            out.push(
                Diagnostic::new(
                    "L010",
                    subject,
                    format!(
                        "evidence `[{element} -> {}]` binds an event `{inner}` does not depend on",
                        u32::from(value)
                    ),
                )
                .suggest("drop the redundant evidence"),
            );
            continue;
        }
        // Support membership implies `element` is a basic event known to
        // the tree (gates never enter a support set).
        let (id, tree) = match mc.tree().element(element) {
            Some(id) => (id, mc.tree()),
            None => continue,
        };
        let bi = match tree.basic_index(id) {
            Some(bi) => bi,
            None => continue,
        };
        let var = mc.var_of_basic(bi);
        let restricted = mc
            .tree_bdd_mut()
            .manager_mut()
            .restrict_many(f, &[(var, value)]);
        if restricted.is_terminal() && !f.is_terminal() {
            out.push(
                Diagnostic::new(
                    "L011",
                    subject,
                    format!(
                        "evidence `[{element} -> {}]` makes `{inner}` constantly {}",
                        u32::from(value),
                        if restricted.is_true() {
                            "true"
                        } else {
                            "false"
                        }
                    ),
                )
                .suggest("the surrounding check no longer depends on the status vector"),
            );
        }
    }
}

/// Collects every `(inner, element, value)` evidence annotation in `phi`,
/// outermost first.
fn collect_evidence<'a>(phi: &'a Formula, out: &mut Vec<(&'a Formula, &'a str, bool)>) {
    match phi {
        Formula::Const(_) | Formula::Atom(_) => {}
        Formula::Not(a) | Formula::Mcs(a) | Formula::Mps(a) => collect_evidence(a, out),
        Formula::And(a, b)
        | Formula::Or(a, b)
        | Formula::Implies(a, b)
        | Formula::Iff(a, b)
        | Formula::Neq(a, b) => {
            collect_evidence(a, out);
            collect_evidence(b, out);
        }
        Formula::Evidence {
            inner,
            element,
            value,
        } => {
            out.push((inner, element, *value));
            collect_evidence(inner, out);
        }
        Formula::Vot { operands, .. } => {
            for o in operands {
                collect_evidence(o, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_unique_and_self_describing() {
        for w in RULES.windows(2) {
            assert!(w[0].code < w[1].code, "{} vs {}", w[0].code, w[1].code);
        }
        for r in RULES {
            assert!(r.code.starts_with('L') && r.code.len() == 4);
            assert!(!r.name.is_empty() && !r.summary.is_empty());
            assert_eq!(rule(r.code), Some(r));
        }
        assert!(rule("L999").is_none());
        assert!(RULES.len() >= 12, "the registry must stay substantial");
    }

    #[test]
    fn severity_round_trips_and_orders() {
        for s in [Severity::Info, Severity::Warning, Severity::Error] {
            assert_eq!(Severity::parse(s.as_str()), Some(s));
        }
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert!(Severity::parse("fatal").is_none());
    }

    #[test]
    fn diagnostics_render_and_serialise_deterministically() {
        let mut diags = vec![
            Diagnostic::new("L006", "pump", "probability 1"),
            Diagnostic::new("L002", "g1", "single child").suggest("inline it"),
            Diagnostic::new("L002", "g1", "single child").suggest("inline it"),
        ];
        finish(&mut diags);
        assert_eq!(diags.len(), 2, "duplicates collapse");
        assert_eq!(diags[0].code, "L002");
        let text = render_text(&diags);
        assert!(text.contains("warning[L002] g1: single child"), "{text}");
        assert!(text.contains("help: inline it"), "{text}");
        assert!(text.ends_with("0 error(s), 2 warning(s), 0 info"), "{text}");
        let json = to_json(&diags);
        assert!(
            json.starts_with("{\"diagnostics\":[{\"code\":\"L002\""),
            "{json}"
        );
        assert!(
            json.ends_with("\"summary\":{\"info\":0,\"warning\":2,\"error\":0}}"),
            "{json}"
        );
        assert!(json.contains("\"suggestion\":\"inline it\""));
        assert!(json.contains("\"location\":null"));
        assert_eq!(max_severity(&diags), Some(Severity::Warning));
        assert_eq!(max_severity(&[]), None);
        assert_eq!(render_text(&[]), "lint: clean");
    }
}
