//! Actual causality over fault trees — the third query layer.
//!
//! BFL answers *whether* an observation leads to failure; this module
//! answers *which failed events actually caused it*, in the but-for /
//! counterfactual reading of "Actual causality in fault trees" (Caltais,
//! Lopuhaä-Zwakenberg & Stoelinga). Given an observation `b` — evidence
//! bindings with every unbound event operational — under which `ϕ` holds:
//!
//! * a **but-for cause** is a set `S ⊆ failed(b)` whose joint repair
//!   flips the verdict: `b[S↦0] ⊭ ϕ`;
//! * an **actual cause** is a subset-minimal but-for cause.
//!
//! The engine computes *all* minimal causes in three BDD operations,
//! without enumerating candidate sets:
//!
//! 1. cofactor the compiled `B_T(ϕ)` by pinning every non-failed event
//!    operational (`restrict_many`), leaving a diagram `g` over the
//!    failed events only;
//! 2. take the **maximal zeros** of `g` with the same primed-pair
//!    strict-superset construction that implements `MPS(ϕ)`: a vector
//!    `x` is a maximal zero exactly when the repair set
//!    `S = failed(b) ∖ x` is a minimal but-for cause (repairing *more*
//!    events means a *smaller* surviving set, so subset-minimality of
//!    `S` is superset-maximality of `x`, for non-monotone `ϕ` too);
//! 3. model-count the result for the exact number of causes, and read
//!    witnesses off its satisfying vectors, capped by the enumeration
//!    bound.
//!
//! Events irrelevant to the repaired verdict are forced *failed* by
//! maximality, so each cause automatically contains only events that
//! matter. Witnesses are repaired observations `b[S↦0]`, rendered like
//! the Definition-7 counterexamples of
//! [`counterexample`](mod@crate::counterexample).
//!
//! The brute-force ground truth lives in
//! [`semantics::actual_causes_naive`](crate::semantics::actual_causes_naive);
//! the differential suite checks the two agree on seeded random trees.

use bfl_bdd::{Bdd, Var};
use bfl_fault_tree::analysis::mps_bdd_paper;
use bfl_fault_tree::StatusVector;

use crate::ast::Formula;
use crate::checker::ModelChecker;
use crate::error::BflError;
use crate::semantics::observation_vector;

/// One minimal actual cause of a failing observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActualCause {
    /// Names of the events in the cause, sorted.
    pub events: Vec<String>,
    /// The Definition-7-style witness: the repaired observation
    /// `b[S↦0]`, under which `ϕ` no longer holds.
    pub witness: StatusVector,
}

/// The verdict of a `cause(ϕ, evidence)` query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CauseReport {
    /// The observation vector induced by the evidence (unbound events
    /// operational).
    pub observation: StatusVector,
    /// Whether the observation is failing (`b ⊨ ϕ`). When `false` the
    /// causality question is moot and no causes are reported.
    pub failing: bool,
    /// The minimal actual causes, shortest first then lexicographic,
    /// capped by the enumeration bound.
    pub causes: Vec<ActualCause>,
    /// The exact number of minimal actual causes (BDD model count — not
    /// capped by the bound).
    pub total: u128,
    /// `true` when `causes` omits some of the `total` (bound reached).
    pub truncated: bool,
}

impl CauseReport {
    /// Whether the causality judgement holds: the observation is failing
    /// *and* at least one actual cause exists. (A failing observation of
    /// a non-monotone `ϕ` can have no cause at all — no repair of failed
    /// events flips the verdict.)
    pub fn holds(&self) -> bool {
        self.failing && self.total > 0
    }
}

/// Computes the minimal actual causes of `ϕ` under `evidence`, reporting
/// at most `limit` witnesses (the exact count is always reported).
///
/// # Errors
///
/// * [`BflError::UnknownElement`] if an atom or bound name is not in the
///   tree;
/// * [`BflError::EvidenceOnGate`] if a binding targets an intermediate
///   event.
pub fn actual_causes(
    mc: &mut ModelChecker,
    phi: &Formula,
    evidence: &[(String, bool)],
    limit: usize,
) -> Result<CauseReport, BflError> {
    let b = observation_vector(mc.tree(), evidence)?;
    let root = mc.formula_bdd(phi)?;
    Ok(causes_from_bdd(mc, root, &b, limit))
}

/// The handle-level core shared with the prepared-query evaluator: causes
/// of an already-compiled diagram under an already-resolved observation.
///
/// # Panics
///
/// Panics if `observation` does not cover the tree's basic events.
pub(crate) fn causes_from_bdd(
    mc: &mut ModelChecker,
    root: Bdd,
    observation: &StatusVector,
    limit: usize,
) -> CauseReport {
    let tree = mc.tree_arc();
    let n = tree.num_basic_events();
    assert_eq!(observation.len(), n, "vector length");
    let failing = {
        let basic_of_position = mc.basic_of_position();
        mc.manager().eval(root, |v| {
            debug_assert_eq!(v.index() % 2, 0, "primed variable in query BDD");
            observation.get(basic_of_position[(v.index() / 2) as usize])
        })
    };
    if !failing {
        return CauseReport {
            observation: observation.clone(),
            failing: false,
            causes: Vec::new(),
            total: 0,
            truncated: false,
        };
    }
    // Pin every non-failed event operational; `g` then depends only on
    // the failed events, and g(x) = ϕ(b[failed(b) ∖ x ↦ 0]).
    let pins: Vec<(Var, bool)> = (0..n)
        .filter(|&bi| !observation.get(bi))
        .map(|bi| (mc.var_of_basic(bi), false))
        .collect();
    let tb = mc.tree_bdd_mut();
    let g = tb.manager_mut().restrict_many(root, &pins);
    // Maximal zeros of g = minimal but-for causes. The all-ones vector is
    // never among them (g(1⃗) is the failing verdict itself), so S = ∅ is
    // excluded for free.
    let mps = mps_bdd_paper(tb, g);
    let universe = tb.unprimed_vars();
    let total = mc.manager().sat_count_over(mps, &universe);
    let mut causes: Vec<ActualCause> = mc
        .vectors_of_bdd(mps, limit)
        .iter()
        .map(|x| {
            let mut witness = observation.clone();
            let mut events = Vec::new();
            for bi in observation.failed_indices() {
                if !x.get(bi) {
                    witness.set(bi, false);
                    events.push(tree.name(tree.basic_events()[bi]).to_string());
                }
            }
            events.sort();
            ActualCause { events, witness }
        })
        .collect();
    causes.sort_by(|a, b| {
        a.events
            .len()
            .cmp(&b.events.len())
            .then_with(|| a.events.cmp(&b.events))
    });
    let truncated = total > causes.len() as u128;
    CauseReport {
        observation: observation.clone(),
        failing: true,
        causes,
        total,
        truncated,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::semantics;
    use bfl_fault_tree::corpus;

    /// Sorted name sets of the naive reference, for comparison.
    fn naive_sets(
        tree: &bfl_fault_tree::FaultTree,
        phi: &Formula,
        evidence: &[(String, bool)],
    ) -> Vec<Vec<String>> {
        let mut sets: Vec<Vec<String>> = semantics::actual_causes_naive(tree, phi, evidence)
            .unwrap()
            .into_iter()
            .map(|s| {
                let mut names: Vec<String> = s
                    .into_iter()
                    .map(|bi| tree.name(tree.basic_events()[bi]).to_string())
                    .collect();
                names.sort();
                names
            })
            .collect();
        sets.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        sets
    }

    fn bdd_sets(report: &CauseReport) -> Vec<Vec<String>> {
        report.causes.iter().map(|c| c.events.clone()).collect()
    }

    #[test]
    fn matches_naive_on_fig1_all_observations() {
        let tree = corpus::fig1();
        let names: Vec<String> = tree
            .basic_events()
            .iter()
            .map(|&e| tree.name(e).to_string())
            .collect();
        let mut mc = ModelChecker::new(&tree);
        let formulas = [
            Formula::atom("CP/R"),
            Formula::atom("CP"),
            Formula::atom("CP").or(Formula::atom("CR")),
            Formula::atom("IW").neq(Formula::atom("H3")),
            Formula::atom("CP/R").not(),
            Formula::atom("CP/R").with_evidence("H2", true),
        ];
        for phi in &formulas {
            for bits in 0u32..(1 << names.len()) {
                let evidence: Vec<(String, bool)> = names
                    .iter()
                    .enumerate()
                    .map(|(i, n)| (n.clone(), (bits >> i) & 1 == 1))
                    .collect();
                let report = actual_causes(&mut mc, phi, &evidence, usize::MAX).unwrap();
                assert_eq!(
                    bdd_sets(&report),
                    naive_sets(&tree, phi, &evidence),
                    "{phi} under {evidence:?}"
                );
                assert_eq!(report.total, report.causes.len() as u128);
                assert!(!report.truncated);
            }
        }
    }

    #[test]
    fn witnesses_flip_the_verdict() {
        let tree = corpus::covid();
        let mut mc = ModelChecker::new(&tree);
        let phi = Formula::atom("IWoS");
        let evidence: Vec<(String, bool)> = ["IW", "H3", "PP", "H1", "VW"]
            .iter()
            .map(|e| (e.to_string(), true))
            .collect();
        let report = actual_causes(&mut mc, &phi, &evidence, usize::MAX).unwrap();
        assert!(report.failing);
        assert!(report.holds());
        for cause in &report.causes {
            assert!(!cause.events.is_empty());
            // The witness is the repaired observation and no longer fails.
            assert!(!semantics::eval(&tree, &cause.witness, &phi).unwrap());
            // Repairing any proper subset keeps the failure: minimality.
            for skip in &cause.events {
                let mut partial = report.observation.clone();
                for name in cause.events.iter().filter(|n| n != &skip) {
                    let e = tree.element(name).unwrap();
                    partial.set(tree.basic_index(e).unwrap(), false);
                }
                assert!(semantics::eval(&tree, &partial, &phi).unwrap());
            }
        }
    }

    #[test]
    fn truncation_reports_exact_total() {
        let tree = corpus::fig1();
        let mut mc = ModelChecker::new(&tree);
        let phi = Formula::atom("CP/R");
        let evidence: Vec<(String, bool)> = ["IW", "H3", "IT", "H2"]
            .iter()
            .map(|e| (e.to_string(), true))
            .collect();
        let full = actual_causes(&mut mc, &phi, &evidence, usize::MAX).unwrap();
        assert_eq!(full.total, 4);
        let capped = actual_causes(&mut mc, &phi, &evidence, 2).unwrap();
        assert_eq!(capped.total, 4);
        assert_eq!(capped.causes.len(), 2);
        assert!(capped.truncated);
        assert!(capped.holds());
    }

    #[test]
    fn non_failing_observation_is_moot() {
        let tree = corpus::fig1();
        let mut mc = ModelChecker::new(&tree);
        let report = actual_causes(
            &mut mc,
            &Formula::atom("CP/R"),
            &[("IW".to_string(), true)],
            usize::MAX,
        )
        .unwrap();
        assert!(!report.failing);
        assert!(!report.holds());
        assert_eq!(report.total, 0);
        assert!(report.causes.is_empty());
    }

    #[test]
    fn failing_without_causes_for_non_monotone_formula() {
        let tree = corpus::fig1();
        let mut mc = ModelChecker::new(&tree);
        // ¬IW holds with everything operational: nothing failed, nothing
        // to repair.
        let report = actual_causes(&mut mc, &Formula::atom("IW").not(), &[], usize::MAX).unwrap();
        assert!(report.failing);
        assert_eq!(report.total, 0);
        assert!(!report.holds());
    }

    #[test]
    fn unknown_names_are_rejected() {
        let tree = corpus::fig1();
        let mut mc = ModelChecker::new(&tree);
        assert_eq!(
            actual_causes(
                &mut mc,
                &Formula::atom("CP/R"),
                &[("ghost".to_string(), true)],
                usize::MAX
            )
            .unwrap_err(),
            BflError::UnknownElement("ghost".into())
        );
        assert_eq!(
            actual_causes(
                &mut mc,
                &Formula::atom("CP/R"),
                &[("CP".to_string(), true)],
                usize::MAX
            )
            .unwrap_err(),
            BflError::EvidenceOnGate("CP".into())
        );
    }
}
