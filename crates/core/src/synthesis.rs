//! Fault-tree synthesis — a prototype for the problem discussed in
//! Section V-E: given a status vector `b` and a formula `χ`, find a fault
//! tree `T` such that `b, T ⊨ χ`.
//!
//! The paper only sketches this direction ("more complex procedures — out
//! of the scope of this paper — can infer the structure of a FT from given
//! vector(s)", citing evolutionary approaches). We implement an honest
//! baseline in that spirit: seeded random search over well-formed
//! candidate trees followed by gate-type hill-climbing mutations. It is
//! complete for none but useful for small specifications, and it doubles
//! as a stress-test for the model checker.

use bfl_fault_tree::rng::Prng;
use bfl_fault_tree::{FaultTree, FaultTreeBuilder, GateType, StatusVector};

use crate::ast::Formula;
use crate::checker::ModelChecker;
use crate::error::BflError;

/// Configuration for [`synthesize`].
#[derive(Debug, Clone)]
pub struct SynthesisConfig {
    /// Gate names available to the candidate trees (the formula may
    /// reference them); `gates[0]` is always the top element.
    pub gate_names: Vec<String>,
    /// Number of random restarts.
    pub restarts: usize,
    /// Hill-climbing mutations per restart.
    pub mutations: usize,
    /// RNG seed (deterministic search).
    pub seed: u64,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig {
            gate_names: vec!["top".to_string(), "g1".to_string(), "g2".to_string()],
            restarts: 64,
            mutations: 64,
            seed: 0x5EED,
        }
    }
}

/// Searches for a fault tree over the given basic events satisfying
/// `b, T ⊨ χ`.
///
/// The returned tree (if any) uses exactly `basic_events` as its leaves
/// and `config.gate_names` as its gates, with `config.gate_names[0]` as
/// the top element. Returns `None` when the search budget is exhausted
/// without a witness — which does **not** prove unsatisfiability.
///
/// # Errors
///
/// Propagates checker errors other than unknown elements (candidate trees
/// legitimately lack elements the formula mentions; such candidates are
/// skipped).
///
/// # Panics
///
/// Panics if `basic_events` or `config.gate_names` is empty, or if `b`
/// does not have one bit per basic event.
///
/// # Example
///
/// ```
/// use bfl_core::{synthesis::{synthesize, SynthesisConfig}, Formula};
/// use bfl_fault_tree::StatusVector;
///
/// # fn main() -> Result<(), bfl_core::BflError> {
/// // Find a tree for which (1,0) is a minimal cut set of the top gate.
/// let b = StatusVector::from_bits([true, false]);
/// let phi = Formula::atom("top").mcs();
/// let tree = synthesize(&["a", "b"], &b, &phi, &SynthesisConfig::default())?
///     .expect("synthesis succeeds");
/// assert_eq!(tree.name(tree.top()), "top");
/// # Ok(())
/// # }
/// ```
pub fn synthesize(
    basic_events: &[&str],
    b: &StatusVector,
    phi: &Formula,
    config: &SynthesisConfig,
) -> Result<Option<FaultTree>, BflError> {
    assert!(!basic_events.is_empty(), "need at least one basic event");
    assert!(!config.gate_names.is_empty(), "need at least one gate name");
    assert_eq!(b.len(), basic_events.len(), "vector length mismatch");
    let mut rng = Prng::seed_from_u64(config.seed);
    for _ in 0..config.restarts {
        let mut candidate = random_candidate(basic_events, &config.gate_names, &mut rng);
        for _ in 0..config.mutations {
            match satisfies(&candidate.tree, b, phi) {
                Ok(true) => return Ok(Some(candidate.tree)),
                Ok(false) => {}
                Err(BflError::UnknownElement(_)) => break, // formula names a missing gate
                Err(e) => return Err(e),
            }
            candidate.mutate(&mut rng);
        }
    }
    Ok(None)
}

fn satisfies(tree: &FaultTree, b: &StatusVector, phi: &Formula) -> Result<bool, BflError> {
    let mut mc = ModelChecker::new(tree);
    mc.holds(b, phi)
}

/// A candidate: gate structure over a fixed skeleton (gate `i` may use
/// gates `> i` and any basic event as children).
struct Candidate {
    basic: Vec<String>,
    gates: Vec<String>,
    gate_types: Vec<GateType>,
    children: Vec<Vec<String>>,
    tree: FaultTree,
}

impl Candidate {
    fn rebuild(&mut self) {
        let mut builder = FaultTreeBuilder::new();
        builder
            .basic_events(self.basic.iter().map(String::as_str))
            .unwrap_or_else(|_| unreachable!("fresh names"));
        for (i, g) in self.gates.iter().enumerate() {
            builder
                .gate(
                    g,
                    self.gate_types[i],
                    self.children[i].iter().map(String::as_str),
                )
                .unwrap_or_else(|_| unreachable!("fresh name"));
        }
        self.tree = builder
            .build(&self.gates[0])
            .unwrap_or_else(|_| unreachable!("candidate is well-formed"));
    }

    fn mutate(&mut self, rng: &mut Prng) {
        // Flip a random gate's type, or rewire one child.
        let gi = rng.gen_range(0..self.gates.len());
        if rng.gen_bool(0.5) {
            self.gate_types[gi] = match self.gate_types[gi] {
                GateType::And => GateType::Or,
                GateType::Or => GateType::And,
                GateType::Vot { .. } => GateType::And,
            };
        } else {
            let pool = self.child_pool(gi);
            let ci = rng.gen_range(0..self.children[gi].len());
            let pick = pool[rng.gen_range(0..pool.len())].clone();
            if !self.children[gi].contains(&pick) {
                self.children[gi][ci] = pick;
            }
        }
        self.ensure_reachable();
        self.rebuild();
    }

    /// Valid children for gate `gi`: strictly later gates plus every basic
    /// event (guarantees acyclicity).
    fn child_pool(&self, gi: usize) -> Vec<String> {
        self.gates[gi + 1..]
            .iter()
            .chain(self.basic.iter())
            .cloned()
            .collect()
    }

    /// Appends unreached elements as extra children so validation passes.
    fn ensure_reachable(&mut self) {
        loop {
            let mut reached: Vec<String> = vec![self.gates[0].clone()];
            let mut stack = vec![0usize];
            let mut seen = vec![false; self.gates.len()];
            seen[0] = true;
            let mut reached_basic: Vec<&String> = Vec::new();
            while let Some(i) = stack.pop() {
                for c in &self.children[i] {
                    if let Some(j) = self.gates.iter().position(|g| g == c) {
                        if !seen[j] {
                            seen[j] = true;
                            reached.push(c.clone());
                            stack.push(j);
                        }
                    } else if !reached_basic.contains(&c) {
                        reached_basic.push(c);
                    }
                }
            }
            let missing_gate = (0..self.gates.len()).find(|&j| !seen[j]);
            let missing_basic = self
                .basic
                .iter()
                .find(|b| !reached_basic.contains(b))
                .cloned();
            match (missing_gate, missing_basic) {
                (Some(j), _) => {
                    // Attach gate j under an earlier reached gate.
                    let host = (0..j).rev().find(|&i| seen[i]).unwrap_or(0);
                    let name = self.gates[j].clone();
                    self.children[host].push(name);
                }
                (None, Some(be)) => {
                    let host = self.gates.len() - 1;
                    self.children[host].push(be);
                }
                (None, None) => return,
            }
        }
    }
}

fn random_candidate(basic: &[&str], gates: &[String], rng: &mut Prng) -> Candidate {
    let basic: Vec<String> = basic.iter().map(|s| s.to_string()).collect();
    let gates: Vec<String> = gates.to_vec();
    let mut gate_types = Vec::with_capacity(gates.len());
    let mut children: Vec<Vec<String>> = Vec::with_capacity(gates.len());
    for i in 0..gates.len() {
        gate_types.push(if rng.gen_bool(0.5) {
            GateType::And
        } else {
            GateType::Or
        });
        let pool: Vec<String> = gates[i + 1..].iter().chain(basic.iter()).cloned().collect();
        let arity = rng.gen_range(1..=pool.len().min(3));
        let mut picked = Vec::new();
        while picked.len() < arity {
            let p = pool[rng.gen_range(0..pool.len())].clone();
            if !picked.contains(&p) {
                picked.push(p);
            }
        }
        children.push(picked);
    }
    let mut c = Candidate {
        basic,
        gates,
        gate_types,
        children,
        tree: bfl_fault_tree::corpus::or2(), // placeholder, replaced below
    };
    c.ensure_reachable();
    c.rebuild();
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesizes_mcs_witness() {
        let b = StatusVector::from_bits([true, true, false]);
        let phi = Formula::atom("top").mcs();
        let tree = synthesize(&["a", "b", "c"], &b, &phi, &SynthesisConfig::default())
            .unwrap()
            .expect("found");
        let mut mc = ModelChecker::new(&tree);
        assert!(mc.holds(&b, &phi).unwrap());
    }

    #[test]
    fn synthesizes_implication_property() {
        // Find a tree in which the failure of `a` alone fails the top.
        let b = StatusVector::from_bits([true, false]);
        let phi = Formula::atom("a").implies(Formula::atom("top"));
        let tree = synthesize(&["a", "b"], &b, &phi, &SynthesisConfig::default())
            .unwrap()
            .expect("found");
        let mut mc = ModelChecker::new(&tree);
        assert!(mc.holds(&b, &phi).unwrap());
    }

    #[test]
    fn unsatisfiable_spec_returns_none() {
        let b = StatusVector::from_bits([true]);
        let phi = Formula::atom("top").and(Formula::atom("top").not());
        let cfg = SynthesisConfig {
            restarts: 8,
            mutations: 8,
            ..Default::default()
        };
        assert!(synthesize(&["a"], &b, &phi, &cfg).unwrap().is_none());
    }

    #[test]
    fn search_is_deterministic() {
        let b = StatusVector::from_bits([true, false]);
        let phi = Formula::atom("top").mcs();
        let cfg = SynthesisConfig::default();
        let t1 = synthesize(&["a", "b"], &b, &phi, &cfg).unwrap().unwrap();
        let t2 = synthesize(&["a", "b"], &b, &phi, &cfg).unwrap().unwrap();
        let shape = |t: &FaultTree| {
            t.iter()
                .map(|e| (t.name(e).to_string(), t.children(e).len()))
                .collect::<Vec<_>>()
        };
        assert_eq!(shape(&t1), shape(&t2));
    }
}
