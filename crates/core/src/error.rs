//! Error type shared by the evaluator and model checker.

use std::error::Error;
use std::fmt;

/// Errors raised when interpreting a BFL formula against a fault tree.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BflError {
    /// The formula mentions an element the tree does not contain.
    UnknownElement(String),
    /// Evidence (`ϕ[e↦v]`) targets an intermediate event; the semantics of
    /// Section III-B defines evidence on status vectors, i.e. on basic
    /// events only.
    EvidenceOnGate(String),
    /// A problem too large for the exhaustive reference evaluator.
    TooLarge {
        /// Number of basic events requested.
        actual: usize,
        /// The evaluator's limit.
        limit: usize,
    },
    /// A probabilistic query was issued against a session whose model
    /// lacks `prob=` annotations for the listed basic events.
    MissingProbabilities {
        /// Basic events without a probability annotation, in basic-index
        /// order.
        events: Vec<String>,
    },
    /// A probability vector does not fit the tree (wrong length, or a
    /// value outside `[0, 1]` / not finite). Replaces the panics the
    /// quantitative layer used to raise on malformed input.
    InvalidProbability {
        /// What was wrong, naming the offending event where possible.
        reason: String,
    },
    /// A probability bound `p` of a threshold judgement `P(ϕ) ▷◁ p` is
    /// outside `[0, 1]` or not finite.
    InvalidBound {
        /// The offending bound, rendered.
        bound: String,
    },
    /// A quantitative ratio is undefined because its denominator is zero
    /// (or too small to divide by safely): importance measures of an
    /// almost-surely-false formula, for example.
    DivisionByZero {
        /// The computation whose denominator vanished.
        context: String,
    },
    /// A probability was requested of a query shape that has none (e.g.
    /// `IDP`/`SUP`, which compare supports rather than describe an
    /// event).
    UnsupportedProbability {
        /// Concrete syntax of the offending query.
        query: String,
    },
    /// An exact (point) probability evaluation was requested against a
    /// model whose listed basic events carry **interval** annotations
    /// (`prob=lo..hi`). Exact quantities — including the importance
    /// suite — are undefined under interval uncertainty; re-run with
    /// `method=interval` or replace the intervals with points.
    IntervalProbabilities {
        /// Basic events annotated with an interval, in basic-index
        /// order.
        events: Vec<String>,
    },
    /// The requested evaluation [`Method`](crate::uncertainty::Method)
    /// cannot answer this query shape (e.g. Monte Carlo estimation of a
    /// formula containing `MCS`/`MPS`, or a non-exact importance
    /// ranking).
    UnsupportedMethod {
        /// The offending method, rendered (`exact`, `interval`, `mc`).
        method: String,
        /// Why the method does not apply.
        context: String,
    },
    /// A shape-specific prepared-query entry point (e.g.
    /// [`cause`](crate::plan::PreparedQuery::cause)) was called on a plan
    /// compiled from a query of a different shape.
    PlanShapeMismatch {
        /// The shape the entry point expects (`cause`).
        expected: &'static str,
        /// Concrete syntax of the offending query.
        query: String,
    },
    /// An engine invariant was violated (a worker thread died without
    /// delivering its result, a poisoned lock left shared state
    /// unreadable). Replaces the `expect`/panic paths the sweep
    /// machinery used to take: callers get a structured error instead of
    /// a crashed process.
    Internal {
        /// What went wrong, for the log line.
        context: String,
    },
}

impl fmt::Display for BflError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BflError::UnknownElement(n) => write!(f, "unknown fault tree element `{n}`"),
            BflError::EvidenceOnGate(n) => write!(
                f,
                "evidence on `{n}` is invalid: only basic events can be set in a status vector"
            ),
            BflError::TooLarge { actual, limit } => write!(
                f,
                "reference evaluator limited to {limit} basic events, tree has {actual}"
            ),
            BflError::MissingProbabilities { events } => {
                write!(f, "missing prob= annotations for: {}", events.join(", "))
            }
            BflError::InvalidProbability { reason } => {
                write!(f, "invalid probability vector: {reason}")
            }
            BflError::InvalidBound { bound } => {
                write!(f, "probability bound {bound} outside [0, 1]")
            }
            BflError::DivisionByZero { context } => {
                write!(f, "division by zero: {context}")
            }
            BflError::UnsupportedProbability { query } => {
                write!(
                    f,
                    "`{query}` has no probability (only formula-shaped queries do)"
                )
            }
            BflError::IntervalProbabilities { events } => {
                write!(
                    f,
                    "exact probabilities undefined: interval prob= annotations on: {}",
                    events.join(", ")
                )
            }
            BflError::UnsupportedMethod { method, context } => {
                write!(f, "method `{method}` cannot answer this query: {context}")
            }
            BflError::PlanShapeMismatch { expected, query } => {
                write!(f, "`{query}` is not a `{expected}` plan")
            }
            BflError::Internal { context } => {
                write!(f, "internal engine error: {context}")
            }
        }
    }
}

impl Error for BflError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(BflError::UnknownElement("x".into())
            .to_string()
            .contains("`x`"));
        assert!(BflError::EvidenceOnGate("g".into())
            .to_string()
            .contains("basic events"));
        let e = BflError::TooLarge {
            actual: 30,
            limit: 20,
        };
        assert!(e.to_string().contains("30"));
        assert!(BflError::InvalidProbability {
            reason: "`x` is NaN".into()
        }
        .to_string()
        .contains("NaN"));
        assert!(BflError::InvalidBound {
            bound: "1.5".into()
        }
        .to_string()
        .contains("[0, 1]"));
        assert!(BflError::DivisionByZero {
            context: "P(phi) = 0".into()
        }
        .to_string()
        .contains("zero"));
        assert!(BflError::UnsupportedProbability {
            query: "SUP(PP)".into()
        }
        .to_string()
        .contains("SUP(PP)"));
        assert!(BflError::Internal {
            context: "sweep worker died".into()
        }
        .to_string()
        .contains("sweep worker died"));
        assert!(BflError::IntervalProbabilities {
            events: vec!["a".into(), "b".into()]
        }
        .to_string()
        .contains("a, b"));
        let e = BflError::PlanShapeMismatch {
            expected: "cause",
            query: "exists Top".into(),
        };
        assert!(e.to_string().contains("exists Top"));
        assert!(e.to_string().contains("`cause`"));
        let e = BflError::UnsupportedMethod {
            method: "mc".into(),
            context: "formula contains MCS/MPS".into(),
        };
        assert!(e.to_string().contains("`mc`"));
        assert!(e.to_string().contains("MCS/MPS"));
    }
}
