//! Error type shared by the evaluator and model checker.

use std::error::Error;
use std::fmt;

/// Errors raised when interpreting a BFL formula against a fault tree.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BflError {
    /// The formula mentions an element the tree does not contain.
    UnknownElement(String),
    /// Evidence (`ϕ[e↦v]`) targets an intermediate event; the semantics of
    /// Section III-B defines evidence on status vectors, i.e. on basic
    /// events only.
    EvidenceOnGate(String),
    /// A problem too large for the exhaustive reference evaluator.
    TooLarge {
        /// Number of basic events requested.
        actual: usize,
        /// The evaluator's limit.
        limit: usize,
    },
    /// A probabilistic query was issued against a session whose model
    /// lacks `prob=` annotations for the listed basic events.
    MissingProbabilities {
        /// Basic events without a probability annotation, in basic-index
        /// order.
        events: Vec<String>,
    },
}

impl fmt::Display for BflError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BflError::UnknownElement(n) => write!(f, "unknown fault tree element `{n}`"),
            BflError::EvidenceOnGate(n) => write!(
                f,
                "evidence on `{n}` is invalid: only basic events can be set in a status vector"
            ),
            BflError::TooLarge { actual, limit } => write!(
                f,
                "reference evaluator limited to {limit} basic events, tree has {actual}"
            ),
            BflError::MissingProbabilities { events } => {
                write!(f, "missing prob= annotations for: {}", events.join(", "))
            }
        }
    }
}

impl Error for BflError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(BflError::UnknownElement("x".into())
            .to_string()
            .contains("`x`"));
        assert!(BflError::EvidenceOnGate("g".into())
            .to_string()
            .contains("basic events"));
        let e = BflError::TooLarge {
            actual: 30,
            limit: 20,
        };
        assert!(e.to_string().contains("30"));
    }
}
