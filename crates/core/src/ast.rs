//! Abstract syntax of BFL (Section III-A).
//!
//! The logic has two layers:
//!
//! ```text
//! ϕ ::= e | ¬ϕ | ϕ∧ϕ | ϕ[e↦0] | ϕ[e↦1] | MCS(ϕ)          (layer 1, [`Formula`])
//! ψ ::= ∃ϕ | ∀ϕ | IDP(ϕ,ϕ) | P(ϕ[|ψ]) ▷◁ p | importance(ϕ)   (layer 2, [`Query`])
//! ```
//!
//! plus the syntactic sugar of the paper (`∨ ⇒ ≡ ≢ MPS SUP VOT▷◁k`), which
//! is represented natively in the AST so that it pretty-prints the way the
//! user wrote it. `MPS` carries the *maximality* semantics discussed in
//! `DESIGN.md` §4.
//!
//! The quantitative extension (the paper's first future-work item,
//! realised by the sister paper *PFL*) adds two layer-2 judgement shapes:
//! probability thresholds `P(ϕ) ▷◁ p` / `P(ϕ | ψ) ▷◁ p`
//! ([`Query::Prob`], bound held as a validated [`Prob`]) and the
//! importance ranking `importance(ϕ)` ([`Query::Importance`]).

use std::fmt;
use std::sync::Arc;

use crate::error::BflError;

/// Comparison operator of the voting sugar `VOT▷◁k(ϕ1, …, ϕN)`
/// (`▷◁ ∈ {<, ≤, =, ≥, >}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Strictly fewer than `k` operands hold.
    Lt,
    /// At most `k` operands hold.
    Le,
    /// Exactly `k` operands hold.
    Eq,
    /// At least `k` operands hold.
    Ge,
    /// Strictly more than `k` operands hold.
    Gt,
}

impl CmpOp {
    /// Applies the comparison to a concrete count.
    pub fn compare(self, count: u32, k: u32) -> bool {
        match self {
            CmpOp::Lt => count < k,
            CmpOp::Le => count <= k,
            CmpOp::Eq => count == k,
            CmpOp::Ge => count >= k,
            CmpOp::Gt => count > k,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Eq => "=",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
        };
        f.write_str(s)
    }
}

/// A validated probability value `p ∈ [0, 1]`: the bound of a layer-2
/// probability judgement `P(ϕ) ▷◁ p`.
///
/// Construction rejects anything outside the unit interval (including
/// `NaN` and infinities), which is what lets the type implement `Eq` and
/// `Hash` soundly — an invalid bound is unrepresentable rather than a
/// panic waiting in the evaluator.
///
/// ```
/// use bfl_core::ast::Prob;
/// let p = Prob::new(0.25)?;
/// assert_eq!(p.get(), 0.25);
/// assert!(Prob::new(1.5).is_err());
/// assert!(Prob::new(f64::NAN).is_err());
/// # Ok::<(), bfl_core::BflError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Prob(f64);

impl Prob {
    /// Validates and wraps a probability.
    ///
    /// # Errors
    ///
    /// [`BflError::InvalidBound`] if `p` is not finite or outside
    /// `[0, 1]`.
    pub fn new(p: f64) -> Result<Prob, BflError> {
        if p.is_finite() && (0.0..=1.0).contains(&p) {
            // Normalise -0.0 so `Eq` and `Hash` agree (−0.0 == 0.0 but
            // their bit patterns differ).
            Ok(Prob(p + 0.0))
        } else {
            Err(BflError::InvalidBound {
                bound: p.to_string(),
            })
        }
    }

    /// The wrapped value.
    pub fn get(self) -> f64 {
        self.0
    }
}

// Sound: the constructor excludes NaN, so `PartialEq` is total.
impl Eq for Prob {}

impl std::hash::Hash for Prob {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // -0.0 is normalised away at construction, so bitwise hashing is
        // consistent with `Eq`.
        state.write_u64(self.0.to_bits());
    }
}

impl fmt::Display for Prob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A layer-1 BFL formula, evaluated on a fault tree together with a status
/// vector.
///
/// Atoms are fault-tree *element names* — both basic events and
/// intermediate events are valid atoms. Formulae are cheap to clone
/// (shared subtrees via [`Arc`]) and hashable, which the model checker
/// uses for its translation cache (Algorithm 1).
///
/// # Example
///
/// ```
/// use bfl_core::Formula;
/// // ∀(CP ⇒ CP/R) — Example 1 of the paper (the ∀ lives in [`Query`]).
/// let phi = Formula::atom("CP").implies(Formula::atom("CP/R"));
/// assert_eq!(phi.to_string(), "CP => CP/R");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// A constant (`⊤` or `⊥`). Not part of the paper's grammar but
    /// convenient for the DSL; translated trivially.
    Const(bool),
    /// An element of the fault tree (basic or intermediate event): holds
    /// iff `Φ_T(b, e) = 1`.
    Atom(String),
    /// Negation `¬ϕ`.
    Not(Arc<Formula>),
    /// Conjunction `ϕ ∧ ϕ′`.
    And(Arc<Formula>, Arc<Formula>),
    /// Disjunction `ϕ ∨ ϕ′` (sugar: `¬(¬ϕ ∧ ¬ϕ′)`).
    Or(Arc<Formula>, Arc<Formula>),
    /// Implication `ϕ ⇒ ϕ′` (sugar: `¬(ϕ ∧ ¬ϕ′)`).
    Implies(Arc<Formula>, Arc<Formula>),
    /// Biconditional `ϕ ≡ ϕ′`.
    Iff(Arc<Formula>, Arc<Formula>),
    /// Exclusive or `ϕ ≢ ϕ′`.
    Neq(Arc<Formula>, Arc<Formula>),
    /// Evidence `ϕ[e ↦ v]`: evaluate `ϕ` with basic event `e` forced to
    /// `v`. Note `ϕ[e↦0]` is *not* `ϕ ∧ ¬e` (Section III-A).
    Evidence {
        /// The formula under evidence.
        inner: Arc<Formula>,
        /// The forced basic event.
        element: String,
        /// The forced value (`true` = failed).
        value: bool,
    },
    /// `MCS(ϕ)`: the current vector is a *minimal* vector satisfying `ϕ`.
    Mcs(Arc<Formula>),
    /// `MPS(ϕ)`: the current vector is a *maximal* vector satisfying `¬ϕ`
    /// (equivalently: its operational set is a minimal path set; see
    /// `DESIGN.md` §4 for why the paper's literal `MCS(¬ϕ)` is adjusted).
    Mps(Arc<Formula>),
    /// Voting sugar `VOT▷◁k(ϕ1, …, ϕN)`: the number of operands that hold
    /// compares `▷◁` with `k`.
    Vot {
        /// The comparison `▷◁`.
        op: CmpOp,
        /// The threshold `k`.
        k: u32,
        /// The operand formulae `ϕ1 … ϕN`.
        operands: Vec<Formula>,
    },
}

impl Formula {
    /// The atom for element `e`.
    pub fn atom(name: impl Into<String>) -> Formula {
        Formula::Atom(name.into())
    }

    /// The constant `⊤`.
    pub fn top() -> Formula {
        Formula::Const(true)
    }

    /// The constant `⊥`.
    pub fn bot() -> Formula {
        Formula::Const(false)
    }

    /// Negation `¬self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Arc::new(self))
    }

    /// Conjunction `self ∧ rhs`.
    pub fn and(self, rhs: Formula) -> Formula {
        Formula::And(Arc::new(self), Arc::new(rhs))
    }

    /// Disjunction `self ∨ rhs`.
    pub fn or(self, rhs: Formula) -> Formula {
        Formula::Or(Arc::new(self), Arc::new(rhs))
    }

    /// Implication `self ⇒ rhs`.
    pub fn implies(self, rhs: Formula) -> Formula {
        Formula::Implies(Arc::new(self), Arc::new(rhs))
    }

    /// Biconditional `self ≡ rhs`.
    pub fn iff(self, rhs: Formula) -> Formula {
        Formula::Iff(Arc::new(self), Arc::new(rhs))
    }

    /// Exclusive or `self ≢ rhs`.
    pub fn neq(self, rhs: Formula) -> Formula {
        Formula::Neq(Arc::new(self), Arc::new(rhs))
    }

    /// Evidence `self[e ↦ value]`.
    pub fn with_evidence(self, element: impl Into<String>, value: bool) -> Formula {
        Formula::Evidence {
            inner: Arc::new(self),
            element: element.into(),
            value,
        }
    }

    /// Chained evidence `self[e1 ↦ v1, e2 ↦ v2, …]` (left-to-right).
    pub fn with_evidence_all<I, S>(self, assignments: I) -> Formula
    where
        I: IntoIterator<Item = (S, bool)>,
        S: Into<String>,
    {
        assignments
            .into_iter()
            .fold(self, |acc, (e, v)| acc.with_evidence(e, v))
    }

    /// `MCS(self)`.
    pub fn mcs(self) -> Formula {
        Formula::Mcs(Arc::new(self))
    }

    /// `MPS(self)`.
    pub fn mps(self) -> Formula {
        Formula::Mps(Arc::new(self))
    }

    /// `VOT▷◁k(operands)`.
    pub fn vot<I: IntoIterator<Item = Formula>>(op: CmpOp, k: u32, operands: I) -> Formula {
        Formula::Vot {
            op,
            k,
            operands: operands.into_iter().collect(),
        }
    }

    /// Conjunction of all operands (`⊤` when empty).
    pub fn and_all<I: IntoIterator<Item = Formula>>(operands: I) -> Formula {
        let mut iter = operands.into_iter();
        match iter.next() {
            None => Formula::top(),
            Some(first) => iter.fold(first, Formula::and),
        }
    }

    /// Disjunction of all operands (`⊥` when empty).
    pub fn or_all<I: IntoIterator<Item = Formula>>(operands: I) -> Formula {
        let mut iter = operands.into_iter();
        match iter.next() {
            None => Formula::bot(),
            Some(first) => iter.fold(first, Formula::or),
        }
    }

    /// All atom names occurring in the formula, deduplicated, in first
    /// occurrence order.
    pub fn atoms(&self) -> Vec<&str> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        self.visit(&mut |f| {
            if let Formula::Atom(n) = f {
                if seen.insert(n.as_str()) {
                    out.push(n.as_str());
                }
            }
        });
        out
    }

    /// All element names mentioned anywhere (atoms and evidence targets).
    pub fn mentioned_elements(&self) -> Vec<&str> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        self.visit(&mut |f| {
            let names: &[&str] = match f {
                Formula::Atom(n) => &[n.as_str()],
                Formula::Evidence { element, .. } => &[element.as_str()],
                _ => &[],
            };
            for &n in names {
                if seen.insert(n) {
                    out.push(n);
                }
            }
        });
        out
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Pre-order traversal.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Formula)) {
        f(self);
        match self {
            Formula::Const(_) | Formula::Atom(_) => {}
            Formula::Not(a) | Formula::Mcs(a) | Formula::Mps(a) => a.visit(f),
            Formula::Evidence { inner, .. } => inner.visit(f),
            Formula::And(a, b)
            | Formula::Or(a, b)
            | Formula::Implies(a, b)
            | Formula::Iff(a, b)
            | Formula::Neq(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Formula::Vot { operands, .. } => {
                for o in operands {
                    o.visit(f);
                }
            }
        }
    }

    /// Whether the formula contains an `MCS` or `MPS` operator — the
    /// condition under which Algorithm 2 genuinely needs a BDD (Section V
    /// notes the check is trivial otherwise).
    pub fn has_minimality_operator(&self) -> bool {
        let mut found = false;
        self.visit(&mut |f| {
            if matches!(f, Formula::Mcs(_) | Formula::Mps(_)) {
                found = true;
            }
        });
        found
    }
}

/// A layer-2 BFL query (`ψ`): quantification over status vectors,
/// independence, or a quantitative judgement (probability threshold /
/// importance ranking — the PFL-style extension).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Query {
    /// `∃ϕ`: some status vector satisfies `ϕ`.
    Exists(Formula),
    /// `∀ϕ`: every status vector satisfies `ϕ`.
    Forall(Formula),
    /// `IDP(ϕ, ϕ′)`: the formulae share no influencing basic event.
    Idp(Formula, Formula),
    /// `SUP(e)`: element `e` is superfluous — sugar for `IDP(e, e_top)`.
    Sup(String),
    /// `P(ϕ) ▷◁ p` (and the conditional form `P(ϕ | ψ) ▷◁ p`): the
    /// probability that a random status vector satisfies `ϕ` (given `ψ`)
    /// compares `▷◁` with the bound. Needs probability annotations at
    /// evaluation time.
    Prob {
        /// The formula whose probability is bounded.
        formula: Formula,
        /// The conditioning formula `ψ` of `P(ϕ | ψ)`, if any.
        given: Option<Formula>,
        /// The comparison `▷◁`.
        op: CmpOp,
        /// The bound `p ∈ [0, 1]`.
        bound: Prob,
    },
    /// `importance(ϕ)`: rank every basic event by its quantitative
    /// importance for `ϕ` (Birnbaum, criticality, Fussell-Vesely,
    /// RAW/RRW). Needs probability annotations at evaluation time.
    Importance(Formula),
    /// `cause(ϕ, evidence)` / `causes(ϕ, evidence, k)`: the actual-causality
    /// judgement. The evidence bindings fix an *observation* — a full
    /// status vector with every unbound event operational — and the
    /// engine computes the subset-minimal sets of failed events whose
    /// joint repair (`S ↦ 0`) flips `ϕ` from holding to failing
    /// (but-for causes, made minimal). `limit` bounds the enumeration
    /// (`causes(…, k)`); `None` defers to the session witness limit.
    Cause {
        /// The formula whose failure is to be explained.
        formula: Formula,
        /// The observation bindings `e ↦ v` (first binding wins on
        /// duplicates, matching scenario resolution).
        evidence: Vec<(String, bool)>,
        /// Enumeration bound `k` of the `causes(…, k)` form.
        limit: Option<u32>,
    },
}

impl Query {
    /// `∃ϕ`.
    pub fn exists(phi: Formula) -> Query {
        Query::Exists(phi)
    }

    /// `∀ϕ`.
    pub fn forall(phi: Formula) -> Query {
        Query::Forall(phi)
    }

    /// `IDP(a, b)`.
    pub fn idp(a: Formula, b: Formula) -> Query {
        Query::Idp(a, b)
    }

    /// `SUP(e)`.
    pub fn sup(name: impl Into<String>) -> Query {
        Query::Sup(name.into())
    }

    /// `P(ϕ) ▷◁ p`.
    ///
    /// # Errors
    ///
    /// [`BflError::InvalidBound`] if `bound` is not a probability.
    pub fn prob(phi: Formula, op: CmpOp, bound: f64) -> Result<Query, BflError> {
        Ok(Query::Prob {
            formula: phi,
            given: None,
            op,
            bound: Prob::new(bound)?,
        })
    }

    /// `P(ϕ | ψ) ▷◁ p`.
    ///
    /// # Errors
    ///
    /// [`BflError::InvalidBound`] if `bound` is not a probability.
    pub fn prob_given(
        phi: Formula,
        given: Formula,
        op: CmpOp,
        bound: f64,
    ) -> Result<Query, BflError> {
        Ok(Query::Prob {
            formula: phi,
            given: Some(given),
            op,
            bound: Prob::new(bound)?,
        })
    }

    /// `importance(ϕ)`.
    pub fn importance(phi: Formula) -> Query {
        Query::Importance(phi)
    }

    /// `cause(ϕ, evidence)` — minimal actual causes, bounded only by the
    /// session witness limit.
    pub fn cause<I, S>(phi: Formula, evidence: I) -> Query
    where
        I: IntoIterator<Item = (S, bool)>,
        S: Into<String>,
    {
        Query::Cause {
            formula: phi,
            evidence: evidence.into_iter().map(|(e, v)| (e.into(), v)).collect(),
            limit: None,
        }
    }

    /// `causes(ϕ, evidence, k)` — enumerate at most `k` minimal actual
    /// causes.
    pub fn causes<I, S>(phi: Formula, evidence: I, k: u32) -> Query
    where
        I: IntoIterator<Item = (S, bool)>,
        S: Into<String>,
    {
        Query::Cause {
            formula: phi,
            evidence: evidence.into_iter().map(|(e, v)| (e.into(), v)).collect(),
            limit: Some(k),
        }
    }

    /// Whether evaluating the query needs probability annotations
    /// (`P(…) ▷◁ p` and `importance(…)`).
    pub fn is_probabilistic(&self) -> bool {
        matches!(self, Query::Prob { .. } | Query::Importance(_))
    }
}

// ---------------------------------------------------------------------------
// Pretty printing. The grammar printed here is exactly what `parser` reads;
// round-tripping is checked by property tests.
// ---------------------------------------------------------------------------

/// Binding strength for parenthesisation (higher binds tighter).
fn precedence(f: &Formula) -> u8 {
    match f {
        Formula::Iff(..) | Formula::Neq(..) => 1,
        Formula::Implies(..) => 2,
        Formula::Or(..) => 3,
        Formula::And(..) => 4,
        Formula::Not(..) => 5,
        Formula::Evidence { .. } => 6,
        Formula::Const(_)
        | Formula::Atom(_)
        | Formula::Mcs(_)
        | Formula::Mps(_)
        | Formula::Vot { .. } => 7,
    }
}

fn needs_quotes(name: &str) -> bool {
    let mut chars = name.chars();
    let head_ok = chars
        .next()
        .map(|c| c.is_ascii_alphabetic() || c == '_')
        .unwrap_or(false);
    let keyword = matches!(
        name,
        "MCS" | "MPS" | "VOT" | "IDP" | "SUP" | "exists" | "forall" | "true" | "false"
    );
    !head_ok
        || keyword
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '/')
}

fn write_name(f: &mut fmt::Formatter<'_>, name: &str) -> fmt::Result {
    if needs_quotes(name) {
        write!(f, "\"{name}\"")
    } else {
        f.write_str(name)
    }
}

fn write_child(f: &mut fmt::Formatter<'_>, child: &Formula, parent_prec: u8) -> fmt::Result {
    if precedence(child) < parent_prec {
        write!(f, "({child})")
    } else {
        write!(f, "{child}")
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prec = precedence(self);
        match self {
            Formula::Const(true) => f.write_str("true"),
            Formula::Const(false) => f.write_str("false"),
            Formula::Atom(n) => write_name(f, n),
            Formula::Not(a) => {
                f.write_str("!")?;
                write_child(f, a, prec + 1)
            }
            Formula::And(a, b) => {
                write_child(f, a, prec)?;
                f.write_str(" & ")?;
                write_child(f, b, prec + 1)
            }
            Formula::Or(a, b) => {
                write_child(f, a, prec)?;
                f.write_str(" | ")?;
                write_child(f, b, prec + 1)
            }
            Formula::Implies(a, b) => {
                // Right-associative.
                write_child(f, a, prec + 1)?;
                f.write_str(" => ")?;
                write_child(f, b, prec)
            }
            Formula::Iff(a, b) => {
                write_child(f, a, prec + 1)?;
                f.write_str(" <=> ")?;
                write_child(f, b, prec + 1)
            }
            Formula::Neq(a, b) => {
                write_child(f, a, prec + 1)?;
                f.write_str(" != ")?;
                write_child(f, b, prec + 1)
            }
            Formula::Evidence {
                inner,
                element,
                value,
            } => {
                write_child(f, inner, prec)?;
                f.write_str("[")?;
                write_name(f, element)?;
                write!(f, " := {}]", if *value { 1 } else { 0 })
            }
            Formula::Mcs(a) => write!(f, "MCS({a})"),
            Formula::Mps(a) => write!(f, "MPS({a})"),
            Formula::Vot { op, k, operands } => {
                write!(f, "VOT({op}{k}; ")?;
                for (i, o) in operands.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{o}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// Writes an operand of `P(…)` / `importance(…)`, parenthesised whenever
/// its printed form could contain a `|` at parenthesis depth 0 — which
/// the parser would otherwise read as the conditional separator of
/// `P(ϕ | ψ)`. That is exactly the formulae printing at or below `∨`'s
/// precedence (`∨`, `⇒`, `≡`, `≢` chains).
fn write_prob_operand(f: &mut fmt::Formatter<'_>, phi: &Formula) -> fmt::Result {
    /// `precedence` of [`Formula::Or`] — formulae binding this loosely
    /// may print a bare `|`.
    const OR_PRECEDENCE: u8 = 3;
    if precedence(phi) <= OR_PRECEDENCE {
        write!(f, "({phi})")
    } else {
        write!(f, "{phi}")
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Exists(p) => write!(f, "exists {p}"),
            Query::Forall(p) => write!(f, "forall {p}"),
            Query::Idp(a, b) => write!(f, "IDP({a}, {b})"),
            Query::Sup(n) => {
                f.write_str("SUP(")?;
                write_name(f, n)?;
                f.write_str(")")
            }
            Query::Prob {
                formula,
                given,
                op,
                bound,
            } => {
                f.write_str("P(")?;
                write_prob_operand(f, formula)?;
                if let Some(g) = given {
                    f.write_str(" | ")?;
                    write_prob_operand(f, g)?;
                }
                write!(f, ") {op} {bound}")
            }
            Query::Importance(p) => write!(f, "importance({p})"),
            Query::Cause {
                formula,
                evidence,
                limit,
            } => {
                // Bindings and the bound are comma-separated at depth 0;
                // formulae never print a depth-0 comma, so the operand
                // needs no parenthesisation to round-trip.
                write!(
                    f,
                    "{}({formula}",
                    if limit.is_some() { "causes" } else { "cause" }
                )?;
                for (e, v) in evidence {
                    f.write_str(", ")?;
                    write_name(f, e)?;
                    write!(f, " := {}", if *v { 1 } else { 0 })?;
                }
                if let Some(k) = limit {
                    write!(f, ", {k}")?;
                }
                f.write_str(")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_display() {
        let phi = Formula::atom("IS").implies(Formula::atom("MoT"));
        assert_eq!(phi.to_string(), "IS => MoT");
        let psi = Query::forall(phi);
        assert_eq!(psi.to_string(), "forall IS => MoT");
    }

    #[test]
    fn parenthesisation() {
        let a = || Formula::atom("a");
        let b = || Formula::atom("b");
        let c = || Formula::atom("c");
        // (a | b) & c needs parens around the or.
        let f = a().or(b()).and(c());
        assert_eq!(f.to_string(), "(a | b) & c");
        // a | (b & c) does not.
        let g = a().or(b().and(c()));
        assert_eq!(g.to_string(), "a | b & c");
        // ¬(a ∧ b)
        let h = a().and(b()).not();
        assert_eq!(h.to_string(), "!(a & b)");
    }

    #[test]
    fn evidence_display() {
        let f = Formula::atom("IWoS")
            .mps()
            .with_evidence_all([("H1", false), ("H2", true)]);
        assert_eq!(f.to_string(), "MPS(IWoS)[H1 := 0][H2 := 1]");
    }

    #[test]
    fn quoted_names() {
        let f = Formula::atom("CP/R");
        assert_eq!(f.to_string(), "CP/R"); // '/' allowed bare
        let g = Formula::atom("a b");
        assert_eq!(g.to_string(), "\"a b\"");
        let k = Formula::atom("MCS");
        assert_eq!(k.to_string(), "\"MCS\"");
    }

    #[test]
    fn vot_display() {
        let f = Formula::vot(CmpOp::Ge, 2, ["H1", "H2", "H3"].map(Formula::atom));
        assert_eq!(f.to_string(), "VOT(>=2; H1, H2, H3)");
    }

    #[test]
    fn atoms_and_size() {
        let f = Formula::atom("a").and(Formula::atom("b").or(Formula::atom("a")));
        assert_eq!(f.atoms(), vec!["a", "b"]);
        assert_eq!(f.size(), 5);
        assert!(!f.has_minimality_operator());
        assert!(f.clone().mcs().has_minimality_operator());
    }

    #[test]
    fn mentioned_elements_includes_evidence() {
        // Pre-order: the evidence wrapper is visited before the atom.
        let f = Formula::atom("a").with_evidence("e", true);
        assert_eq!(f.mentioned_elements(), vec!["e", "a"]);
    }

    #[test]
    fn prob_bound_validation() {
        assert!(Prob::new(0.0).is_ok());
        assert!(Prob::new(1.0).is_ok());
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                Prob::new(bad),
                Err(crate::error::BflError::InvalidBound { .. })
            ));
        }
        // -0.0 normalises to 0.0 so Eq and Hash agree.
        assert_eq!(Prob::new(-0.0).unwrap(), Prob::new(0.0).unwrap());
        assert_eq!(
            Prob::new(-0.0).unwrap().get().to_bits(),
            Prob::new(0.0).unwrap().get().to_bits()
        );
    }

    #[test]
    fn prob_query_display() {
        let q = Query::prob(Formula::atom("Top"), CmpOp::Le, 0.3).unwrap();
        assert_eq!(q.to_string(), "P(Top) <= 0.3");
        assert!(q.is_probabilistic());
        let c = Query::prob_given(
            Formula::atom("Top"),
            Formula::atom("a").and(Formula::atom("b")),
            CmpOp::Gt,
            0.5,
        )
        .unwrap();
        assert_eq!(c.to_string(), "P(Top | a & b) > 0.5");
        // Operands whose rendering carries a top-level `|` (or looser)
        // are parenthesised so the printed form re-parses unambiguously.
        let d = Query::prob(Formula::atom("a").or(Formula::atom("b")), CmpOp::Ge, 0.1).unwrap();
        assert_eq!(d.to_string(), "P((a | b)) >= 0.1");
        let e = Query::prob_given(
            Formula::atom("a").implies(Formula::atom("b")),
            Formula::atom("c"),
            CmpOp::Lt,
            1.0,
        )
        .unwrap();
        assert_eq!(e.to_string(), "P((a => b) | c) < 1");
        let i = Query::importance(Formula::atom("Top").mcs());
        assert_eq!(i.to_string(), "importance(MCS(Top))");
        assert!(i.is_probabilistic());
        assert!(!Query::sup("x").is_probabilistic());
    }

    #[test]
    fn cause_query_display() {
        let q = Query::cause(Formula::atom("Top"), [("A", true), ("B", false)]);
        assert_eq!(q.to_string(), "cause(Top, A := 1, B := 0)");
        assert!(!q.is_probabilistic());
        let k = Query::causes(Formula::atom("Top").mcs(), [("A", true)], 5);
        assert_eq!(k.to_string(), "causes(MCS(Top), A := 1, 5)");
        // Empty evidence and quoted binding names both render.
        let bare = Query::cause(Formula::atom("Top"), Vec::<(String, bool)>::new());
        assert_eq!(bare.to_string(), "cause(Top)");
        let quoted = Query::cause(Formula::atom("T"), [("a b", true)]);
        assert_eq!(quoted.to_string(), "cause(T, \"a b\" := 1)");
    }

    #[test]
    fn cmp_op_compare() {
        assert!(CmpOp::Ge.compare(3, 2));
        assert!(!CmpOp::Lt.compare(3, 2));
        assert!(CmpOp::Eq.compare(2, 2));
        assert!(CmpOp::Le.compare(2, 2));
        assert!(CmpOp::Gt.compare(3, 2));
    }
}
