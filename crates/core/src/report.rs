//! Batch specifications and structured analysis reports.
//!
//! The paper's workflow is *batch-shaped*: a user loads one fault tree
//! and fires many layer-1/layer-2 questions at it (all nine properties of
//! the COVID case study, the four patterns of Table I). A [`Spec`] holds
//! such a batch — one [`SpecItem`] per question, optionally labelled —
//! and [`AnalysisSession::run`](crate::engine::AnalysisSession::run)
//! evaluates it in one pass over shared BDD caches, returning a
//! [`Report`] of structured [`Outcome`]s.
//!
//! ## Spec text format
//!
//! One item per line; blank lines and `#` comments are skipped:
//!
//! ```text
//! # COVID case study, properties 1 and 8
//! P1: forall IS => MoT
//! P8: IDP(CIO, CIS)
//! # a layer-1 formula, checked against the vector failing IW and H3
//! P4: [IW, H3] MCS("CP/R")
//! ```
//!
//! Labels (`P1:`) are optional. A layer-1 formula line may carry a
//! leading `[A, B, C]` list of failed basic events; without one the
//! formula is checked against the all-operational vector.

use std::fmt;
use std::sync::Arc;

use bfl_fault_tree::{FaultTree, StatusVector};

use crate::ast::{Formula, Query};
use crate::causality::CauseReport;
use crate::counterexample::Counterexample;
use crate::parser::{self, ParseError};
use crate::quant::EventImportance;
use crate::uncertainty::{Estimate, Method, ProbInterval};

/// A batch of BFL questions to be evaluated against one fault tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Spec {
    /// The questions, in evaluation order.
    pub items: Vec<SpecItem>,
}

/// One labelled question of a [`Spec`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpecItem {
    /// Optional label (`P1`), carried into the [`Outcome`].
    pub label: Option<String>,
    /// The question's concrete syntax (pretty-printed for programmatic
    /// items).
    pub source: String,
    /// What to evaluate.
    pub kind: SpecKind,
}

/// The two shapes of a question.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecKind {
    /// A layer-2 query: `T ⊨ ψ`.
    Query(Query),
    /// A layer-1 formula checked against a status vector given as failed
    /// basic-event names: `b, T ⊨ χ`.
    Vector {
        /// Names of the failed basic events (the rest are operational).
        failed: Vec<String>,
        /// The formula to check.
        formula: Formula,
    },
}

impl SpecItem {
    /// Wraps a query as an unlabelled item.
    pub fn query(q: Query) -> Self {
        SpecItem {
            label: None,
            source: q.to_string(),
            kind: SpecKind::Query(q),
        }
    }

    /// Wraps a formula + failed-event vector as an unlabelled item.
    pub fn vector<S: Into<String>>(failed: impl IntoIterator<Item = S>, formula: Formula) -> Self {
        let failed: Vec<String> = failed.into_iter().map(Into::into).collect();
        let source = if failed.is_empty() {
            format!("[] {formula}")
        } else {
            format!("[{}] {formula}", failed.join(", "))
        };
        SpecItem {
            label: None,
            source,
            kind: SpecKind::Vector { failed, formula },
        }
    }

    /// Returns the item with a label attached.
    pub fn labelled<S: Into<String>>(mut self, label: S) -> Self {
        self.label = Some(label.into());
        self
    }
}

impl From<Query> for SpecItem {
    fn from(q: Query) -> Self {
        SpecItem::query(q)
    }
}

impl From<parser::Spec> for SpecItem {
    fn from(s: parser::Spec) -> Self {
        match s {
            parser::Spec::Query(q) => SpecItem::query(q),
            parser::Spec::Formula(f) => SpecItem::vector(Vec::<String>::new(), f),
        }
    }
}

impl Spec {
    /// An empty batch.
    pub fn new() -> Self {
        Spec::default()
    }

    /// Builds a batch from anything convertible to items (queries,
    /// parsed [`parser::Spec`]s, prepared [`SpecItem`]s).
    pub fn from_items<I, T>(items: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<SpecItem>,
    {
        Spec {
            items: items.into_iter().map(Into::into).collect(),
        }
    }

    /// Appends an item.
    pub fn push(&mut self, item: impl Into<SpecItem>) -> &mut Self {
        self.items.push(item.into());
        self
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Parses the line-oriented spec format (see the module docs).
    ///
    /// # Errors
    ///
    /// The first [`ParseError`], with the line number of the offending
    /// item.
    pub fn parse(text: &str) -> Result<Spec, ParseError> {
        let mut items = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (label, rest) = split_label(line, false);
            // Character offset of `rest` within `raw`, so inner parse
            // errors report columns relative to the original line.
            let rest_start = raw.find(rest).unwrap_or(0);
            let col_offset = raw[..rest_start].chars().count();
            let item = parse_item(rest).map_err(|mut e| {
                e.line = lineno + 1;
                e.col += col_offset;
                e
            })?;
            items.push(SpecItem {
                label: label.map(str::to_string),
                source: rest.to_string(),
                ..item
            });
        }
        Ok(Spec { items })
    }
}

/// Splits an optional `label:` prefix off a spec or scenario line. A
/// label is a bare `[A-Za-z0-9_.-]+` (plus interior spaces when
/// `allow_spaces` — scenario files accept them, spec files do not)
/// immediately followed by `:` and not by `=` (so evidence `:=` never
/// masquerades as a label).
pub(crate) fn split_label(line: &str, allow_spaces: bool) -> (Option<&str>, &str) {
    let Some(colon) = line.find(':') else {
        return (None, line);
    };
    let head = line[..colon].trim();
    let tail = &line[colon + 1..];
    let is_label = !head.is_empty()
        && head.chars().all(|c| {
            c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-') || (allow_spaces && c == ' ')
        })
        && !tail.starts_with('=');
    if is_label {
        (Some(head), tail.trim_start())
    } else {
        (None, line)
    }
}

fn parse_item(rest: &str) -> Result<SpecItem, ParseError> {
    if let Some(after) = rest.strip_prefix('[') {
        let close = after.find(']').ok_or(ParseError {
            line: 1,
            col: 1,
            message: "unclosed `[failed-events]` vector prefix".to_string(),
        })?;
        let failed: Vec<String> = after[..close]
            .split(',')
            .map(|s| s.trim().trim_matches('"').to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let formula = parser::parse_formula(&after[close + 1..]).map_err(|mut e| {
            // Shift past the `[…]` prefix so the column points into the
            // whole item, not the formula substring.
            e.col += after[..close].chars().count() + 2;
            e
        })?;
        Ok(SpecItem::vector(failed, formula))
    } else {
        Ok(parser::parse_spec(rest)?.into())
    }
}

impl fmt::Display for Spec {
    /// One line per item, re-parseable by [`Spec::parse`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for item in &self.items {
            match &item.label {
                Some(l) => writeln!(f, "{l}: {}", item.source)?,
                None => writeln!(f, "{}", item.source)?,
            }
        }
        Ok(())
    }
}

/// Per-query evaluation statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalStats {
    /// Nodes of the BDD(s) compiled for this query (`0` for queries that
    /// bypass the BDD layer).
    pub bdd_nodes: usize,
    /// Total nodes in the session's shared BDD arena after the query.
    pub arena_nodes: usize,
    /// Translation-cache hits during the query (shared sub-formulae).
    pub cache_hits: u64,
    /// Translation-cache misses (sub-formulae compiled for the first
    /// time).
    pub cache_misses: u64,
    /// Wall-clock evaluation time in microseconds.
    pub duration_micros: u128,
}

impl EvalStats {
    /// Component-wise accumulation (`arena_nodes` takes the maximum — it
    /// is a level, not a delta).
    pub fn absorb(&mut self, other: &EvalStats) {
        self.bdd_nodes += other.bdd_nodes;
        self.arena_nodes = self.arena_nodes.max(other.arena_nodes);
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.duration_micros += other.duration_micros;
    }
}

/// The structured result of one question — verdict, explanatory vectors
/// and statistics, never a bare `bool`.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Label from the [`SpecItem`], if any.
    pub label: Option<String>,
    /// Concrete syntax of the question.
    pub source: String,
    /// The verdict.
    pub holds: bool,
    /// Vectors demonstrating a positive verdict (satisfying vectors of an
    /// `exists`, capped at the session's witness limit).
    pub witnesses: Vec<StatusVector>,
    /// Vectors refuting a negative `forall` (satisfying `¬ϕ`), capped at
    /// the witness limit.
    pub counterexamples: Vec<StatusVector>,
    /// For failed vector checks: the Definition-7 counterexample of
    /// Algorithm 4 (closest satisfying vector).
    pub counterexample: Option<Counterexample>,
    /// For failed `IDP`/`SUP` queries: the shared influencing basic
    /// events.
    pub shared_events: Vec<String>,
    /// For probability judgements `P(ϕ) ▷◁ p`: the computed probability
    /// (`None` for Boolean questions, and for conditionals whose
    /// condition has probability zero).
    pub probability: Option<f64>,
    /// For probability judgements evaluated with
    /// [`Method::Interval`]: the conservative bounds (`probability`
    /// stays `None`).
    pub interval: Option<ProbInterval>,
    /// For probability judgements evaluated with [`Method::Mc`]: the
    /// Monte Carlo estimate with its confidence interval
    /// (`probability` stays `None`).
    pub estimate: Option<Estimate>,
    /// The evaluation method of a probability judgement (`None` for
    /// Boolean questions).
    pub method: Option<Method>,
    /// For `importance(ϕ)` judgements: the ranked importance table.
    pub importance: Vec<EventImportance>,
    /// For `cause(…)` / `causes(…, k)` judgements: the observation, the
    /// minimal actual causes with their repaired-observation witnesses,
    /// and the exact cause count (`None` for other question shapes).
    pub causes: Option<CauseReport>,
    /// Evaluation statistics.
    pub stats: EvalStats,
}

impl Outcome {
    /// A minimal outcome carrying only a verdict; the session fills the
    /// explanatory fields in.
    pub(crate) fn bare(label: Option<String>, source: String, holds: bool) -> Self {
        Outcome {
            label,
            source,
            holds,
            witnesses: Vec::new(),
            counterexamples: Vec::new(),
            counterexample: None,
            shared_events: Vec::new(),
            probability: None,
            interval: None,
            estimate: None,
            method: None,
            importance: Vec::new(),
            causes: None,
            stats: EvalStats::default(),
        }
    }

    /// `label: source` or just the source.
    pub fn title(&self) -> String {
        match &self.label {
            Some(l) => format!("{l}: {}", self.source),
            None => self.source.clone(),
        }
    }
}

/// The result of a batch [`Spec`] evaluation: one [`Outcome`] per item
/// plus aggregate statistics, rendered as text ([`fmt::Display`]) or JSON
/// ([`Report::to_json`]).
#[derive(Debug, Clone)]
pub struct Report {
    tree: Arc<FaultTree>,
    /// Per-item outcomes, in spec order.
    pub outcomes: Vec<Outcome>,
    /// Component-wise aggregate of every outcome's statistics.
    pub totals: EvalStats,
}

impl Report {
    pub(crate) fn new(tree: Arc<FaultTree>) -> Self {
        Report {
            tree,
            outcomes: Vec::new(),
            totals: EvalStats::default(),
        }
    }

    pub(crate) fn push(&mut self, outcome: Outcome) {
        self.totals.absorb(&outcome.stats);
        self.outcomes.push(outcome);
    }

    /// The tree the report was computed against.
    pub fn tree(&self) -> &FaultTree {
        &self.tree
    }

    /// Number of questions that hold.
    pub fn holding(&self) -> usize {
        self.outcomes.iter().filter(|o| o.holds).count()
    }

    /// Renders a status vector as its failed-event names.
    fn failed_names(&self, v: &StatusVector) -> Vec<&str> {
        v.failed_names(&self.tree)
    }

    /// Serialises the report as a self-contained JSON document.
    ///
    /// The suite is dependency-free, so this is a small hand-rolled
    /// writer; the schema is stable:
    ///
    /// ```json
    /// {"tree": "...", "outcomes": [{"label": "P1", "source": "...",
    ///  "holds": true, "witnesses": [["A","B"]], "counterexamples": [],
    ///  "counterexample": null, "shared_events": [],
    ///  "stats": {"bdd_nodes": 1, "arena_nodes": 2, "cache_hits": 3,
    ///            "cache_misses": 4, "duration_micros": 5}}],
    ///  "totals": {...}}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"tree\":{}",
            json_str(self.tree.name(self.tree.top()))
        ));
        out.push_str(",\"outcomes\":[");
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_outcome(&self.tree, o));
        }
        out.push_str(&format!("],\"totals\":{}", json_stats(&self.totals)));
        out.push('}');
        out
    }
}

/// Serialises one [`Outcome`] as a JSON object (vectors rendered as
/// failed-event name lists against `tree`) — shared by [`Report`], the
/// sweep reports of the prepared-query layer, and the `bfl-server`
/// `eval` endpoint.
pub fn json_outcome(tree: &FaultTree, o: &Outcome) -> String {
    let failed_names = |v: &StatusVector| -> Vec<&str> { v.failed_names(tree) };
    let json_vectors = |vectors: &[StatusVector]| -> String {
        let parts: Vec<String> = vectors
            .iter()
            .map(|v| json_names(&failed_names(v)))
            .collect();
        format!("[{}]", parts.join(","))
    };
    let mut out = String::from("{");
    match &o.label {
        Some(l) => out.push_str(&format!("\"label\":{}", json_str(l))),
        None => out.push_str("\"label\":null"),
    }
    out.push_str(&format!(",\"source\":{}", json_str(&o.source)));
    out.push_str(&format!(",\"holds\":{}", o.holds));
    out.push_str(&format!(",\"witnesses\":{}", json_vectors(&o.witnesses)));
    out.push_str(&format!(
        ",\"counterexamples\":{}",
        json_vectors(&o.counterexamples)
    ));
    out.push_str(",\"counterexample\":");
    match &o.counterexample {
        Some(Counterexample::Found(v)) => {
            out.push_str(&json_names(&failed_names(v)));
        }
        Some(Counterexample::Unsatisfiable) => out.push_str("\"unsatisfiable\""),
        Some(Counterexample::AlreadySatisfies) => {
            out.push_str("\"already-satisfies\"");
        }
        None => out.push_str("null"),
    }
    let shared: Vec<&str> = o.shared_events.iter().map(String::as_str).collect();
    out.push_str(&format!(",\"shared_events\":{}", json_names(&shared)));
    match o.probability {
        Some(p) => out.push_str(&format!(",\"probability\":{p}")),
        None => out.push_str(",\"probability\":null"),
    }
    match &o.interval {
        Some(iv) => out.push_str(&format!(",\"interval\":{}", json_interval(iv))),
        None => out.push_str(",\"interval\":null"),
    }
    match &o.estimate {
        Some(e) => out.push_str(&format!(",\"estimate\":{}", json_estimate(e))),
        None => out.push_str(",\"estimate\":null"),
    }
    match &o.method {
        Some(m) => out.push_str(&format!(",\"method\":{}", json_str(m.name()))),
        None => out.push_str(",\"method\":null"),
    }
    out.push_str(&format!(
        ",\"importance\":{}",
        json_importance(&o.importance)
    ));
    match &o.causes {
        Some(r) => out.push_str(&format!(",\"causes\":{}", json_causes(tree, r))),
        None => out.push_str(",\"causes\":null"),
    }
    out.push_str(&format!(",\"stats\":{}", json_stats(&o.stats)));
    out.push('}');
    out
}

/// Serialises a [`CauseReport`] as a JSON object (vectors rendered as
/// failed-event name lists against `tree`) — the `causes` schema shared
/// by the report writers and the `bfl-server` `cause` endpoint.
pub fn json_causes(tree: &FaultTree, r: &CauseReport) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"observation\":{}",
        json_names(&r.observation.failed_names(tree))
    ));
    out.push_str(&format!(",\"failing\":{}", r.failing));
    out.push_str(&format!(",\"total\":{}", r.total));
    out.push_str(&format!(",\"truncated\":{}", r.truncated));
    out.push_str(",\"sets\":[");
    for (i, c) in r.causes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let events: Vec<&str> = c.events.iter().map(String::as_str).collect();
        out.push_str(&format!(
            "{{\"events\":{},\"witness\":{}}}",
            json_names(&events),
            json_names(&c.witness.failed_names(tree))
        ));
    }
    out.push_str("]}");
    out
}

/// Serialises a [`ProbInterval`] as `{"lo": …, "hi": …}` — the schema
/// shared by the report writers and the `bfl-server` `prob` endpoint.
pub fn json_interval(iv: &ProbInterval) -> String {
    format!("{{\"lo\":{},\"hi\":{}}}", iv.lo, iv.hi)
}

/// Serialises a Monte Carlo [`Estimate`] as a JSON object (same sharing
/// as [`json_interval`]).
pub fn json_estimate(e: &Estimate) -> String {
    format!(
        "{{\"point\":{},\"ci_lo\":{},\"ci_hi\":{},\"confidence\":{},\"samples\":{},\"hits\":{},\"trials\":{}}}",
        e.point, e.ci_lo, e.ci_hi, e.confidence, e.samples, e.hits, e.trials
    )
}

/// Serialises an importance table as a JSON array (rows in rank order).
/// A diverging RRW renders as `null` (JSON has no infinity).
pub fn json_importance(rows: &[EventImportance]) -> String {
    let parts: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"event\":{},\"probability\":{},\"birnbaum\":{},\"criticality\":{},\
                 \"fussell_vesely\":{},\"raw\":{},\"rrw\":{}}}",
                json_str(&r.event),
                r.probability,
                r.birnbaum,
                r.criticality,
                r.fussell_vesely,
                r.raw,
                r.rrw
                    .map(|x| x.to_string())
                    .unwrap_or_else(|| "null".into())
            )
        })
        .collect();
    format!("[{}]", parts.join(","))
}

/// Serialises a string as a JSON string literal with full escaping —
/// the same writer [`Report::to_json`] uses. Exposed so front-ends
/// (e.g. the CLI) emit valid JSON for arbitrary element names.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serialises a name list as a JSON array of escaped strings.
pub fn json_names(names: &[&str]) -> String {
    let parts: Vec<String> = names.iter().map(|n| json_str(n)).collect();
    format!("[{}]", parts.join(","))
}

/// Serialises a list of name sets as a JSON array of arrays (escaped).
pub fn json_name_sets(sets: &[Vec<String>]) -> String {
    let parts: Vec<String> = sets
        .iter()
        .map(|s| {
            let refs: Vec<&str> = s.iter().map(String::as_str).collect();
            json_names(&refs)
        })
        .collect();
    format!("[{}]", parts.join(","))
}

/// One human-readable importance-table line, shared by the report and
/// sweep renderers and the CLI.
pub fn importance_row(r: &EventImportance) -> String {
    format!(
        "{:<12} p={:<10.6} BB={:<12.6} CR={:<12.6} FV={:<12.6} RAW={:<10.4} RRW={}",
        r.event,
        r.probability,
        r.birnbaum,
        r.criticality,
        r.fussell_vesely,
        r.raw,
        r.rrw
            .map(|x| format!("{x:.4}"))
            .unwrap_or_else(|| "∞".into())
    )
}

/// Serialises [`EvalStats`] as a JSON object — the `stats` schema shared
/// by every report renderer and the `bfl-server` `stats` endpoint.
pub fn json_stats(s: &EvalStats) -> String {
    format!(
        "{{\"bdd_nodes\":{},\"arena_nodes\":{},\"cache_hits\":{},\"cache_misses\":{},\"duration_micros\":{}}}",
        s.bdd_nodes, s.arena_nodes, s.cache_hits, s.cache_misses, s.duration_micros
    )
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for o in &self.outcomes {
            writeln!(
                f,
                "{}  {}",
                if o.holds { "PASS" } else { "FAIL" },
                o.title()
            )?;
            for w in &o.witnesses {
                writeln!(f, "      witness {{{}}}", self.failed_names(w).join(", "))?;
            }
            for c in &o.counterexamples {
                writeln!(
                    f,
                    "      refuted by {{{}}}",
                    self.failed_names(c).join(", ")
                )?;
            }
            if let Some(Counterexample::Found(v)) = &o.counterexample {
                writeln!(
                    f,
                    "      counterexample {{{}}}",
                    self.failed_names(v).join(", ")
                )?;
            }
            if !o.shared_events.is_empty() {
                writeln!(f, "      shared events {{{}}}", o.shared_events.join(", "))?;
            }
            if let Some(p) = o.probability {
                writeln!(f, "      probability {p}")?;
            }
            if let Some(iv) = &o.interval {
                writeln!(f, "      probability in [{}, {}]", iv.lo, iv.hi)?;
            }
            if let Some(e) = &o.estimate {
                writeln!(
                    f,
                    "      probability ≈ {} ({:.0}% CI [{}, {}], {} samples)",
                    e.point,
                    e.confidence * 100.0,
                    e.ci_lo,
                    e.ci_hi,
                    e.samples
                )?;
            }
            for r in &o.importance {
                writeln!(f, "      {}", importance_row(r))?;
            }
            if let Some(r) = &o.causes {
                writeln!(
                    f,
                    "      observation {{{}}} {}",
                    self.failed_names(&r.observation).join(", "),
                    if r.failing {
                        "is failing"
                    } else {
                        "is not failing"
                    }
                )?;
                for c in &r.causes {
                    writeln!(
                        f,
                        "      cause {{{}}} · repaired {{{}}} no longer fails",
                        c.events.join(", "),
                        self.failed_names(&c.witness).join(", ")
                    )?;
                }
                if r.truncated {
                    writeln!(f, "      showing {} of {} causes", r.causes.len(), r.total)?;
                }
            }
        }
        writeln!(
            f,
            "{}/{} hold · {} arena nodes · {} cache hits / {} misses · {} µs",
            self.holding(),
            self.outcomes.len(),
            self.totals.arena_nodes,
            self.totals.cache_hits,
            self.totals.cache_misses,
            self.totals.duration_micros
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_labels_comments_and_vectors() {
        let spec = Spec::parse(
            "# header\n\
             P1: forall IS => MoT\n\
             \n\
             IDP(A, B)\n\
             P4: [IW, H3] MCS(\"CP/R\")\n\
             [] Top\n",
        )
        .unwrap();
        assert_eq!(spec.len(), 4);
        assert_eq!(spec.items[0].label.as_deref(), Some("P1"));
        assert!(matches!(spec.items[0].kind, SpecKind::Query(_)));
        assert_eq!(spec.items[1].label, None);
        match &spec.items[2].kind {
            SpecKind::Vector { failed, .. } => assert_eq!(failed, &["IW", "H3"]),
            other => panic!("{other:?}"),
        }
        match &spec.items[3].kind {
            SpecKind::Vector { failed, .. } => assert!(failed.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn evidence_colon_is_not_a_label() {
        let spec = Spec::parse("exists Top[A := 1]\n").unwrap();
        assert_eq!(spec.items[0].label, None);
    }

    #[test]
    fn parse_error_carries_line_number() {
        let err = Spec::parse("forall A => B\n\nP2: forall (((\n").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn parse_error_column_accounts_for_prefixes() {
        // Without a prefix the column is the parser's own.
        let base = Spec::parse("forall (((\n").unwrap_err();
        // A `P2: ` label shifts the same error 4 characters right.
        let labelled = Spec::parse("P2: forall (((\n").unwrap_err();
        assert_eq!(labelled.col, base.col + 4);
        // A `[A] ` vector prefix shifts a formula error past the bracket.
        let plain = Spec::parse("[] &\n").unwrap_err();
        let vectored = Spec::parse("[ABC] &\n").unwrap_err();
        assert_eq!(vectored.col, plain.col + 3);
    }

    #[test]
    fn display_round_trips() {
        let text = "P1: forall IS => MoT\n[IW, H3] MCS(IWoS)\n";
        let spec = Spec::parse(text).unwrap();
        let again = Spec::parse(&spec.to_string()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_names(&["x", "y"]), "[\"x\",\"y\"]");
    }
}
