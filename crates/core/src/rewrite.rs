//! Formula rewriting: desugaring to the paper's kernel grammar,
//! negation normal form and simplification.
//!
//! Section III-A of the paper presents `∨ ⇒ ≡ ≢ VOT▷◁k` as *syntactic
//! sugar* over the kernel `ϕ ::= e | ¬ϕ | ϕ∧ϕ | ϕ[e↦v] | MCS(ϕ)`;
//! [`desugar`] realises those definitions literally (including the
//! exact-subset expansion of the voting operator), and the test-suite
//! proves semantic equivalence through BDD canonicity: a formula and its
//! rewriting compile to the *same* diagram.

use std::sync::Arc;

use crate::ast::{CmpOp, Formula};

/// Rewrites a formula into the kernel grammar
/// `e | ¬ϕ | ϕ∧ϕ | ϕ[e↦v] | MCS(ϕ) | MPS(ϕ) | const`, expanding all
/// sugar by the definitions of Section III-A:
///
/// ```text
/// ϕ1 ∨ ϕ2 ::= ¬(¬ϕ1 ∧ ¬ϕ2)        ϕ1 ⇒ ϕ2 ::= ¬(ϕ1 ∧ ¬ϕ2)
/// ϕ1 ≡ ϕ2 ::= (ϕ1⇒ϕ2) ∧ (ϕ2⇒ϕ1)   ϕ1 ≢ ϕ2 ::= ¬(ϕ1 ≡ ϕ2)
/// VOT▷◁k(ϕ1,…,ϕN) ::= ⋁_{U:|U|▷◁k} (⋀_{u∈U} ϕu ∧ ⋀_{u∉U} ¬ϕu)
/// ```
///
/// The `VOT` expansion enumerates all `2^N` subsets (as in the paper);
/// use the model checker's native threshold translation for large `N`.
///
/// # Panics
///
/// Panics if a `VOT` operator has more than 20 operands.
pub fn desugar(phi: &Formula) -> Formula {
    match phi {
        Formula::Const(_) | Formula::Atom(_) => phi.clone(),
        Formula::Not(a) => desugar(a).not(),
        Formula::And(a, b) => desugar(a).and(desugar(b)),
        // ϕ1 ∨ ϕ2 ::= ¬(¬ϕ1 ∧ ¬ϕ2)
        Formula::Or(a, b) => desugar(a).not().and(desugar(b).not()).not(),
        // ϕ1 ⇒ ϕ2 ::= ¬(ϕ1 ∧ ¬ϕ2)
        Formula::Implies(a, b) => desugar(a).and(desugar(b).not()).not(),
        // ϕ1 ≡ ϕ2 ::= (ϕ1⇒ϕ2) ∧ (ϕ2⇒ϕ1)
        Formula::Iff(a, b) => {
            let da = desugar(a);
            let db = desugar(b);
            let fwd = da.clone().and(db.clone().not()).not();
            let bwd = db.and(da.not()).not();
            fwd.and(bwd)
        }
        // ϕ1 ≢ ϕ2 ::= ¬(ϕ1 ≡ ϕ2)
        Formula::Neq(a, b) => desugar(&Formula::Iff(a.clone(), b.clone())).not(),
        Formula::Evidence {
            inner,
            element,
            value,
        } => Formula::Evidence {
            inner: Arc::new(desugar(inner)),
            element: element.clone(),
            value: *value,
        },
        Formula::Mcs(a) => desugar(a).mcs(),
        Formula::Mps(a) => desugar(a).mps(),
        Formula::Vot { op, k, operands } => {
            let n = operands.len();
            assert!(n <= 20, "VOT expansion limited to 20 operands");
            let desugared: Vec<Formula> = operands.iter().map(desugar).collect();
            let mut terms = Vec::new();
            for mask in 0..(1u32 << n) {
                let size = mask.count_ones();
                if !op.compare(size, *k) {
                    continue;
                }
                // ⋀_{u∈U} ϕu ∧ ⋀_{u∉U} ¬ϕu — the paper's exact expansion.
                let lits = (0..n).map(|i| {
                    if (mask >> i) & 1 == 1 {
                        desugared[i].clone()
                    } else {
                        desugared[i].clone().not()
                    }
                });
                terms.push(Formula::and_all(lits));
            }
            // ⋁ over the selected subsets, itself desugared to ¬(∧¬).
            match terms.len() {
                0 => Formula::bot(),
                _ => {
                    let negated = terms.into_iter().map(Formula::not);
                    Formula::and_all(negated).not()
                }
            }
        }
    }
}

/// Negation normal form: negations pushed down to atoms over
/// `∧/∨/⇒/≡/≢`. `MCS`, `MPS` and evidence are opaque barriers (their
/// negations stay put); `VOT` negation flips the comparison operator.
pub fn to_nnf(phi: &Formula) -> Formula {
    nnf(phi, false)
}

fn nnf(phi: &Formula, negate: bool) -> Formula {
    match phi {
        Formula::Const(c) => Formula::Const(*c != negate),
        Formula::Atom(_) => {
            if negate {
                phi.clone().not()
            } else {
                phi.clone()
            }
        }
        Formula::Not(a) => nnf(a, !negate),
        Formula::And(a, b) => {
            if negate {
                nnf(a, true).or(nnf(b, true))
            } else {
                nnf(a, false).and(nnf(b, false))
            }
        }
        Formula::Or(a, b) => {
            if negate {
                nnf(a, true).and(nnf(b, true))
            } else {
                nnf(a, false).or(nnf(b, false))
            }
        }
        Formula::Implies(a, b) => {
            if negate {
                nnf(a, false).and(nnf(b, true))
            } else {
                nnf(a, true).or(nnf(b, false))
            }
        }
        Formula::Iff(a, b) => {
            // ¬(a ≡ b) = a ≢ b; keep the dedicated connectives.
            let na = nnf(a, false);
            let nb = nnf(b, false);
            if negate {
                na.neq(nb)
            } else {
                na.iff(nb)
            }
        }
        Formula::Neq(a, b) => {
            let na = nnf(a, false);
            let nb = nnf(b, false);
            if negate {
                na.iff(nb)
            } else {
                na.neq(nb)
            }
        }
        Formula::Vot { op, k, operands } => {
            let ops: Vec<Formula> = operands.iter().map(|o| nnf(o, false)).collect();
            let (op, k) = if negate {
                // ¬(count ▷◁ k) flips the comparison.
                match op {
                    CmpOp::Lt => (CmpOp::Ge, *k),
                    CmpOp::Le => (CmpOp::Gt, *k),
                    CmpOp::Ge => (CmpOp::Lt, *k),
                    CmpOp::Gt => (CmpOp::Le, *k),
                    CmpOp::Eq => {
                        // ¬(= k) has no single comparison; wrap instead.
                        return Formula::vot(CmpOp::Eq, *k, ops).not();
                    }
                }
            } else {
                (*op, *k)
            };
            Formula::vot(op, k, ops)
        }
        Formula::Evidence {
            inner,
            element,
            value,
        } => {
            // ¬(ϕ[e↦v]) ≡ (¬ϕ)[e↦v]: evidence commutes with negation.
            Formula::Evidence {
                inner: Arc::new(nnf(inner, negate)),
                element: element.clone(),
                value: *value,
            }
        }
        Formula::Mcs(_) | Formula::Mps(_) => {
            let inner = match phi {
                Formula::Mcs(a) => nnf(a, false).mcs(),
                Formula::Mps(a) => nnf(a, false).mps(),
                _ => unreachable!(),
            };
            if negate {
                inner.not()
            } else {
                inner
            }
        }
    }
}

/// Bottom-up simplification: constant folding, double-negation and
/// idempotence/absorption with syntactically equal operands. Purely
/// syntactic — semantic equivalence is guaranteed (checked against the
/// BDD translation in the tests) but no canonical form is promised.
pub fn simplify(phi: &Formula) -> Formula {
    match phi {
        Formula::Const(_) | Formula::Atom(_) => phi.clone(),
        Formula::Not(a) => match simplify(a) {
            Formula::Const(c) => Formula::Const(!c),
            Formula::Not(inner) => (*inner).clone(),
            s => s.not(),
        },
        Formula::And(a, b) => match (simplify(a), simplify(b)) {
            (Formula::Const(false), _) | (_, Formula::Const(false)) => Formula::bot(),
            (Formula::Const(true), s) | (s, Formula::Const(true)) => s,
            (x, y) if x == y => x,
            (x, y) => x.and(y),
        },
        Formula::Or(a, b) => match (simplify(a), simplify(b)) {
            (Formula::Const(true), _) | (_, Formula::Const(true)) => Formula::top(),
            (Formula::Const(false), s) | (s, Formula::Const(false)) => s,
            (x, y) if x == y => x,
            (x, y) => x.or(y),
        },
        Formula::Implies(a, b) => match (simplify(a), simplify(b)) {
            (Formula::Const(false), _) | (_, Formula::Const(true)) => Formula::top(),
            (Formula::Const(true), s) => s,
            (s, Formula::Const(false)) => s.not(),
            (x, y) if x == y => Formula::top(),
            (x, y) => x.implies(y),
        },
        Formula::Iff(a, b) => match (simplify(a), simplify(b)) {
            (Formula::Const(true), s) | (s, Formula::Const(true)) => s,
            (Formula::Const(false), s) | (s, Formula::Const(false)) => s.not(),
            (x, y) if x == y => Formula::top(),
            (x, y) => x.iff(y),
        },
        Formula::Neq(a, b) => match (simplify(a), simplify(b)) {
            (Formula::Const(false), s) | (s, Formula::Const(false)) => s,
            (Formula::Const(true), s) | (s, Formula::Const(true)) => s.not(),
            (x, y) if x == y => Formula::bot(),
            (x, y) => x.neq(y),
        },
        Formula::Evidence {
            inner,
            element,
            value,
        } => {
            let s = simplify(inner);
            match s {
                // Evidence on a constant is vacuous.
                Formula::Const(_) => s,
                _ => Formula::Evidence {
                    inner: Arc::new(s),
                    element: element.clone(),
                    value: *value,
                },
            }
        }
        Formula::Mcs(a) => simplify(a).mcs(),
        Formula::Mps(a) => simplify(a).mps(),
        Formula::Vot { op, k, operands } => {
            let ops: Vec<Formula> = operands.iter().map(simplify).collect();
            Formula::vot(*op, *k, ops)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelChecker;
    use bfl_fault_tree::corpus;

    /// Semantic equivalence via BDD canonicity.
    fn equivalent(phi: &Formula, psi: &Formula) -> bool {
        let tree = corpus::covid();
        let mut mc = ModelChecker::new(&tree);
        mc.formula_bdd(phi).unwrap() == mc.formula_bdd(psi).unwrap()
    }

    #[test]
    fn desugar_removes_sugar() {
        let phi =
            crate::parser::parse_formula("IS => MoT | VOT(>=2; H1, H2, H3) <=> CT != SH").unwrap();
        let kernel = desugar(&phi);
        // Only kernel connectives remain.
        kernel.visit(&mut |f| {
            assert!(
                !matches!(
                    f,
                    Formula::Or(..)
                        | Formula::Implies(..)
                        | Formula::Iff(..)
                        | Formula::Neq(..)
                        | Formula::Vot { .. }
                ),
                "sugar survived: {f}"
            );
        });
        assert!(equivalent(&phi, &kernel));
    }

    #[test]
    fn desugar_vot_matches_native_translation() {
        for (op, k) in [
            (CmpOp::Ge, 2),
            (CmpOp::Le, 1),
            (CmpOp::Eq, 2),
            (CmpOp::Lt, 3),
            (CmpOp::Gt, 0),
        ] {
            let phi = Formula::vot(op, k, ["H1", "H2", "H3"].map(Formula::atom));
            assert!(equivalent(&phi, &desugar(&phi)), "{op:?} {k}");
        }
    }

    #[test]
    fn nnf_pushes_negations() {
        let phi = crate::parser::parse_formula("!(IS & !(MoT | CT))").unwrap();
        let n = to_nnf(&phi);
        // Negations only in front of atoms (or minimality operators).
        n.visit(&mut |f| {
            if let Formula::Not(inner) = f {
                assert!(
                    matches!(
                        **inner,
                        Formula::Atom(_) | Formula::Mcs(_) | Formula::Mps(_)
                    ),
                    "negation above {inner}"
                );
            }
        });
        assert!(equivalent(&phi, &n));
    }

    #[test]
    fn nnf_flips_vot_comparisons() {
        let phi = Formula::vot(CmpOp::Ge, 2, ["H1", "H2", "H3"].map(Formula::atom)).not();
        let n = to_nnf(&phi);
        assert!(matches!(n, Formula::Vot { op: CmpOp::Lt, .. }));
        assert!(equivalent(&phi, &n));
    }

    #[test]
    fn nnf_commutes_with_evidence() {
        let phi = Formula::atom("MoT").with_evidence("H1", true).not();
        let n = to_nnf(&phi);
        assert!(matches!(n, Formula::Evidence { .. }));
        assert!(equivalent(&phi, &n));
    }

    #[test]
    fn simplify_constants() {
        let cases = [
            ("IS & true", "IS"),
            ("IS & false", "false"),
            ("IS | true", "true"),
            ("!!IS", "IS"),
            ("IS & IS", "IS"),
            ("IS => IS", "true"),
            ("IS != IS", "false"),
            ("true => MoT", "MoT"),
        ];
        for (src, expect) in cases {
            let phi = crate::parser::parse_formula(src).unwrap();
            let simplified = simplify(&phi);
            let expected = crate::parser::parse_formula(expect).unwrap();
            assert_eq!(simplified, expected, "{src}");
        }
    }

    #[test]
    fn simplify_preserves_semantics() {
        for src in [
            "!(IS & true) | (MoT & MoT)",
            "MCS(IWoS & true) & !false",
            "(IS <=> true) != false",
            "VOT(>=1; H1 & true, H2 | false)",
        ] {
            let phi = crate::parser::parse_formula(src).unwrap();
            assert!(equivalent(&phi, &simplify(&phi)), "{src}");
        }
    }
}
