//! Counterexample patterns — Definition 8 and Table I of Section VI.
//!
//! A *pattern* is a BFL formula with non-terminal placeholders; a pattern
//! *matches* a formula when instantiating the placeholders yields that
//! formula. The paper presents four patterns for the minimality operators:
//!
//! | id | shape |
//! |----|-------|
//! | 1  | `MCS(ϕ)` |
//! | 2  | `MPS(ϕ)` |
//! | 3  | `MCS(ϕ1) ∧ … ∧ MCS(ϕn)` |
//! | 4  | `MPS(ϕ1) ∧ … ∧ MPS(ϕn)` |
//!
//! [`table1_rows`] returns the concrete instantiations of Table I on the
//! five-element tree of Section VI, together with the example vectors and
//! the counterexamples printed in the paper.

use bfl_fault_tree::{corpus, FaultTree, StatusVector};

use crate::ast::Formula;

/// The four counterexample patterns of Section VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// `pattern1 ::= MCS(ϕ)`.
    Mcs,
    /// `pattern2 ::= MPS(ϕ)`.
    Mps,
    /// `pattern3 ::= MCS(ϕ1) ∧ … ∧ MCS(ϕn)`.
    McsConjunction,
    /// `pattern4 ::= MPS(ϕ1) ∧ … ∧ MPS(ϕn)`.
    MpsConjunction,
}

impl Pattern {
    /// Instantiates the pattern with operand formulae.
    ///
    /// Patterns 1 and 2 use only the first operand; patterns 3 and 4
    /// build the conjunction of all of them.
    ///
    /// # Panics
    ///
    /// Panics if `operands` is empty.
    pub fn instantiate(self, operands: Vec<Formula>) -> Formula {
        assert!(!operands.is_empty(), "a pattern needs at least one operand");
        match self {
            Pattern::Mcs => operands
                .into_iter()
                .next()
                .unwrap_or_else(|| unreachable!("non-empty"))
                .mcs(),
            Pattern::Mps => operands
                .into_iter()
                .next()
                .unwrap_or_else(|| unreachable!("non-empty"))
                .mps(),
            Pattern::McsConjunction => Formula::and_all(operands.into_iter().map(Formula::mcs)),
            Pattern::MpsConjunction => Formula::and_all(operands.into_iter().map(Formula::mps)),
        }
    }

    /// Definition 8: does this pattern *match* the formula, i.e. can the
    /// formula be generated from the pattern by filling the placeholders?
    pub fn matches(self, phi: &Formula) -> bool {
        match self {
            Pattern::Mcs => matches!(phi, Formula::Mcs(_)),
            Pattern::Mps => matches!(phi, Formula::Mps(_)),
            Pattern::McsConjunction => conjunction_of(phi, &|f| matches!(f, Formula::Mcs(_))),
            Pattern::MpsConjunction => conjunction_of(phi, &|f| matches!(f, Formula::Mps(_))),
        }
    }

    /// Short identifier as used in the paper (`pattern1` … `pattern4`).
    pub fn name(self) -> &'static str {
        match self {
            Pattern::Mcs => "pattern1",
            Pattern::Mps => "pattern2",
            Pattern::McsConjunction => "pattern3",
            Pattern::MpsConjunction => "pattern4",
        }
    }
}

/// Whether `phi` is a non-empty conjunction whose leaves all satisfy
/// `leaf` (a single satisfying leaf counts as a 1-ary conjunction).
fn conjunction_of(phi: &Formula, leaf: &dyn Fn(&Formula) -> bool) -> bool {
    match phi {
        Formula::And(a, b) => conjunction_of(a, leaf) && conjunction_of(b, leaf),
        other => leaf(other),
    }
}

/// One row of Table I: a pattern instance on the Section VI tree, the
/// example vector (over `(e2, e4, e5)`) and the counterexample vector
/// printed in the paper.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Which pattern the row exemplifies.
    pub pattern: Pattern,
    /// The instantiated example formula `χ`.
    pub formula: Formula,
    /// The example vector `b` (which does not satisfy `χ`).
    pub example: StatusVector,
    /// The counterexample `b′` as printed in the paper.
    pub paper_counterexample: StatusVector,
    /// Whether the row needs the support-relative minimality scope (see
    /// [`crate::MinimalityScope`]); true exactly for pattern 3, whose
    /// formula is unsatisfiable under the formal global-universe
    /// semantics.
    pub needs_support_scope: bool,
}

/// The tree of Section VI (`e1 = AND(e2, e3)`, `e3 = OR(e4, e5)`) that
/// Table I is evaluated on.
pub fn table1_tree() -> FaultTree {
    corpus::table1_tree()
}

/// The six rows of Table I.
pub fn table1_rows() -> Vec<Table1Row> {
    let v = |bits: [u8; 3]| StatusVector::from_bits(bits.map(|b| b == 1));
    let e1 = || Formula::atom("e1");
    let e3 = || Formula::atom("e3");
    vec![
        Table1Row {
            pattern: Pattern::Mcs,
            formula: Pattern::Mcs.instantiate(vec![e1()]),
            example: v([0, 1, 0]),
            paper_counterexample: v([1, 1, 0]),
            needs_support_scope: false,
        },
        Table1Row {
            pattern: Pattern::Mcs,
            formula: Pattern::Mcs.instantiate(vec![e1()]),
            example: v([1, 1, 1]),
            paper_counterexample: v([1, 0, 1]),
            needs_support_scope: false,
        },
        Table1Row {
            pattern: Pattern::Mps,
            formula: Pattern::Mps.instantiate(vec![e1()]),
            example: v([1, 0, 1]),
            paper_counterexample: v([1, 0, 0]),
            needs_support_scope: false,
        },
        Table1Row {
            pattern: Pattern::Mps,
            formula: Pattern::Mps.instantiate(vec![e1()]),
            example: v([0, 0, 0]),
            paper_counterexample: v([0, 1, 1]),
            needs_support_scope: false,
        },
        Table1Row {
            pattern: Pattern::McsConjunction,
            formula: Pattern::McsConjunction.instantiate(vec![e1(), e3()]),
            example: v([0, 1, 0]),
            paper_counterexample: v([1, 1, 0]),
            needs_support_scope: true,
        },
        Table1Row {
            pattern: Pattern::MpsConjunction,
            formula: Pattern::MpsConjunction.instantiate(vec![e1(), e3()]),
            example: v([1, 0, 1]),
            paper_counterexample: v([1, 0, 0]),
            needs_support_scope: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{MinimalityScope, ModelChecker};
    use crate::counterexample::{counterexample, is_valid_counterexample, Counterexample};

    #[test]
    fn instantiation_shapes() {
        let f = Pattern::McsConjunction.instantiate(vec![Formula::atom("a"), Formula::atom("b")]);
        assert_eq!(f.to_string(), "MCS(a) & MCS(b)");
        let g = Pattern::Mps.instantiate(vec![Formula::atom("a")]);
        assert_eq!(g.to_string(), "MPS(a)");
    }

    #[test]
    fn matching_per_definition_8() {
        let a = Formula::atom("a");
        assert!(Pattern::Mcs.matches(&a.clone().mcs()));
        assert!(!Pattern::Mcs.matches(&a.clone().mps()));
        let conj = a.clone().mcs().and(Formula::atom("b").mcs());
        assert!(Pattern::McsConjunction.matches(&conj));
        assert!(!Pattern::MpsConjunction.matches(&conj));
        // A lone MCS also matches the conjunction pattern (n = 1).
        assert!(Pattern::McsConjunction.matches(&a.clone().mcs()));
        let mixed = a.clone().mcs().and(Formula::atom("b").mps());
        assert!(!Pattern::McsConjunction.matches(&mixed));
    }

    #[test]
    fn all_rows_yield_valid_counterexamples() {
        let tree = table1_tree();
        for (i, row) in table1_rows().iter().enumerate() {
            let mut mc = ModelChecker::new(&tree);
            if row.needs_support_scope {
                mc.set_minimality_scope(MinimalityScope::FormulaSupport);
            }
            // The example vector does not satisfy the formula…
            assert!(!mc.holds(&row.example, &row.formula).unwrap(), "row {i}");
            // …the paper's counterexample does and is Def.-7 minimal…
            assert!(
                is_valid_counterexample(
                    &mut mc,
                    &row.example,
                    &row.paper_counterexample,
                    &row.formula
                )
                .unwrap(),
                "row {i}: paper counterexample invalid"
            );
            // …and Algorithm 4 produces a (possibly different) valid one.
            match counterexample(&mut mc, &row.example, &row.formula).unwrap() {
                Counterexample::Found(ours) => {
                    assert!(
                        is_valid_counterexample(&mut mc, &row.example, &ours, &row.formula)
                            .unwrap(),
                        "row {i}: our counterexample invalid"
                    );
                }
                other => panic!("row {i}: expected counterexample, got {other:?}"),
            }
        }
    }

    #[test]
    fn pattern3_requires_support_scope() {
        let tree = table1_tree();
        let row = &table1_rows()[4];
        assert!(row.needs_support_scope);
        let mut mc = ModelChecker::new(&tree);
        // Under the formal semantics the conjunction is unsatisfiable.
        assert_eq!(
            counterexample(&mut mc, &row.example, &row.formula).unwrap(),
            Counterexample::Unsatisfiable
        );
    }

    #[test]
    fn names_are_paper_names() {
        assert_eq!(Pattern::Mcs.name(), "pattern1");
        assert_eq!(Pattern::MpsConjunction.name(), "pattern4");
    }
}
