//! The `AnalysisSession` engine — an owned, thread-safe, batch-first
//! façade over the whole BFL stack.
//!
//! The paper's workflow is *session-shaped*: one fault tree, many
//! layer-1/layer-2 questions, with Algorithms 1–3 explicitly designed to
//! share BDD translations across questions. [`AnalysisSession`] is that
//! workflow as a type:
//!
//! * **owned** — the session holds its tree behind an
//!   [`Arc<FaultTree>`], so it has no borrow lifetime and moves freely
//!   across threads and into services;
//! * **thread-safe** — `AnalysisSession: Send + Sync`; interior
//!   mutability of the shared BDD caches is a private [`Mutex`];
//! * **configurable** — [`SessionBuilder`] selects the BDD variable
//!   ordering, the `MCS`/`MPS` minimality scope, the cut-set
//!   [`Backend`] and probability annotations up front;
//! * **batch-first** — [`AnalysisSession::run`] evaluates a whole
//!   [`Spec`] in one pass over shared caches, and every question returns
//!   a structured [`Outcome`] (verdict, witness vectors, counterexample,
//!   [`EvalStats`]) instead of a bare `bool`.
//!
//! [`ModelChecker`] remains the internal workhorse (Algorithms 1–3); the
//! session wraps one and layers batch evaluation, backend dispatch,
//! statistics and probability on top.
//!
//! # Migration from `ModelChecker`
//!
//! | before (lifetime-bound)             | after (owned)                          |
//! |-------------------------------------|----------------------------------------|
//! | `ModelChecker::new(&tree)`          | `AnalysisSession::new(tree)`           |
//! | `mc.check_query(&q)? -> bool`       | `s.check_query(&q)?.holds` + stats     |
//! | `mc.holds(&b, &phi)?`               | `s.check_vector(&b, &phi)?.holds`      |
//! | `counterexample(&mut mc, &b, &phi)` | `s.counterexample(&b, &phi)?`          |
//! | `mc.minimal_cut_sets("Top")`        | `s.minimal_cut_sets("Top")?` (backend) |
//! | `zdd_engine::minimal_cut_sets_zdd`  | `.backend(Backend::Zdd)` at build time |
//! | per-query loops                     | `s.run(&spec)? -> Report`              |
//!
//! # Example
//!
//! ```
//! use bfl_core::engine::{AnalysisSession, Backend};
//! use bfl_core::report::Spec;
//! use bfl_fault_tree::corpus;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let session = AnalysisSession::builder()
//!     .backend(Backend::Zdd)
//!     .build(corpus::covid());
//!
//! // One question, structured result:
//! let q = bfl_core::parser::parse_query("forall IS => MoT")?;
//! let outcome = session.check_query(&q)?;
//! assert!(!outcome.holds);
//! assert!(!outcome.counterexamples.is_empty());
//!
//! // A whole batch in one pass over shared caches:
//! let spec = Spec::parse("P1: forall IS => MoT\nP9: SUP(PP)\n")?;
//! let report = session.run(&spec)?;
//! assert_eq!(report.outcomes.len(), 2);
//! assert!(report.totals.cache_hits > 0); // `IS => MoT` shares sub-BDDs
//! # Ok(())
//! # }
//! ```

use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex, MutexGuard, Weak};
use std::time::Instant;

use bfl_bdd::{GcStats, SiftStats};
use bfl_fault_tree::{prob, FaultTree, StatusVector, VariableOrdering};

pub use bfl_fault_tree::backend::{Backend, CutSetEngine};

use crate::ast::{Formula, Query};
use crate::checker::{MinimalityScope, ModelChecker};
use crate::counterexample::{counterexample, Counterexample, CounterexampleSet};
use crate::error::BflError;
use crate::lint;
use crate::plan::{ConstructionReport, PlanRoots, PreparedQuery};
use crate::quant;
use crate::report::{EvalStats, Outcome, Report, Spec, SpecItem, SpecKind};
use crate::uncertainty::{self, Method, ProbInterval, ProbValue};

/// When the session runs dynamic BDD maintenance (sifting reordering and
/// garbage collection) over the shared manager.
///
/// Whatever the policy, maintenance only ever runs *between* operations
/// — never inside one — and every retained handle (element and formula
/// caches, prepared-query roots) is remapped through each collection, so
/// results are bit-identical to the static path (asserted by
/// `tests/reorder_gc.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ReorderPolicy {
    /// Never reorder; the static [`VariableOrdering`] is final. Garbage
    /// collection may still run if enabled via [`SessionBuilder::gc`].
    #[default]
    None,
    /// Sift once after every [`AnalysisSession::prepare`] (recorded in
    /// the prepared query's [`Plan`](crate::plan::Plan)), and whenever
    /// the arena-growth trigger of [`ReorderPolicy::auto`] fires.
    OnPrepare,
    /// Sift (and collect, when GC is enabled) whenever the arena has
    /// grown by `growth_factor` (> 1) since the last maintenance.
    Auto {
        /// Arena growth factor that triggers maintenance (e.g. `2.0` =
        /// maintain when the arena doubles).
        growth_factor: f64,
    },
}

impl ReorderPolicy {
    /// The default automatic policy: maintain when the arena doubles.
    pub const fn auto() -> Self {
        ReorderPolicy::Auto { growth_factor: 2.0 }
    }

    /// `true` unless the policy is [`ReorderPolicy::None`].
    pub fn is_active(self) -> bool {
        !matches!(self, ReorderPolicy::None)
    }
}

/// The outcome of one maintenance run ([`AnalysisSession::maintain`] or
/// an automatic trigger): live sizes around the run plus the individual
/// GC/sift statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MaintenanceReport {
    /// Live nodes (reachable from every cache and prepared root) before.
    pub live_before: usize,
    /// Live nodes after.
    pub live_after: usize,
    /// Merged statistics of the collections run (pre- and post-sift),
    /// `None` when GC was off for this run.
    pub gc: Option<GcStats>,
    /// Sifting statistics, `None` when reordering was off for this run.
    pub sift: Option<SiftStats>,
}

/// Cumulative maintenance counters of one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MaintenanceStats {
    /// Garbage collections run.
    pub gc_runs: u64,
    /// Sifting passes run.
    pub sift_runs: u64,
    /// Total nodes reclaimed by GC.
    pub nodes_collected: u64,
    /// Total adjacent-level swaps performed by sifting.
    pub swaps: u64,
    /// Arena audits run (one per maintenance cycle; see
    /// [`bfl_bdd::Manager::audit`]).
    pub audits_run: u64,
    /// Total invariant violations the audits found (always `0` for a
    /// healthy engine; debug builds panic inside the maintenance
    /// primitives before this counter could move).
    pub audit_violations: u64,
}

/// Cumulative Monte Carlo sampler counters of one session (see
/// [`AnalysisSession::sampler_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SamplerStats {
    /// Monte Carlo estimations run (session calls, prepared plans and
    /// sweeps alike).
    pub runs: u64,
    /// Total status vectors drawn across all runs.
    pub samples: u64,
}

/// Lock-free accumulator behind [`SamplerStats`].
#[derive(Debug, Default)]
pub(crate) struct SamplerCounters {
    runs: AtomicU64,
    samples: AtomicU64,
}

impl SamplerCounters {
    pub(crate) fn record(&self, samples: u64) {
        self.runs.fetch_add(1, AtomicOrdering::Relaxed);
        self.samples.fetch_add(samples, AtomicOrdering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> SamplerStats {
        SamplerStats {
            runs: self.runs.load(AtomicOrdering::Relaxed),
            samples: self.samples.load(AtomicOrdering::Relaxed),
        }
    }
}

/// Growth bookkeeping behind the automatic triggers.
#[derive(Debug)]
struct MaintenanceState {
    /// Arena size right after the last maintenance (or at build time).
    last_arena: usize,
    totals: MaintenanceStats,
}

/// Arenas smaller than this never auto-trigger (the fixed cost would
/// dwarf the gain).
const AUTO_MIN_ARENA: usize = 1 << 12;

/// Worker threads for Monte Carlo estimation started from session-level
/// entry points (sweep workers sample single-threaded instead — the
/// sweep already owns the cores).
pub(crate) fn default_mc_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Configures and builds an [`AnalysisSession`].
///
/// Every knob has a sensible default; `build` is infallible.
///
/// ```
/// use bfl_core::engine::{AnalysisSession, Backend};
/// use bfl_core::MinimalityScope;
/// use bfl_fault_tree::{corpus, VariableOrdering};
///
/// let session = AnalysisSession::builder()
///     .ordering(VariableOrdering::BouissouWeight)
///     .minimality_scope(MinimalityScope::FormulaSupport)
///     .backend(Backend::Paper)
///     .witness_limit(5)
///     .build(corpus::fig1());
/// assert_eq!(session.backend(), Backend::Paper);
/// ```
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    ordering: VariableOrdering,
    scope: MinimalityScope,
    backend: Backend,
    witness_limit: usize,
    probabilities: Option<Vec<Option<f64>>>,
    intervals: Option<Vec<Option<ProbInterval>>>,
    method: Method,
    /// `None` = derive from the ordering (`Sifted` ⇒ [`ReorderPolicy::auto`]).
    reorder: Option<ReorderPolicy>,
    /// `None` = enable GC exactly when the reorder policy is active.
    gc: Option<bool>,
    parallelism: usize,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder {
            ordering: VariableOrdering::DfsPreorder,
            scope: MinimalityScope::default(),
            backend: Backend::default(),
            witness_limit: 3,
            probabilities: None,
            intervals: None,
            method: Method::Exact,
            reorder: None,
            gc: None,
            parallelism: 1,
        }
    }
}

impl SessionBuilder {
    /// A builder with all defaults (DFS ordering, global-universe scope,
    /// `minsol` backend, witness limit 3, no probabilities).
    pub fn new() -> Self {
        SessionBuilder::default()
    }

    /// The BDD variable ordering.
    pub fn ordering(mut self, ordering: VariableOrdering) -> Self {
        self.ordering = ordering;
        self
    }

    /// The `MCS`/`MPS` minimality scope (see [`MinimalityScope`]).
    pub fn minimality_scope(mut self, scope: MinimalityScope) -> Self {
        self.scope = scope;
        self
    }

    /// The cut-set backend used by [`AnalysisSession::minimal_cut_sets`]
    /// and [`AnalysisSession::minimal_path_sets`].
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Maximum number of witness / refuting vectors attached to each
    /// [`Outcome`] (default 3; `0` disables witness extraction).
    pub fn witness_limit(mut self, limit: usize) -> Self {
        self.witness_limit = limit;
        self
    }

    /// Per-basic-event failure probabilities (basic-index order, `None`
    /// for unannotated events), e.g. from
    /// [`galileo::GalileoModel`](bfl_fault_tree::galileo::GalileoModel).
    pub fn probabilities(mut self, probabilities: Vec<Option<f64>>) -> Self {
        self.probabilities = Some(probabilities);
        self
    }

    /// Per-basic-event failure-probability **intervals** (basic-index
    /// order, `None` for events without a `prob=lo..hi` annotation),
    /// e.g. from
    /// [`galileo::GalileoModel::intervals`](bfl_fault_tree::galileo::GalileoModel).
    ///
    /// An event carries a point *or* an interval, never both; the
    /// interval path widens points to degenerate `[p, p]` intervals,
    /// while exact evaluation rejects any session holding intervals with
    /// [`BflError::IntervalProbabilities`].
    pub fn intervals(mut self, intervals: Vec<Option<ProbInterval>>) -> Self {
        self.intervals = Some(intervals);
        self
    }

    /// The default evaluation [`Method`] for probability queries
    /// (default [`Method::Exact`]); individual calls can override it.
    ///
    /// ```
    /// use bfl_core::engine::AnalysisSession;
    /// use bfl_core::uncertainty::Method;
    /// use bfl_fault_tree::corpus;
    ///
    /// let session = AnalysisSession::builder()
    ///     .probabilities(vec![Some(0.1), Some(0.2)])
    ///     .method(Method::mc())
    ///     .build(corpus::or2());
    /// assert_eq!(session.method().name(), "mc");
    /// ```
    pub fn method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// The dynamic-reordering policy (default: [`ReorderPolicy::None`],
    /// unless the ordering is [`VariableOrdering::Sifted`], which implies
    /// [`ReorderPolicy::auto`]).
    ///
    /// ```
    /// use bfl_core::engine::{AnalysisSession, ReorderPolicy};
    /// use bfl_fault_tree::corpus;
    ///
    /// let session = AnalysisSession::builder()
    ///     .reorder(ReorderPolicy::OnPrepare)
    ///     .gc(true)
    ///     .build(corpus::covid());
    /// assert_eq!(session.reorder_policy(), ReorderPolicy::OnPrepare);
    /// assert!(session.gc_enabled());
    /// ```
    pub fn reorder(mut self, policy: ReorderPolicy) -> Self {
        self.reorder = Some(policy);
        self
    }

    /// Enables or disables mark-and-sweep garbage collection at
    /// maintenance points (default: enabled exactly when the reorder
    /// policy is active).
    pub fn gc(mut self, enabled: bool) -> Self {
        self.gc = Some(enabled);
        self
    }

    /// Worker threads for the initial BDD construction (default 1).
    ///
    /// With `n > 1` the session compiles every element translation
    /// eagerly at build time, farming the tree's independent modules out
    /// to up to `n` threads with private arenas and stitching the results
    /// into the session arena
    /// (see [`ModelChecker::compile_parallel`]). ROBDD canonicity makes
    /// the result node-for-node identical to the lazy sequential compile;
    /// the construction record surfaces via
    /// [`AnalysisSession::construction_report`] and in every
    /// [`Plan`](crate::plan::Plan).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn parallelism(mut self, n: usize) -> Self {
        assert!(n >= 1, "parallelism must be at least 1");
        self.parallelism = n;
        self
    }

    /// Builds the session. Accepts a `FaultTree` by value or an existing
    /// `Arc<FaultTree>`.
    ///
    /// # Panics
    ///
    /// Panics if probabilities (or intervals) were given and their
    /// length differs from the tree's basic-event count.
    pub fn build(self, tree: impl Into<Arc<FaultTree>>) -> AnalysisSession {
        let tree: Arc<FaultTree> = tree.into();
        if let Some(p) = &self.probabilities {
            assert_eq!(
                p.len(),
                tree.num_basic_events(),
                "one probability slot per basic event"
            );
        }
        if let Some(iv) = &self.intervals {
            assert_eq!(
                iv.len(),
                tree.num_basic_events(),
                "one interval slot per basic event"
            );
        }
        let mut checker = ModelChecker::from_arc(Arc::clone(&tree), self.ordering);
        checker.set_minimality_scope(self.scope);
        let construction = if self.parallelism > 1 {
            let stats = checker.compile_parallel(self.parallelism);
            Some(ConstructionReport::from_stats(&tree, &stats))
        } else {
            None
        };
        let reorder = self.reorder.unwrap_or(if self.ordering.is_dynamic() {
            ReorderPolicy::auto()
        } else {
            ReorderPolicy::None
        });
        let gc = self.gc.unwrap_or(reorder.is_active());
        let last_arena = checker.manager().arena_size();
        AnalysisSession {
            inner: Arc::new(SessionInner {
                tree,
                ordering: self.ordering,
                scope: self.scope,
                backend: self.backend,
                witness_limit: self.witness_limit,
                probabilities: self.probabilities,
                intervals: self.intervals,
                method: self.method,
                reorder,
                gc,
                sampler: SamplerCounters::default(),
                construction,
                checker: Mutex::new(checker),
                maintenance: Mutex::new(MaintenanceState {
                    last_arena,
                    totals: MaintenanceStats::default(),
                }),
                plans: Mutex::new(Vec::new()),
            }),
        }
    }
}

/// The shared core of a session: configuration plus the synchronised
/// model checker. [`AnalysisSession`] and every [`PreparedQuery`] hold it
/// behind an [`Arc`], so prepared queries stay valid (and keep sharing
/// the translation caches) independently of the session value itself.
#[derive(Debug)]
pub(crate) struct SessionInner {
    pub(crate) tree: Arc<FaultTree>,
    pub(crate) ordering: VariableOrdering,
    pub(crate) scope: MinimalityScope,
    pub(crate) backend: Backend,
    pub(crate) witness_limit: usize,
    pub(crate) probabilities: Option<Vec<Option<f64>>>,
    pub(crate) intervals: Option<Vec<Option<ProbInterval>>>,
    pub(crate) method: Method,
    pub(crate) reorder: ReorderPolicy,
    pub(crate) gc: bool,
    /// Cumulative Monte Carlo counters (lock-free: estimation runs
    /// outside the checker lock).
    pub(crate) sampler: SamplerCounters,
    /// The parallel-construction record when the session was built with
    /// `parallelism > 1`; `None` for sequential (lazy) builds.
    pub(crate) construction: Option<ConstructionReport>,
    pub(crate) checker: Mutex<ModelChecker>,
    maintenance: Mutex<MaintenanceState>,
    /// Every live prepared query registers its compiled roots here so a
    /// collection can remap them (dead weak refs are pruned lazily).
    /// Lock order: `checker` first, then `plans`/`PlanRoots`, never the
    /// reverse.
    pub(crate) plans: Mutex<Vec<Weak<PlanRoots>>>,
}

impl SessionInner {
    pub(crate) fn lock(&self) -> MutexGuard<'_, ModelChecker> {
        // A poisoned lock only means another query panicked; the checker's
        // caches are append-only and remain valid.
        self.checker.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers the compiled roots of a freshly prepared query.
    pub(crate) fn register_plan(&self, roots: &Arc<PlanRoots>) {
        let mut plans = self.plans.lock().unwrap_or_else(|e| e.into_inner());
        plans.retain(|w| w.strong_count() > 0);
        plans.push(Arc::downgrade(roots));
    }

    /// Snapshot of every live prepared query's roots (the `Arc`s keep
    /// them pinned between read-out and write-back).
    fn plan_roots(&self) -> Vec<Arc<PlanRoots>> {
        let mut plans = self.plans.lock().unwrap_or_else(|e| e.into_inner());
        plans.retain(|w| w.strong_count() > 0);
        plans.iter().filter_map(Weak::upgrade).collect()
    }

    /// Runs maintenance now: GC (if `do_gc`) around sifting (if
    /// `do_sift`), over every root the session tracks. Caller holds the
    /// checker lock.
    pub(crate) fn maintain_locked(
        &self,
        mc: &mut ModelChecker,
        do_gc: bool,
        do_sift: bool,
    ) -> MaintenanceReport {
        let plans = self.plan_roots();
        // Read every prepared root out (checker lock is held, so no eval
        // can race the remap).
        let mut handles = Vec::new();
        let mut spans = Vec::with_capacity(plans.len());
        for p in &plans {
            let start = handles.len();
            p.extend_roots(&mut handles);
            spans.push((start, handles.len()));
        }
        let mut report = MaintenanceReport {
            live_before: mc.live_node_count(&handles),
            ..MaintenanceReport::default()
        };
        report.live_after = report.live_before;
        let mut gc_stats: Option<GcStats> = None;
        let mut run_gc = |mc: &mut ModelChecker, handles: &mut Vec<bfl_bdd::Bdd>| {
            let stats = mc.collect_garbage_with(handles);
            match &mut gc_stats {
                Some(acc) => acc.absorb(&stats),
                None => gc_stats = Some(stats),
            }
        };
        if do_gc {
            // Pre-sift collection: sifting rewrites dead nodes too, so a
            // lean arena makes the sweep phase cheaper.
            run_gc(mc, &mut handles);
        }
        if do_sift {
            report.sift = Some(mc.sift_with_extra(&mut handles));
            if do_gc {
                // Post-sift collection reclaims the swap debris.
                run_gc(mc, &mut handles);
            }
        }
        report.gc = gc_stats;
        // Write the (possibly remapped) roots back.
        for (p, &(start, end)) in plans.iter().zip(&spans) {
            p.set_roots(&handles[start..end]);
        }
        report.live_after = mc.live_node_count(&handles);
        // Every maintenance cycle ends with an arena audit — release
        // builds included (debug builds additionally assert inside the
        // GC/sift primitives themselves). Violations are surfaced
        // through the cumulative counters rather than a panic so a
        // serving process can observe corruption in `stats`.
        let audit = mc.manager().audit();
        let mut state = self.maintenance.lock().unwrap_or_else(|e| e.into_inner());
        state.last_arena = mc.manager().arena_size();
        state.totals.audits_run += 1;
        state.totals.audit_violations += audit.violation_count as u64;
        if let Some(gc) = report.gc {
            state.totals.gc_runs += 1;
            state.totals.nodes_collected += gc.collected as u64;
        }
        if let Some(sift) = report.sift {
            state.totals.sift_runs += 1;
            state.totals.swaps += sift.swaps as u64;
        }
        report
    }

    /// The growth factor governing automatic triggers, `None` when no
    /// automatic maintenance applies.
    fn auto_factor(&self) -> Option<f64> {
        match (self.reorder, self.gc) {
            (ReorderPolicy::Auto { growth_factor }, _) => Some(growth_factor.max(1.0)),
            // OnPrepare promises the default growth trigger between
            // prepares (with or without GC), and GC alone compacts on
            // the same doubling trigger.
            (ReorderPolicy::OnPrepare, _) | (ReorderPolicy::None, true) => Some(2.0),
            (ReorderPolicy::None, false) => None,
        }
    }

    /// Whether the arena has outgrown the policy's growth factor since
    /// the last maintenance.
    fn growth_due(&self, mc: &ModelChecker) -> bool {
        let Some(factor) = self.auto_factor() else {
            return false;
        };
        let arena = mc.manager().arena_size();
        let last = {
            let state = self.maintenance.lock().unwrap_or_else(|e| e.into_inner());
            state.last_arena
        };
        arena >= AUTO_MIN_ARENA && (arena as f64) >= factor * last.max(1) as f64
    }

    /// Automatic trigger, called between operations while the checker
    /// lock is held: maintains when the arena outgrew the policy's
    /// factor.
    pub(crate) fn maybe_maintain(&self, mc: &mut ModelChecker) {
        if self.growth_due(mc) {
            let _ = self.maintain_locked(mc, self.gc, self.reorder.is_active());
        }
    }

    /// Prepare-time maintenance: an active reorder policy sifts after
    /// every compile (that is the point of
    /// [`VariableOrdering::Sifted`]); GC-only sessions compact on the
    /// growth trigger.
    pub(crate) fn maintain_at_prepare(&self, mc: &mut ModelChecker) -> Option<MaintenanceReport> {
        if self.reorder.is_active() {
            Some(self.maintain_locked(mc, self.gc, true))
        } else if self.gc && self.growth_due(mc) {
            Some(self.maintain_locked(mc, true, false))
        } else {
            None
        }
    }

    /// Cumulative maintenance counters.
    pub(crate) fn maintenance_stats(&self) -> MaintenanceStats {
        self.maintenance
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .totals
    }

    /// The complete, validated probability vector — the gate every
    /// *exact* probabilistic evaluation (session or prepared-plan)
    /// passes through, including Monte Carlo sampling (which needs a
    /// point distribution to draw from).
    ///
    /// # Errors
    ///
    /// [`BflError::IntervalProbabilities`] naming every basic event
    /// annotated with an interval — a point answer would silently
    /// collapse the modelled uncertainty, so the importance suite and
    /// every other exact quantity refuse instead;
    /// [`BflError::MissingProbabilities`] naming every unannotated basic
    /// event (or all of them when no annotations were configured);
    /// [`BflError::InvalidProbability`] if an annotation is outside
    /// `[0, 1]` or not finite.
    pub(crate) fn full_probabilities(&self) -> Result<Vec<f64>, BflError> {
        let ranged = self.interval_event_names();
        if !ranged.is_empty() {
            return Err(BflError::IntervalProbabilities { events: ranged });
        }
        let slots = self.probabilities.as_deref().unwrap_or(&[]);
        let mut missing = Vec::new();
        let mut out = Vec::with_capacity(self.tree.num_basic_events());
        for i in 0..self.tree.num_basic_events() {
            match slots.get(i).copied().flatten() {
                Some(p) => out.push(p),
                None => missing.push(self.tree.name(self.tree.basic_events()[i]).to_string()),
            }
        }
        if !missing.is_empty() {
            return Err(BflError::MissingProbabilities { events: missing });
        }
        prob::validate_probabilities(&self.tree, &out)
            .map_err(|reason| BflError::InvalidProbability { reason })?;
        Ok(out)
    }

    /// Names of the basic events carrying an interval annotation, in
    /// basic-index order.
    fn interval_event_names(&self) -> Vec<String> {
        let slots = self.intervals.as_deref().unwrap_or(&[]);
        (0..self.tree.num_basic_events())
            .filter(|&i| slots.get(i).copied().flatten().is_some())
            .map(|i| self.tree.name(self.tree.basic_events()[i]).to_string())
            .collect()
    }

    /// The complete, validated interval vector — the gate of
    /// [`Method::Interval`] evaluations. Point annotations widen to
    /// degenerate `[p, p]` intervals, so interval propagation over a
    /// point-only model reproduces the exact walk bit for bit.
    ///
    /// # Errors
    ///
    /// [`BflError::MissingProbabilities`] naming every basic event with
    /// neither a point nor an interval annotation;
    /// [`BflError::InvalidProbability`] if any annotation is malformed.
    pub(crate) fn full_intervals(&self) -> Result<Vec<ProbInterval>, BflError> {
        let points = self.probabilities.as_deref().unwrap_or(&[]);
        let ranges = self.intervals.as_deref().unwrap_or(&[]);
        let mut missing = Vec::new();
        let mut out = Vec::with_capacity(self.tree.num_basic_events());
        for i in 0..self.tree.num_basic_events() {
            let slot = match ranges.get(i).copied().flatten() {
                Some(iv) => Some(Ok(iv)),
                None => points.get(i).copied().flatten().map(ProbInterval::point),
            };
            match slot {
                Some(Ok(iv)) => out.push(iv),
                Some(Err(reason)) => return Err(BflError::InvalidProbability { reason }),
                None => missing.push(self.tree.name(self.tree.basic_events()[i]).to_string()),
            }
        }
        if !missing.is_empty() {
            return Err(BflError::MissingProbabilities { events: missing });
        }
        prob::validate_intervals(&self.tree, &out)
            .map_err(|reason| BflError::InvalidProbability { reason })?;
        Ok(out)
    }

    /// Evaluates `P(ϕ)` (or `P(ϕ | given)`) under `method` — the single
    /// dispatch point shared by the session, prepared plans and the
    /// server. `pins` fixes sampled basic events (scenario evidence) for
    /// the Monte Carlo path; exact and interval evaluation receive
    /// evidence through the formula instead. Returns `None` when the
    /// condition has zero probability.
    ///
    /// The caller holds the checker lock for `Exact`/`Interval`; the
    /// Monte Carlo path never touches the BDD manager (that is the
    /// point) but records its sampler counters.
    pub(crate) fn probability_value(
        &self,
        mc: &mut ModelChecker,
        phi: &Formula,
        given: Option<&Formula>,
        method: Method,
        pins: &[(usize, bool)],
        threads: usize,
    ) -> Result<Option<ProbValue>, BflError> {
        match method {
            Method::Exact => {
                let probs = self.full_probabilities()?;
                let p = match given {
                    None => Some(quant::probability(mc, phi, &probs)?),
                    Some(g) => quant::conditional_probability(mc, phi, g, &probs)?,
                };
                Ok(p.map(ProbValue::Exact))
            }
            Method::Interval => {
                let intervals = self.full_intervals()?;
                let iv = match given {
                    None => Some(quant::probability_interval(mc, phi, &intervals)?),
                    Some(g) => quant::conditional_probability_interval(mc, phi, g, &intervals)?,
                };
                Ok(iv.map(ProbValue::Interval))
            }
            Method::Mc {
                samples,
                seed,
                confidence,
            } => {
                let probs = self.full_probabilities()?;
                let est = uncertainty::estimate_probability(
                    &self.tree, &probs, phi, given, pins, samples, seed, confidence, threads,
                )?;
                self.sampler.record(samples);
                Ok(est.map(ProbValue::Estimate))
            }
        }
    }
}

/// An owned, thread-safe analysis session over one fault tree.
///
/// See the [module docs](self) for the design and a migration table. All
/// query methods take `&self`; the shared BDD state is synchronised
/// internally, so a session can serve queries from many threads (queries
/// are serialised — for parallelism across *trees*, use one session per
/// tree).
#[derive(Debug)]
pub struct AnalysisSession {
    inner: Arc<SessionInner>,
}

impl AnalysisSession {
    /// A session with default configuration (see [`SessionBuilder`]).
    pub fn new(tree: impl Into<Arc<FaultTree>>) -> Self {
        SessionBuilder::new().build(tree)
    }

    /// Starts configuring a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }

    /// The fault tree under analysis.
    pub fn tree(&self) -> &FaultTree {
        &self.inner.tree
    }

    /// Shared handle to the fault tree (cheap to clone into other
    /// sessions or threads).
    pub fn tree_arc(&self) -> Arc<FaultTree> {
        Arc::clone(&self.inner.tree)
    }

    /// The configured BDD variable ordering.
    pub fn ordering(&self) -> VariableOrdering {
        self.inner.ordering
    }

    /// The configured minimality scope.
    pub fn minimality_scope(&self) -> MinimalityScope {
        self.inner.scope
    }

    /// The configured cut-set backend.
    pub fn backend(&self) -> Backend {
        self.inner.backend
    }

    /// The configured probability annotations, if any.
    pub fn probabilities(&self) -> Option<&[Option<f64>]> {
        self.inner.probabilities.as_deref()
    }

    /// The configured interval annotations, if any.
    pub fn intervals(&self) -> Option<&[Option<ProbInterval>]> {
        self.inner.intervals.as_deref()
    }

    /// The session's default evaluation [`Method`] for probability
    /// queries.
    pub fn method(&self) -> Method {
        self.inner.method
    }

    /// Cumulative Monte Carlo sampler counters since the session was
    /// built.
    pub fn sampler_stats(&self) -> SamplerStats {
        self.inner.sampler.snapshot()
    }

    /// The configured dynamic-reordering policy.
    pub fn reorder_policy(&self) -> ReorderPolicy {
        self.inner.reorder
    }

    /// Whether garbage collection runs at maintenance points.
    pub fn gc_enabled(&self) -> bool {
        self.inner.gc
    }

    /// The parallel-construction record, when the session was built with
    /// [`SessionBuilder::parallelism`] `> 1`: detected module count,
    /// per-module node counts and stitch time. `None` for sequential
    /// (lazy) builds.
    pub fn construction_report(&self) -> Option<&ConstructionReport> {
        self.inner.construction.as_ref()
    }

    /// Runs maintenance **now** — garbage collection and sifting over
    /// every root the session tracks (element/formula caches and live
    /// prepared queries) — regardless of the configured policy.
    ///
    /// All retained handles are remapped; subsequent queries return
    /// identical results (only faster/smaller). See
    /// [`ReorderPolicy`] for the automatic triggers.
    pub fn maintain(&self) -> MaintenanceReport {
        let mut mc = self.lock();
        self.inner.maintain_locked(&mut mc, true, true)
    }

    /// Cumulative maintenance counters since the session was built.
    pub fn maintenance_stats(&self) -> MaintenanceStats {
        self.inner.maintenance_stats()
    }

    fn lock(&self) -> MutexGuard<'_, ModelChecker> {
        self.inner.lock()
    }

    /// Statically analyses the model: structural rules over the tree
    /// and its probability/interval annotations, plus support-based
    /// detection of absorbed basic events. Diagnostics come back in
    /// canonical order (code, subject, message); an empty vector means
    /// the model is clean. See the [`lint`] module docs
    /// and `docs/lint.md` for every rule.
    ///
    /// # Example
    ///
    /// ```
    /// use bfl_core::engine::AnalysisSession;
    /// use bfl_fault_tree::corpus;
    ///
    /// let session = AnalysisSession::new(corpus::covid());
    /// assert!(session.lint().is_empty(), "the case-study model is clean");
    /// ```
    pub fn lint(&self) -> Vec<lint::Diagnostic> {
        let mut mc = self.lock();
        let mut out = lint::lint_model(mc.tree(), self.probabilities(), self.intervals());
        out.extend(lint::lint_support(&mut mc));
        lint::finish(&mut out);
        out
    }

    /// [`AnalysisSession::lint`] plus the semantic rules over every item
    /// of `spec`: formulas are compiled through this session's shared
    /// BDD caches, so tautology/contradiction detection and evidence
    /// analysis are exact.
    pub fn lint_spec(&self, spec: &Spec) -> Vec<lint::Diagnostic> {
        let mut mc = self.lock();
        let mut out = lint::lint_model(mc.tree(), self.probabilities(), self.intervals());
        out.extend(lint::lint_support(&mut mc));
        out.extend(lint::lint_spec_items(&mut mc, spec));
        lint::finish(&mut out);
        out
    }

    /// **Compiles a layer-2 query once** into an owned, `Send + Sync`
    /// [`PreparedQuery`] sharing this session's caches — the
    /// prepared-statement analogue of [`AnalysisSession::run`].
    ///
    /// The full pass pipeline (desugar → NNF → simplify → BDD build)
    /// runs here, once; afterwards
    /// [`PreparedQuery::eval`](crate::plan::PreparedQuery::eval)
    /// answers each what-if [`Scenario`](crate::scenario::Scenario) by
    /// *restricting* the compiled diagram (BDD cofactoring) instead of
    /// rewriting the AST and recompiling, and
    /// [`PreparedQuery::sweep`](crate::plan::PreparedQuery::sweep) fans a
    /// whole scenario set across threads.
    ///
    /// # Errors
    ///
    /// As [`ModelChecker::formula_bdd`] — unknown elements and evidence
    /// on gates are reported at prepare time.
    pub fn prepare(&self, psi: &Query) -> Result<PreparedQuery, BflError> {
        PreparedQuery::compile(Arc::clone(&self.inner), psi)
    }

    /// Cumulative statistics since the session was built: current arena
    /// size and total translation-cache hits/misses.
    pub fn stats(&self) -> EvalStats {
        let mc = self.lock();
        EvalStats {
            bdd_nodes: 0,
            arena_nodes: mc.manager().arena_size(),
            cache_hits: mc.cache_hits(),
            cache_misses: mc.cache_misses(),
            duration_micros: 0,
        }
    }

    // ------------------------------------------------------------------
    // Single questions, structured results.
    // ------------------------------------------------------------------

    /// Evaluates a layer-2 query `T ⊨ ψ` into a structured [`Outcome`].
    ///
    /// # Errors
    ///
    /// As [`ModelChecker::check_query`].
    pub fn check_query(&self, psi: &Query) -> Result<Outcome, BflError> {
        let mut mc = self.lock();
        let outcome = self.query_outcome(&mut mc, None, psi.to_string(), psi);
        self.inner.maybe_maintain(&mut mc);
        outcome
    }

    /// Checks `b, T ⊨ χ` (Algorithm 2) into a structured [`Outcome`];
    /// failed checks carry the Definition-7 counterexample of
    /// Algorithm 4.
    ///
    /// # Errors
    ///
    /// As [`ModelChecker::holds`].
    ///
    /// # Panics
    ///
    /// Panics if `b` does not cover the tree's basic events.
    pub fn check_vector(&self, b: &StatusVector, phi: &Formula) -> Result<Outcome, BflError> {
        let mut mc = self.lock();
        let outcome = self.vector_outcome(&mut mc, None, phi.to_string(), b, phi);
        self.inner.maybe_maintain(&mut mc);
        outcome
    }

    /// The **actual-causality judgement**: which minimal sets of failed
    /// events actually caused `ϕ` to hold under the observation
    /// `evidence` (bound events at their value, everything else
    /// operational)? Equivalent to
    /// [`check_query`](AnalysisSession::check_query) on
    /// [`Query::cause`]; the outcome's `causes` field carries the
    /// [`CauseReport`](crate::causality::CauseReport), with witness
    /// enumeration capped at the session's witness limit (the exact
    /// cause count is always reported).
    ///
    /// ```
    /// use bfl_core::engine::AnalysisSession;
    /// use bfl_core::Formula;
    /// use bfl_fault_tree::corpus;
    ///
    /// # fn main() -> Result<(), bfl_core::BflError> {
    /// let session = AnalysisSession::new(corpus::fig1());
    /// let evidence: Vec<(String, bool)> =
    ///     vec![("IW".into(), true), ("H3".into(), true)];
    /// let o = session.cause(&Formula::atom("CP/R"), &evidence)?;
    /// assert!(o.holds);
    /// assert_eq!(o.causes.unwrap().total, 2); // {IW} and {H3}
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// As [`ModelChecker::formula_bdd`]; bad evidence bindings surface as
    /// [`BflError::UnknownElement`] / [`BflError::EvidenceOnGate`].
    pub fn cause(&self, phi: &Formula, evidence: &[(String, bool)]) -> Result<Outcome, BflError> {
        self.check_query(&Query::cause(phi.clone(), evidence.iter().cloned()))
    }

    /// Evaluates one prepared [`SpecItem`].
    ///
    /// # Errors
    ///
    /// As the underlying algorithms; unknown failed-event names in a
    /// vector item surface as [`BflError::UnknownElement`].
    pub fn eval(&self, item: &SpecItem) -> Result<Outcome, BflError> {
        let mut mc = self.lock();
        let outcome = self.item_outcome(&mut mc, item);
        self.inner.maybe_maintain(&mut mc);
        outcome
    }

    /// **Batch evaluation**: runs every item of `spec` in one pass over
    /// the shared translation caches and returns a [`Report`].
    ///
    /// Equivalent to calling [`AnalysisSession::eval`] per item (the
    /// test-suite asserts this), but the lock is taken once and repeated
    /// sub-formulae across items hit the shared cache.
    ///
    /// # Errors
    ///
    /// The first item error aborts the batch.
    pub fn run(&self, spec: &Spec) -> Result<Report, BflError> {
        let mut mc = self.lock();
        let mut report = Report::new(Arc::clone(&self.inner.tree));
        for item in &spec.items {
            let outcome = self.item_outcome(&mut mc, item)?;
            report.push(outcome);
            self.inner.maybe_maintain(&mut mc);
        }
        Ok(report)
    }

    // ------------------------------------------------------------------
    // Capabilities previously scattered across the stack.
    // ------------------------------------------------------------------

    /// The satisfaction set `⟦χ⟧` (Algorithm 3), ascending.
    ///
    /// # Errors
    ///
    /// As [`ModelChecker::satisfying_vectors`].
    pub fn satisfying_vectors(&self, phi: &Formula) -> Result<Vec<StatusVector>, BflError> {
        self.lock().satisfying_vectors(phi)
    }

    /// `|⟦χ⟧|` without enumeration.
    ///
    /// # Errors
    ///
    /// As [`ModelChecker::count_satisfying`].
    pub fn count_satisfying(&self, phi: &Formula) -> Result<u128, BflError> {
        self.lock().count_satisfying(phi)
    }

    /// The influencing basic events `IBE(ϕ)`, in basic-index order.
    ///
    /// # Errors
    ///
    /// As [`ModelChecker::influencing_basic_events`].
    pub fn influencing_basic_events(&self, phi: &Formula) -> Result<Vec<String>, BflError> {
        self.lock().influencing_basic_events(phi)
    }

    /// Minimal cut sets of `element` as sorted name lists, via the
    /// configured [`Backend`].
    ///
    /// Under [`MinimalityScope::FormulaSupport`] every backend routes
    /// through the shared checker (the dedicated engines implement the
    /// default global-universe semantics only), so results depend on the
    /// configured scope but never on the backend.
    ///
    /// # Errors
    ///
    /// [`BflError::UnknownElement`] if `element` is not in the tree.
    pub fn minimal_cut_sets(&self, element: &str) -> Result<Vec<Vec<String>>, BflError> {
        self.cut_or_path_sets(element, true)
    }

    /// Minimal path sets of `element` as sorted name lists of the
    /// *operational* events, via the configured [`Backend`] (the ZDD
    /// backend computes them on the dual tree).
    ///
    /// # Errors
    ///
    /// [`BflError::UnknownElement`] if `element` is not in the tree.
    pub fn minimal_path_sets(&self, element: &str) -> Result<Vec<Vec<String>>, BflError> {
        self.cut_or_path_sets(element, false)
    }

    fn cut_or_path_sets(&self, element: &str, cuts: bool) -> Result<Vec<Vec<String>>, BflError> {
        // The dedicated Paper/Zdd engines implement the default
        // global-universe minimality only; under the Table-I support
        // scope every backend routes through the checker so the session's
        // configured semantics always wins over the backend knob.
        let backend = if self.inner.scope == MinimalityScope::FormulaSupport {
            Backend::Minsol
        } else {
            self.inner.backend
        };
        match backend {
            // The minsol engine shares the session's compiled BDDs.
            Backend::Minsol => {
                let mut mc = self.lock();
                if cuts {
                    mc.minimal_cut_sets(element)
                } else {
                    mc.minimal_path_sets(element)
                }
            }
            other => {
                let e = self
                    .inner
                    .tree
                    .element(element)
                    .ok_or_else(|| BflError::UnknownElement(element.to_string()))?;
                let engine = other.engine();
                let sets = if cuts {
                    engine.minimal_cut_sets(&self.inner.tree, e)
                } else {
                    engine.minimal_path_sets(&self.inner.tree, e)
                };
                Ok(bfl_fault_tree::analysis::index_sets_to_names(
                    &self.inner.tree,
                    &sets,
                ))
            }
        }
    }

    /// Algorithm 4: a Definition-7 counterexample for a vector that fails
    /// `χ`.
    ///
    /// # Errors
    ///
    /// As the underlying [`counterexample`].
    pub fn counterexample(
        &self,
        b: &StatusVector,
        phi: &Formula,
    ) -> Result<Counterexample, BflError> {
        counterexample(&mut self.lock(), b, phi)
    }

    /// All Definition-7-valid counterexamples for `b, T ⊭ χ`, capped at
    /// the session's witness limit. The returned set carries the exact
    /// total, so a capped enumeration is reported as truncated rather
    /// than passing silently as complete.
    ///
    /// # Errors
    ///
    /// As the underlying
    /// [`some_counterexamples`](crate::counterexample::some_counterexamples).
    pub fn all_counterexamples(
        &self,
        b: &StatusVector,
        phi: &Formula,
    ) -> Result<CounterexampleSet, BflError> {
        crate::counterexample::some_counterexamples(
            &mut self.lock(),
            b,
            phi,
            self.inner.witness_limit,
        )
    }

    /// Renders vectors as sorted lists of failed-event names.
    pub fn vectors_to_failed_sets(&self, vectors: &[StatusVector]) -> Vec<Vec<String>> {
        self.lock().vectors_to_failed_sets(vectors)
    }

    /// Resolves failed basic-event names into a [`StatusVector`].
    ///
    /// # Errors
    ///
    /// [`BflError::UnknownElement`] for unknown names and
    /// [`BflError::EvidenceOnGate`] for gates.
    pub fn vector_of_failed(&self, failed: &[String]) -> Result<StatusVector, BflError> {
        let mut v = StatusVector::all_operational(self.inner.tree.num_basic_events());
        for name in failed {
            let e = self
                .inner
                .tree
                .element(name)
                .ok_or_else(|| BflError::UnknownElement(name.clone()))?;
            let bi = self
                .inner
                .tree
                .basic_index(e)
                .ok_or_else(|| BflError::EvidenceOnGate(name.clone()))?;
            v.set(bi, true);
        }
        Ok(v)
    }

    // ------------------------------------------------------------------
    // Probability (requires annotations at build time).
    // ------------------------------------------------------------------

    /// The complete, validated probability vector (see
    /// [`SessionInner::full_probabilities`]).
    fn full_probabilities(&self) -> Result<Vec<f64>, BflError> {
        self.inner.full_probabilities()
    }

    /// Top-event failure probability from the configured annotations.
    ///
    /// # Errors
    ///
    /// [`BflError::MissingProbabilities`] if any annotation is absent.
    pub fn top_event_probability(&self) -> Result<f64, BflError> {
        let probs = self.full_probabilities()?;
        prob::top_event_probability(&self.inner.tree, &probs)
            .map_err(|reason| BflError::InvalidProbability { reason })
    }

    /// `P(⟦χ⟧)` — the probability that a random status vector satisfies
    /// `χ` under the configured annotations.
    ///
    /// # Errors
    ///
    /// [`BflError::MissingProbabilities`] or the checker's errors.
    pub fn formula_probability(&self, phi: &Formula) -> Result<f64, BflError> {
        let probs = self.full_probabilities()?;
        quant::probability(&mut self.lock(), phi, &probs)
    }

    /// Conditional probability `P(ϕ | ψ) = P(ϕ ∧ ψ) / P(ψ)` under the
    /// configured annotations; `None` when `P(ψ) = 0`.
    ///
    /// # Errors
    ///
    /// [`BflError::MissingProbabilities`] or the checker's errors.
    pub fn conditional_probability(
        &self,
        phi: &Formula,
        given: &Formula,
    ) -> Result<Option<f64>, BflError> {
        let probs = self.full_probabilities()?;
        quant::conditional_probability(&mut self.lock(), phi, given, &probs)
    }

    /// `P(ϕ)` (or `P(ϕ | given)`) under `method` — or the session's
    /// default method when `None` — as a method-shaped [`ProbValue`]:
    /// an exact point, conservative interval bounds, or a Monte Carlo
    /// estimate with its confidence interval. `None` when the condition
    /// has zero probability.
    ///
    /// ```
    /// use bfl_core::engine::AnalysisSession;
    /// use bfl_core::uncertainty::{Method, ProbValue};
    /// use bfl_core::Formula;
    /// use bfl_fault_tree::corpus;
    ///
    /// # fn main() -> Result<(), bfl_core::BflError> {
    /// let session = AnalysisSession::builder()
    ///     .probabilities(vec![Some(0.1), Some(0.2)])
    ///     .build(corpus::or2());
    /// let top = Formula::atom("Top");
    /// let exact = session.probability_value(&top, None, None)?.unwrap();
    /// let mc = session
    ///     .probability_value(&top, None, Some(Method::mc()))?
    ///     .unwrap();
    /// if let (ProbValue::Exact(p), ProbValue::Estimate(e)) = (exact, mc) {
    ///     assert!(e.ci_lo <= p && p <= e.ci_hi);
    /// } else {
    ///     unreachable!()
    /// }
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// [`BflError::IntervalProbabilities`] when an exact or Monte Carlo
    /// evaluation meets interval annotations,
    /// [`BflError::MissingProbabilities`] /
    /// [`BflError::InvalidProbability`] for incomplete or malformed
    /// annotations, [`BflError::UnsupportedMethod`] for Monte Carlo on
    /// `MCS`/`MPS` formulae or malformed sampler parameters, plus the
    /// checker's errors.
    pub fn probability_value(
        &self,
        phi: &Formula,
        given: Option<&Formula>,
        method: Option<Method>,
    ) -> Result<Option<ProbValue>, BflError> {
        let method = method.unwrap_or(self.inner.method);
        let mut mc = self.lock();
        self.inner
            .probability_value(&mut mc, phi, given, method, &[], default_mc_threads())
    }

    /// Birnbaum importance of basic event `be` for `ϕ`:
    /// `P(ϕ | be failed) − P(ϕ | be operational)`, computed by evidence
    /// cofactoring under the configured annotations.
    ///
    /// # Errors
    ///
    /// [`BflError::MissingProbabilities`], plus
    /// [`BflError::UnknownElement`] / [`BflError::EvidenceOnGate`] if
    /// `be` is not a basic event of the tree.
    pub fn birnbaum(&self, phi: &Formula, be: &str) -> Result<f64, BflError> {
        let probs = self.full_probabilities()?;
        quant::birnbaum(&mut self.lock(), phi, be, &probs)
    }

    /// The batched importance suite: every basic event ranked by
    /// Birnbaum importance for `ϕ`, with criticality, Fussell-Vesely,
    /// RAW and RRW, under the configured annotations — the engine behind
    /// the `importance(ϕ)` judgement and the CLI `importance` command.
    ///
    /// # Errors
    ///
    /// [`BflError::MissingProbabilities`] /
    /// [`BflError::InvalidProbability`] for the annotations,
    /// [`BflError::DivisionByZero`] when `P(ϕ)` vanishes, plus the
    /// checker's errors.
    pub fn rank_events(&self, phi: &Formula) -> Result<Vec<quant::EventImportance>, BflError> {
        let probs = self.full_probabilities()?;
        let mut mc = self.lock();
        let rows = quant::rank_events(&mut mc, phi, &probs);
        self.inner.maybe_maintain(&mut mc);
        rows
    }

    // ------------------------------------------------------------------
    // Outcome construction.
    // ------------------------------------------------------------------

    fn item_outcome(&self, mc: &mut ModelChecker, item: &SpecItem) -> Result<Outcome, BflError> {
        match &item.kind {
            SpecKind::Query(q) => {
                self.query_outcome(mc, item.label.clone(), item.source.clone(), q)
            }
            SpecKind::Vector { failed, formula } => {
                let b = self.vector_of_failed(failed)?;
                self.vector_outcome(mc, item.label.clone(), item.source.clone(), &b, formula)
            }
        }
    }

    fn query_outcome(
        &self,
        mc: &mut ModelChecker,
        label: Option<String>,
        source: String,
        psi: &Query,
    ) -> Result<Outcome, BflError> {
        let start = Instant::now();
        let (hits0, misses0) = (mc.cache_hits(), mc.cache_misses());
        let mut outcome = match psi {
            Query::Exists(phi) => {
                let f = mc.formula_bdd(phi)?;
                let holds = !f.is_false();
                let mut o = Outcome::bare(label, source, holds);
                o.stats.bdd_nodes = mc.bdd_size(f);
                if holds && self.inner.witness_limit > 0 {
                    o.witnesses = mc.some_satisfying_vectors(phi, self.inner.witness_limit)?;
                }
                o
            }
            Query::Forall(phi) => {
                let f = mc.formula_bdd(phi)?;
                let holds = f.is_true();
                let mut o = Outcome::bare(label, source, holds);
                o.stats.bdd_nodes = mc.bdd_size(f);
                if !holds && self.inner.witness_limit > 0 {
                    let negated = phi.clone().not();
                    o.counterexamples =
                        mc.some_satisfying_vectors(&negated, self.inner.witness_limit)?;
                }
                o
            }
            Query::Idp(a, b) => self.idp_outcome(mc, label, source, a, b)?,
            Query::Sup(name) => {
                let top = Formula::atom(self.inner.tree.name(self.inner.tree.top()));
                self.idp_outcome(mc, label, source, &Formula::atom(name.clone()), &top)?
            }
            Query::Prob {
                formula,
                given,
                op,
                bound,
            } => {
                let method = self.inner.method;
                let value = self.inner.probability_value(
                    mc,
                    formula,
                    given.as_ref(),
                    method,
                    &[],
                    default_mc_threads(),
                )?;
                // An undecidable interval judgement (the bounds straddle
                // the threshold) conservatively does not hold, like a
                // zero-probability condition.
                let holds = value
                    .as_ref()
                    .and_then(|v| v.judge(*op, bound.get()))
                    .unwrap_or(false);
                let mut o = Outcome::bare(label, source, holds);
                o.method = Some(method);
                match value {
                    Some(ProbValue::Exact(p)) => o.probability = Some(p),
                    Some(ProbValue::Interval(iv)) => o.interval = Some(iv),
                    Some(ProbValue::Estimate(e)) => o.estimate = Some(e),
                    None => {}
                }
                // Monte Carlo never builds the diagram — that is the
                // point — so BDD size is only reported for the walks.
                if !matches!(method, Method::Mc { .. }) {
                    o.stats.bdd_nodes = {
                        let f = mc.formula_bdd(formula)?;
                        mc.bdd_size(f)
                    };
                }
                o
            }
            Query::Cause {
                formula,
                evidence,
                limit,
            } => {
                // `cause(…)` caps witnesses at the session limit;
                // `causes(…, k)` carries its own enumeration bound.
                let cap = limit.map_or(self.inner.witness_limit, |k| k as usize);
                let report = crate::causality::actual_causes(mc, formula, evidence, cap)?;
                let mut o = Outcome::bare(label, source, report.holds());
                o.stats.bdd_nodes = {
                    let f = mc.formula_bdd(formula)?;
                    mc.bdd_size(f)
                };
                o.causes = Some(report);
                o
            }
            Query::Importance(phi) => {
                let probs = self.inner.full_probabilities()?;
                // A ranking of an (almost surely) false formula is
                // undefined: "does not hold" with an empty table, the
                // same policy as the prepared-plan evaluator.
                let rows = match quant::rank_events(mc, phi, &probs) {
                    Ok(rows) => Some(rows),
                    Err(BflError::DivisionByZero { .. }) => None,
                    Err(e) => return Err(e),
                };
                let mut o = Outcome::bare(label, source, rows.is_some());
                o.stats.bdd_nodes = {
                    let f = mc.formula_bdd(phi)?;
                    mc.bdd_size(f)
                };
                o.importance = rows.unwrap_or_default();
                o
            }
        };
        outcome.stats.arena_nodes = mc.manager().arena_size();
        outcome.stats.cache_hits = mc.cache_hits() - hits0;
        outcome.stats.cache_misses = mc.cache_misses() - misses0;
        outcome.stats.duration_micros = start.elapsed().as_micros();
        Ok(outcome)
    }

    fn idp_outcome(
        &self,
        mc: &mut ModelChecker,
        label: Option<String>,
        source: String,
        a: &Formula,
        b: &Formula,
    ) -> Result<Outcome, BflError> {
        let ia = mc.influencing_basic_events(a)?;
        let ib = mc.influencing_basic_events(b)?;
        let shared: Vec<String> = ia.into_iter().filter(|e| ib.contains(e)).collect();
        let fa = mc.formula_bdd(a)?;
        let fb = mc.formula_bdd(b)?;
        let mut o = Outcome::bare(label, source, shared.is_empty());
        o.stats.bdd_nodes = mc.bdd_size(fa) + mc.bdd_size(fb);
        o.shared_events = shared;
        Ok(o)
    }

    fn vector_outcome(
        &self,
        mc: &mut ModelChecker,
        label: Option<String>,
        source: String,
        b: &StatusVector,
        phi: &Formula,
    ) -> Result<Outcome, BflError> {
        let start = Instant::now();
        let (hits0, misses0) = (mc.cache_hits(), mc.cache_misses());
        let holds = mc.holds(b, phi)?;
        let mut outcome = Outcome::bare(label, source, holds);
        let f = mc.formula_bdd(phi)?;
        outcome.stats.bdd_nodes = mc.bdd_size(f);
        if holds {
            if self.inner.witness_limit > 0 {
                outcome.witnesses = vec![b.clone()];
            }
        } else {
            outcome.counterexample = Some(counterexample(mc, b, phi)?);
        }
        outcome.stats.arena_nodes = mc.manager().arena_size();
        outcome.stats.cache_hits = mc.cache_hits() - hits0;
        outcome.stats.cache_misses = mc.cache_misses() - misses0;
        outcome.stats.duration_micros = start.elapsed().as_micros();
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_formula, parse_query};
    use bfl_fault_tree::corpus;

    #[test]
    fn session_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AnalysisSession>();
    }

    #[test]
    fn owns_its_tree() {
        let session;
        {
            let tree = corpus::fig1();
            session = AnalysisSession::new(tree);
            // `tree` moved in; the session survives any outer scope.
        }
        assert_eq!(session.tree().num_basic_events(), 4);
        let q = Query::forall(Formula::atom("CP").implies(Formula::atom("CP/R")));
        assert!(session.check_query(&q).unwrap().holds);
    }

    #[test]
    fn exists_outcome_carries_witnesses() {
        let session = AnalysisSession::new(corpus::fig1());
        let q = parse_query("exists CP & CR").unwrap();
        let o = session.check_query(&q).unwrap();
        assert!(o.holds);
        assert!(!o.witnesses.is_empty());
        assert!(o.witnesses.len() <= 3);
        assert!(o.stats.bdd_nodes > 0);
        // Every witness really satisfies the formula.
        let phi = parse_formula("CP & CR").unwrap();
        for w in &o.witnesses {
            assert!(session.check_vector(w, &phi).unwrap().holds);
        }
    }

    #[test]
    fn forall_failure_carries_refuting_vectors() {
        let session = AnalysisSession::new(corpus::covid());
        let q = parse_query("forall IS => MoT").unwrap();
        let o = session.check_query(&q).unwrap();
        assert!(!o.holds);
        assert!(!o.counterexamples.is_empty());
        let phi = parse_formula("!(IS => MoT)").unwrap();
        for c in &o.counterexamples {
            assert!(session.check_vector(c, &phi).unwrap().holds);
        }
    }

    #[test]
    fn idp_failure_names_shared_events() {
        let session = AnalysisSession::new(corpus::covid());
        let q = parse_query("IDP(CIO, CIS)").unwrap();
        let o = session.check_query(&q).unwrap();
        assert!(!o.holds);
        assert_eq!(o.shared_events, vec!["H1"]);
    }

    #[test]
    fn failed_vector_check_carries_definition7_counterexample() {
        let session = AnalysisSession::new(corpus::or2());
        let phi = Formula::atom("Top").mcs();
        let b = StatusVector::from_bits([true, true]);
        let o = session.check_vector(&b, &phi).unwrap();
        assert!(!o.holds);
        match o.counterexample {
            Some(Counterexample::Found(v)) => assert_eq!(v.count_failed(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn batch_shares_caches_across_items() {
        let session = AnalysisSession::new(corpus::covid());
        let spec = Spec::parse(
            "P1: forall IS => MoT\n\
             P1b: forall IS => MoT\n\
             P3: forall H4 => IWoS\n",
        )
        .unwrap();
        let report = session.run(&spec).unwrap();
        assert_eq!(report.outcomes.len(), 3);
        // The repeated query is answered wholly from cache.
        assert_eq!(report.outcomes[1].stats.cache_misses, 0);
        assert!(report.outcomes[1].stats.cache_hits > 0);
        assert!(report.outcomes[1].holds == report.outcomes[0].holds);
    }

    #[test]
    fn backend_dispatch_agrees() {
        let tree = Arc::new(corpus::covid());
        let base = AnalysisSession::new(Arc::clone(&tree));
        let mcs = base.minimal_cut_sets("IWoS").unwrap();
        let mps = base.minimal_path_sets("IWoS").unwrap();
        for backend in Backend::ALL {
            let s = AnalysisSession::builder()
                .backend(backend)
                .build(Arc::clone(&tree));
            assert_eq!(s.minimal_cut_sets("IWoS").unwrap(), mcs, "{backend}");
            assert_eq!(s.minimal_path_sets("IWoS").unwrap(), mps, "{backend}");
        }
    }

    #[test]
    fn support_scope_overrides_backend_choice() {
        let tree = Arc::new(corpus::table1_tree());
        let reference = AnalysisSession::builder()
            .minimality_scope(MinimalityScope::FormulaSupport)
            .build(Arc::clone(&tree));
        let mcs = reference.minimal_cut_sets("e3").unwrap();
        for backend in Backend::ALL {
            let s = AnalysisSession::builder()
                .minimality_scope(MinimalityScope::FormulaSupport)
                .backend(backend)
                .build(Arc::clone(&tree));
            assert_eq!(s.minimal_cut_sets("e3").unwrap(), mcs, "{backend}");
            assert_eq!(
                s.minimal_path_sets("e3").unwrap(),
                reference.minimal_path_sets("e3").unwrap(),
                "{backend}"
            );
        }
    }

    #[test]
    fn probability_requires_annotations() {
        let session = AnalysisSession::new(corpus::or2());
        match session.top_event_probability() {
            Err(BflError::MissingProbabilities { events }) => {
                assert_eq!(events.len(), 2);
            }
            other => panic!("{other:?}"),
        }
        let with = AnalysisSession::builder()
            .probabilities(vec![Some(0.1), Some(0.2)])
            .build(corpus::or2());
        let p = with.top_event_probability().unwrap();
        assert!((p - (1.0 - 0.9 * 0.8)).abs() < 1e-12);
    }

    #[test]
    fn conditional_probability_and_birnbaum_on_the_session() {
        // Previously only reachable as free `quant::*` functions over a
        // hand-built ModelChecker; now first-class on the session.
        let session = AnalysisSession::builder()
            .probabilities(vec![Some(0.1), Some(0.2)])
            .build(corpus::or2());
        let top = Formula::atom("Top");
        let e1 = Formula::atom("e1");
        // P(Top | e1) = 1.
        let p = session.conditional_probability(&top, &e1).unwrap().unwrap();
        assert!((p - 1.0).abs() < 1e-12);
        // Conditioning on an impossible event yields None.
        let none = session
            .conditional_probability(&top, &e1.clone().and(e1.clone().not()))
            .unwrap();
        assert!(none.is_none());
        // Birnbaum importance of e1 for an OR gate: 1 - P(e2) = 0.8.
        let b = session.birnbaum(&top, "e1").unwrap();
        assert!((b - 0.8).abs() < 1e-12);
        // Without annotations both report the missing events.
        let bare = AnalysisSession::new(corpus::or2());
        assert!(matches!(
            bare.conditional_probability(&top, &e1),
            Err(BflError::MissingProbabilities { .. })
        ));
        assert!(matches!(
            bare.birnbaum(&top, "e1"),
            Err(BflError::MissingProbabilities { .. })
        ));
    }

    #[test]
    fn prepare_compiles_through_the_session() {
        let session = AnalysisSession::new(corpus::covid());
        let prepared = session
            .prepare(&parse_query("forall IS => MoT").unwrap())
            .unwrap();
        let outcome = prepared.eval(&crate::scenario::Scenario::new()).unwrap();
        // Baseline scenario agrees with the direct query path.
        let direct = session
            .check_query(&parse_query("forall IS => MoT").unwrap())
            .unwrap();
        assert_eq!(outcome.holds, direct.holds);
        assert_eq!(outcome.counterexamples, direct.counterexamples);
    }

    #[test]
    fn sifted_session_agrees_with_static_session() {
        let tree = Arc::new(corpus::covid());
        let stat = AnalysisSession::new(Arc::clone(&tree));
        let dyn_ = AnalysisSession::builder()
            .ordering(VariableOrdering::Sifted)
            .build(Arc::clone(&tree));
        assert_eq!(dyn_.reorder_policy(), ReorderPolicy::auto());
        assert!(dyn_.gc_enabled());
        for src in [
            "forall IS => MoT",
            "exists MCS(IWoS) & H4",
            "IDP(CIO, CIS)",
            "SUP(PP)",
            "exists MPS(IWoS)",
        ] {
            let q = parse_query(src).unwrap();
            assert_eq!(
                stat.check_query(&q).unwrap().holds,
                dyn_.check_query(&q).unwrap().holds,
                "{src}"
            );
        }
        // Full satisfaction sets are order-independent and must agree.
        let phi = parse_formula("MCS(IWoS)").unwrap();
        assert_eq!(
            stat.satisfying_vectors(&phi).unwrap(),
            dyn_.satisfying_vectors(&phi).unwrap()
        );
        assert_eq!(
            stat.count_satisfying(&phi).unwrap(),
            dyn_.count_satisfying(&phi).unwrap()
        );
    }

    #[test]
    fn explicit_maintain_shrinks_and_preserves_results() {
        let session = AnalysisSession::new(corpus::covid());
        let phi = parse_formula("MCS(IWoS)").unwrap();
        let before = session.satisfying_vectors(&phi).unwrap();
        let count = session.count_satisfying(&phi).unwrap();
        let arena_before = session.stats().arena_nodes;
        let report = session.maintain();
        assert!(report.gc.is_some());
        assert!(report.sift.is_some());
        assert!(report.live_after <= report.live_before);
        assert!(session.stats().arena_nodes <= arena_before);
        let stats = session.maintenance_stats();
        assert!(stats.gc_runs >= 1);
        assert_eq!(stats.sift_runs, 1);
        // Cached formulae were remapped: identical answers, no recompile.
        assert_eq!(session.satisfying_vectors(&phi).unwrap(), before);
        assert_eq!(session.count_satisfying(&phi).unwrap(), count);
        // And probabilities computed on remapped diagrams agree.
        let with = AnalysisSession::builder()
            .probabilities(vec![Some(0.1), Some(0.2)])
            .build(corpus::or2());
        let p0 = with.formula_probability(&Formula::atom("Top")).unwrap();
        with.maintain();
        let p1 = with.formula_probability(&Formula::atom("Top")).unwrap();
        assert!((p0 - p1).abs() < 1e-15);
    }

    #[test]
    fn prepared_queries_survive_maintenance() {
        let session = AnalysisSession::builder()
            .reorder(ReorderPolicy::OnPrepare)
            .gc(true)
            .build(corpus::covid());
        let prepared = session
            .prepare(&parse_query("exists MCS(IWoS) & H4").unwrap())
            .unwrap();
        // OnPrepare: the plan records the maintenance that ran.
        let plan = prepared.explain();
        let m = plan.maintenance.expect("OnPrepare maintains at compile");
        assert!(m.sift.is_some());
        assert!(m.gc.is_some());
        let baseline = prepared.eval(&crate::scenario::Scenario::new()).unwrap();
        // Explicit maintenance between evals remaps the prepared roots.
        session.maintain();
        let after = prepared.eval(&crate::scenario::Scenario::new()).unwrap();
        assert_eq!(baseline.holds, after.holds);
        assert_eq!(baseline.witnesses, after.witnesses);
        // A fresh scenario restriction also works on the remapped root.
        let o = prepared
            .eval(&crate::scenario::Scenario::new().bind("H4", false))
            .unwrap();
        assert!(!o.holds);
    }

    #[test]
    fn probability_value_dispatches_on_method() {
        let session = AnalysisSession::builder()
            .probabilities(vec![Some(0.1), Some(0.2)])
            .build(corpus::or2());
        let top = Formula::atom("Top");
        // Exact (the session default).
        let exact = session
            .probability_value(&top, None, None)
            .unwrap()
            .unwrap();
        let ProbValue::Exact(p) = exact else {
            panic!("{exact:?}")
        };
        assert!((p - 0.28).abs() < 1e-12);
        // Interval over a point-only model: degenerate, bit-identical.
        let iv = session
            .probability_value(&top, None, Some(Method::Interval))
            .unwrap()
            .unwrap();
        let ProbValue::Interval(iv) = iv else {
            panic!("{iv:?}")
        };
        assert_eq!(iv.lo.to_bits(), p.to_bits());
        assert_eq!(iv.hi.to_bits(), p.to_bits());
        // Monte Carlo: CI covers the exact answer, counters advance.
        assert_eq!(session.sampler_stats(), SamplerStats::default());
        let mc = session
            .probability_value(&top, None, Some(Method::mc()))
            .unwrap()
            .unwrap();
        let ProbValue::Estimate(e) = mc else {
            panic!("{mc:?}")
        };
        assert!(e.ci_lo <= p && p <= e.ci_hi);
        let stats = session.sampler_stats();
        assert_eq!(stats.runs, 1);
        assert_eq!(stats.samples, crate::uncertainty::DEFAULT_MC_SAMPLES);
    }

    #[test]
    fn interval_annotations_reject_exact_paths() {
        // Satellite fix: an interval-annotated model must refuse exact
        // quantities (and Monte Carlo, which samples a point
        // distribution) with a structured error naming the events —
        // never silently collapse the interval to a point.
        let session = AnalysisSession::builder()
            .probabilities(vec![None, Some(0.2)])
            .intervals(vec![ProbInterval::new(0.1, 0.3).ok(), None])
            .build(corpus::or2());
        let top = Formula::atom("Top");
        for result in [
            session.top_event_probability(),
            session.formula_probability(&top),
            session.birnbaum(&top, "e1"),
        ] {
            match result {
                Err(BflError::IntervalProbabilities { events }) => {
                    assert_eq!(events, vec!["e1"]);
                }
                other => panic!("{other:?}"),
            }
        }
        assert!(matches!(
            session.rank_events(&top),
            Err(BflError::IntervalProbabilities { .. })
        ));
        assert!(matches!(
            session.probability_value(&top, None, Some(Method::mc())),
            Err(BflError::IntervalProbabilities { .. })
        ));
        // The interval method is the supported way in: mixed point +
        // interval annotations propagate, bracketing every point choice.
        let iv = session
            .probability_value(&top, None, Some(Method::Interval))
            .unwrap()
            .unwrap();
        let ProbValue::Interval(iv) = iv else {
            panic!("{iv:?}")
        };
        let lo = 1.0 - 0.9 * 0.8; // P(e1) = 0.1
        let hi = 1.0 - 0.7 * 0.8; // P(e1) = 0.3
        assert!((iv.lo - lo).abs() < 1e-12);
        assert!((iv.hi - hi).abs() < 1e-12);
    }

    #[test]
    fn prob_query_outcome_carries_method_fields() {
        let tree = Arc::new(corpus::or2());
        let q = parse_query("P(Top) >= 0.3").unwrap();
        // Interval session: [0.28, 0.44] straddles 0.3 → undecided,
        // conservatively does not hold; interval lands in the outcome.
        let session = AnalysisSession::builder()
            .intervals(vec![
                ProbInterval::new(0.1, 0.3).ok(),
                ProbInterval::new(0.2, 0.2).ok(),
            ])
            .method(Method::Interval)
            .build(Arc::clone(&tree));
        let o = session.check_query(&q).unwrap();
        assert!(!o.holds);
        assert_eq!(o.method, Some(Method::Interval));
        assert_eq!(o.probability, None);
        let iv = o.interval.expect("interval outcome");
        assert!((iv.lo - 0.28).abs() < 1e-12 && (iv.hi - 0.44).abs() < 1e-12);
        // A bound below the whole interval is decidedly true.
        let o = session
            .check_query(&parse_query("P(Top) >= 0.2").unwrap())
            .unwrap();
        assert!(o.holds);
        // Monte Carlo session: estimate + CI land in the outcome, and no
        // BDD is built for the judgement.
        let session = AnalysisSession::builder()
            .probabilities(vec![Some(0.1), Some(0.2)])
            .method(Method::mc())
            .build(tree);
        let o = session
            .check_query(&parse_query("P(Top) >= 0.2").unwrap())
            .unwrap();
        assert!(o.holds);
        assert_eq!(o.method, Some(Method::mc()));
        let e = o.estimate.expect("estimate outcome");
        assert!(e.ci_lo <= 0.28 && 0.28 <= e.ci_hi);
        assert_eq!(o.stats.bdd_nodes, 0);
    }

    #[test]
    fn queries_work_across_threads() {
        let session = Arc::new(AnalysisSession::new(corpus::covid()));
        let q = parse_query("exists MCS(IWoS) & H4").unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&session);
                let q = q.clone();
                std::thread::spawn(move || s.check_query(&q).unwrap().holds)
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap());
        }
    }
}
