//! A textual DSL for BFL — the paper's third future-work item ("a Domain
//! Specific Language for BFL").
//!
//! The grammar (binding strength increasing downwards; `name` is a bare
//! identifier `[A-Za-z_][A-Za-z0-9_/]*` or a quoted string):
//!
//! ```text
//! query   := ('exists' | '∃') formula
//!          | ('forall' | '∀') formula
//!          | 'IDP' '(' formula ',' formula ')'
//!          | 'SUP' '(' name ')'
//!          | 'P' '(' formula ('|' formula)? ')' cmp prob
//!          | 'importance' '(' formula ')'
//!          | 'cause' '(' formula (',' binding)* ')'
//!          | 'causes' '(' formula (',' binding)* ',' nat ')'
//! binding := name (':=' | '=' | '↦') bit
//! prob    := a decimal in [0, 1], e.g. '0.01', '1', '2.5e-3'
//! formula := iff
//! iff     := imp (('<=>' | '≡' | '!=' | '≢') imp)*        (left-assoc)
//! imp     := or ('=>' imp)?                               (right-assoc)
//! or      := and (('|' | '∨') and)*
//! and     := unary (('&' | '∧') unary)*
//! unary   := ('!' | '¬') unary | postfix
//! postfix := primary ('[' name (':=' | '↦') bit (',' name (':=' | '↦') bit)* ']')*
//! primary := name | 'true' | 'false' | '(' formula ')'
//!          | 'MCS' '(' formula ')' | 'MPS' '(' formula ')'
//!          | 'VOT' '(' cmp nat ';' formula (',' formula)* ')'
//! cmp     := '<' | '<=' | '=' | '>=' | '>'
//! bit     := '0' | '1' | 'true' | 'false'
//! ```
//!
//! Pretty-printing ([`Formula`]'s `Display`) emits exactly this grammar;
//! `parse(format!("{f}")) == f` is enforced by property tests.
//!
//! **Conditional probabilities and `|`**: inside `P(…)`, a `|` at
//! parenthesis depth 0 is the conditional separator (`P(ϕ | ψ)`), *not*
//! disjunction — parenthesise to disambiguate (`P((a | b)) >= 0.1` is a
//! disjunction bound, `P(a | b) >= 0.1` a conditional). The
//! pretty-printer always emits the parenthesised form for such operands.
//! `P`, `importance`, `cause` and `causes` are recognised positionally (a
//! name followed by `(` at the head of a query), so fault-tree elements
//! with those names remain usable as atoms everywhere.
//!
//! # Example
//!
//! ```
//! use bfl_core::parser::{parse_formula, parse_query};
//! let phi = parse_formula("MCS(IWoS) & H4")?;
//! assert_eq!(phi.to_string(), "MCS(IWoS) & H4");
//! let psi = parse_query("forall VOT(>=2; H1, H2, H3) => IWoS")?;
//! assert_eq!(psi.to_string(), "forall VOT(>=2; H1, H2, H3) => IWoS");
//! # Ok::<(), bfl_core::parser::ParseError>(())
//! ```

use std::error::Error;
use std::fmt;

use crate::ast::{CmpOp, Formula, Prob, Query};

/// A parse error with 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Name(String),
    Number(u32),
    Float(f64),
    KwMcs,
    KwMps,
    KwVot,
    KwIdp,
    KwSup,
    KwExists,
    KwForall,
    KwTrue,
    KwFalse,
    Bang,
    Amp,
    Pipe,
    Arrow,  // =>
    IffOp,  // <=>
    NeqOp,  // !=
    Assign, // :=
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semicolon,
    Lt,
    Le,
    EqCmp,
    Ge,
    Gt,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s: String = match self {
            Tok::Name(n) => format!("name `{n}`"),
            Tok::Number(n) => format!("number `{n}`"),
            Tok::Float(x) => format!("number `{x}`"),
            Tok::KwMcs => "`MCS`".into(),
            Tok::KwMps => "`MPS`".into(),
            Tok::KwVot => "`VOT`".into(),
            Tok::KwIdp => "`IDP`".into(),
            Tok::KwSup => "`SUP`".into(),
            Tok::KwExists => "`exists`".into(),
            Tok::KwForall => "`forall`".into(),
            Tok::KwTrue => "`true`".into(),
            Tok::KwFalse => "`false`".into(),
            Tok::Bang => "`!`".into(),
            Tok::Amp => "`&`".into(),
            Tok::Pipe => "`|`".into(),
            Tok::Arrow => "`=>`".into(),
            Tok::IffOp => "`<=>`".into(),
            Tok::NeqOp => "`!=`".into(),
            Tok::Assign => "`:=`".into(),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::LBracket => "`[`".into(),
            Tok::RBracket => "`]`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Semicolon => "`;`".into(),
            Tok::Lt => "`<`".into(),
            Tok::Le => "`<=`".into(),
            Tok::EqCmp => "`=`".into(),
            Tok::Ge => "`>=`".into(),
            Tok::Gt => "`>`".into(),
        };
        f.write_str(&s)
    }
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

struct Lexer<'a> {
    src: &'a str,
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            chars: src.char_indices().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn bump(&mut self) -> Option<(usize, char)> {
        let next = self.chars.next();
        if let Some((_, c)) = next {
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        next
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn tokenize(mut self) -> Result<Vec<Spanned>, ParseError> {
        let mut out = Vec::new();
        while let Some(&(i, c)) = self.chars.peek() {
            let (line, col) = (self.line, self.col);
            let mut push = |tok: Tok| out.push(Spanned { tok, line, col });
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '(' => {
                    self.bump();
                    push(Tok::LParen);
                }
                ')' => {
                    self.bump();
                    push(Tok::RParen);
                }
                '[' => {
                    self.bump();
                    push(Tok::LBracket);
                }
                ']' => {
                    self.bump();
                    push(Tok::RBracket);
                }
                ',' => {
                    self.bump();
                    push(Tok::Comma);
                }
                ';' => {
                    self.bump();
                    push(Tok::Semicolon);
                }
                '&' | '∧' => {
                    self.bump();
                    push(Tok::Amp);
                }
                '|' | '∨' => {
                    self.bump();
                    push(Tok::Pipe);
                }
                '¬' => {
                    self.bump();
                    push(Tok::Bang);
                }
                '≡' => {
                    self.bump();
                    push(Tok::IffOp);
                }
                '≢' => {
                    self.bump();
                    push(Tok::NeqOp);
                }
                '⇒' => {
                    self.bump();
                    push(Tok::Arrow);
                }
                '↦' => {
                    self.bump();
                    push(Tok::Assign);
                }
                '∃' => {
                    self.bump();
                    push(Tok::KwExists);
                }
                '∀' => {
                    self.bump();
                    push(Tok::KwForall);
                }
                '!' => {
                    self.bump();
                    if matches!(self.chars.peek(), Some(&(_, '='))) {
                        self.bump();
                        push(Tok::NeqOp);
                    } else {
                        push(Tok::Bang);
                    }
                }
                '=' => {
                    self.bump();
                    if matches!(self.chars.peek(), Some(&(_, '>'))) {
                        self.bump();
                        push(Tok::Arrow);
                    } else {
                        push(Tok::EqCmp);
                    }
                }
                '<' => {
                    self.bump();
                    if matches!(self.chars.peek(), Some(&(_, '='))) {
                        self.bump();
                        if matches!(self.chars.peek(), Some(&(_, '>'))) {
                            self.bump();
                            push(Tok::IffOp);
                        } else {
                            push(Tok::Le);
                        }
                    } else {
                        push(Tok::Lt);
                    }
                }
                '>' => {
                    self.bump();
                    if matches!(self.chars.peek(), Some(&(_, '='))) {
                        self.bump();
                        push(Tok::Ge);
                    } else {
                        push(Tok::Gt);
                    }
                }
                ':' => {
                    self.bump();
                    if matches!(self.chars.peek(), Some(&(_, '='))) {
                        self.bump();
                        push(Tok::Assign);
                    } else {
                        return Err(self.error("expected `=` after `:`"));
                    }
                }
                '"' => {
                    self.bump();
                    let mut name = String::new();
                    let mut closed = false;
                    while let Some((_, ch)) = self.bump() {
                        if ch == '"' {
                            closed = true;
                            break;
                        }
                        name.push(ch);
                    }
                    if !closed {
                        return Err(self.error("unterminated quoted name"));
                    }
                    if name.is_empty() {
                        return Err(self.error("empty quoted name"));
                    }
                    push(Tok::Name(name));
                }
                c if c.is_ascii_digit() => {
                    let start = i;
                    let mut end = i;
                    let digits = |lx: &mut Lexer<'a>, end: &mut usize| {
                        while let Some(&(j, ch)) = lx.chars.peek() {
                            if ch.is_ascii_digit() {
                                *end = j + ch.len_utf8();
                                lx.bump();
                            } else {
                                break;
                            }
                        }
                    };
                    digits(&mut self, &mut end);
                    let mut is_float = false;
                    if matches!(self.chars.peek(), Some(&(_, '.'))) {
                        is_float = true;
                        let (j, _) = self.bump().unwrap_or_else(|| unreachable!("peeked"));
                        end = j + 1;
                        let before = end;
                        digits(&mut self, &mut end);
                        if end == before {
                            return Err(self.error("expected digits after decimal point"));
                        }
                    }
                    if matches!(self.chars.peek(), Some(&(_, 'e' | 'E'))) {
                        is_float = true;
                        let (j, ch) = self.bump().unwrap_or_else(|| unreachable!("peeked"));
                        end = j + ch.len_utf8();
                        if matches!(self.chars.peek(), Some(&(_, '+' | '-'))) {
                            let (j, _) = self.bump().unwrap_or_else(|| unreachable!("peeked"));
                            end = j + 1;
                        }
                        let before = end;
                        digits(&mut self, &mut end);
                        if end == before {
                            return Err(self.error("expected digits in exponent"));
                        }
                    }
                    let text = &self.src[start..end];
                    if is_float {
                        let x: f64 = text
                            .parse()
                            .map_err(|_| self.error(format!("number `{text}` is malformed")))?;
                        push(Tok::Float(x));
                    } else {
                        let n: u32 = text
                            .parse()
                            .map_err(|_| self.error(format!("number `{text}` out of range")))?;
                        push(Tok::Number(n));
                    }
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let start = i;
                    let mut end = i + c.len_utf8();
                    self.bump();
                    while let Some(&(j, ch)) = self.chars.peek() {
                        if ch.is_ascii_alphanumeric() || ch == '_' || ch == '/' {
                            end = j + ch.len_utf8();
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    let word = &self.src[start..end];
                    push(match word {
                        "MCS" => Tok::KwMcs,
                        "MPS" => Tok::KwMps,
                        "VOT" => Tok::KwVot,
                        "IDP" => Tok::KwIdp,
                        "SUP" => Tok::KwSup,
                        "exists" => Tok::KwExists,
                        "forall" => Tok::KwForall,
                        "true" => Tok::KwTrue,
                        "false" => Tok::KwFalse,
                        _ => Tok::Name(word.to_string()),
                    });
                }
                other => {
                    return Err(self.error(format!("unexpected character `{other}`")));
                }
            }
        }
        Ok(out)
    }
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    end_line: usize,
    end_col: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error_here(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self
            .tokens
            .get(self.pos)
            .map(|s| (s.line, s.col))
            .unwrap_or((self.end_line, self.end_col));
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == tok => {
                self.bump();
                Ok(())
            }
            Some(t) => Err(self.error_here(format!("expected {tok}, found {t}"))),
            None => Err(self.error_here(format!("expected {tok}, found end of input"))),
        }
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Name(n)) => Ok(n),
            Some(t) => {
                self.pos -= 1;
                Err(self.error_here(format!("expected a name, found {t}")))
            }
            None => Err(self.error_here("expected a name, found end of input")),
        }
    }

    fn parse_query(&mut self) -> Result<Query, ParseError> {
        match self.peek() {
            Some(Tok::KwExists) => {
                self.bump();
                Ok(Query::Exists(self.parse_formula()?))
            }
            Some(Tok::KwForall) => {
                self.bump();
                Ok(Query::Forall(self.parse_formula()?))
            }
            Some(Tok::KwIdp) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let a = self.parse_formula()?;
                self.expect(&Tok::Comma)?;
                let b = self.parse_formula()?;
                self.expect(&Tok::RParen)?;
                Ok(Query::Idp(a, b))
            }
            Some(Tok::KwSup) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let name = self.parse_name()?;
                self.expect(&Tok::RParen)?;
                Ok(Query::Sup(name))
            }
            _ if self.peek_call("P") => self.parse_prob_query(),
            _ if self.peek_call("importance") => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let f = self.parse_formula()?;
                self.expect(&Tok::RParen)?;
                Ok(Query::Importance(f))
            }
            _ if self.peek_call("cause") => self.parse_cause_query(false),
            _ if self.peek_call("causes") => self.parse_cause_query(true),
            _ => Err(self.error_here(
                "expected a layer-2 query (`exists`, `forall`, `IDP(…)`, `SUP(…)`, \
                 `P(…) ▷◁ p`, `importance(…)`, `cause(…)` or `causes(…, k)`)",
            )),
        }
    }

    /// Whether the next two tokens are `word` `(` — how the quantitative
    /// judgements `P(…)` and `importance(…)` are recognised without
    /// reserving their names.
    fn peek_call(&self, word: &str) -> bool {
        matches!(self.peek(), Some(Tok::Name(n)) if n == word)
            && matches!(
                self.tokens.get(self.pos + 1).map(|s| &s.tok),
                Some(Tok::LParen)
            )
    }

    /// `P '(' formula ('|' formula)? ')' cmp prob`. The operands are
    /// delimited by scanning for the matching `)` and the first `|` at
    /// parenthesis depth 0 (the conditional separator — see the module
    /// docs), then parsed as ordinary formulae.
    fn parse_prob_query(&mut self) -> Result<Query, ParseError> {
        self.bump(); // `P`
        self.expect(&Tok::LParen)?;
        let open = self.pos;
        let mut depth: i64 = 0;
        let mut pipe = None;
        let mut close = None;
        for i in open..self.tokens.len() {
            match &self.tokens[i].tok {
                Tok::LParen | Tok::LBracket => depth += 1,
                Tok::RParen if depth == 0 => {
                    close = Some(i);
                    break;
                }
                Tok::RParen | Tok::RBracket => depth -= 1,
                Tok::Pipe if depth == 0 && pipe.is_none() => pipe = Some(i),
                _ => {}
            }
        }
        let Some(close) = close else {
            self.pos = self.tokens.len();
            return Err(self.error_here("expected `)` closing `P(`"));
        };
        let formula = self.parse_operand_range(open, pipe.unwrap_or(close))?;
        let given = pipe
            .map(|p| self.parse_operand_range(p + 1, close))
            .transpose()?;
        self.pos = close + 1;
        let op = self.parse_cmp("expected comparison (`<`, `<=`, `=`, `>=`, `>`) after `P(…)`")?;
        let (bline, bcol) = self
            .tokens
            .get(self.pos)
            .map(|s| (s.line, s.col))
            .unwrap_or((self.end_line, self.end_col));
        let raw = match self.bump() {
            Some(Tok::Number(n)) => f64::from(n),
            Some(Tok::Float(x)) => x,
            Some(t) => {
                self.pos -= 1;
                return Err(self.error_here(format!("expected a probability bound, found {t}")));
            }
            None => return Err(self.error_here("expected a probability bound, found end of input")),
        };
        let bound = Prob::new(raw).map_err(|e| ParseError {
            line: bline,
            col: bcol,
            message: e.to_string(),
        })?;
        Ok(Query::Prob {
            formula,
            given,
            op,
            bound,
        })
    }

    /// `cause '(' formula (',' binding)* ')'` and
    /// `causes '(' formula (',' binding)* ',' nat ')'` where
    /// `binding := name (':=' | '=' | '↦') bit`. The operand and the
    /// bindings are delimited by scanning for depth-0 commas and the
    /// matching `)` — formulae never print a depth-0 comma, so the split
    /// is unambiguous (same technique as [`Parser::parse_prob_query`]).
    fn parse_cause_query(&mut self, bounded: bool) -> Result<Query, ParseError> {
        let head = if bounded { "causes" } else { "cause" };
        self.bump(); // `cause` / `causes`
        self.expect(&Tok::LParen)?;
        let open = self.pos;
        let mut depth: i64 = 0;
        let mut cuts = Vec::new();
        let mut close = None;
        for i in open..self.tokens.len() {
            match &self.tokens[i].tok {
                Tok::LParen | Tok::LBracket => depth += 1,
                Tok::RParen if depth == 0 => {
                    close = Some(i);
                    break;
                }
                Tok::RParen | Tok::RBracket => depth -= 1,
                Tok::Comma if depth == 0 => cuts.push(i),
                _ => {}
            }
        }
        let Some(close) = close else {
            self.pos = self.tokens.len();
            return Err(self.error_here(format!("expected `)` closing `{head}(`")));
        };
        let formula = self.parse_operand_range(open, cuts.first().copied().unwrap_or(close))?;
        // The comma-separated tail: evidence bindings, plus (for
        // `causes`) the trailing enumeration bound.
        let mut segments: Vec<(usize, usize)> = cuts
            .iter()
            .enumerate()
            .map(|(i, &cut)| (cut + 1, cuts.get(i + 1).copied().unwrap_or(close)))
            .collect();
        let limit = if bounded {
            let Some(&(a, b)) = segments.last() else {
                self.pos = close;
                return Err(self.error_here("`causes(…)` needs a trailing enumeration bound `k`"));
            };
            self.pos = a;
            let k = match self.bump() {
                Some(Tok::Number(n)) if self.pos == b => n,
                _ => {
                    self.pos = a;
                    return Err(self.error_here(
                        "expected the enumeration bound `k` (a bare number) as the \
                         last argument of `causes(…)`",
                    ));
                }
            };
            segments.pop();
            Some(k)
        } else {
            None
        };
        let mut evidence = Vec::with_capacity(segments.len());
        for (a, b) in segments {
            self.pos = a;
            let name = self.parse_name()?;
            match self.peek() {
                Some(Tok::Assign) | Some(Tok::EqCmp) => {
                    self.bump();
                }
                _ => return Err(self.error_here("expected `:=` or `=` in the evidence binding")),
            }
            let value = match self.bump() {
                Some(Tok::Number(0)) | Some(Tok::KwFalse) => false,
                Some(Tok::Number(1)) | Some(Tok::KwTrue) => true,
                Some(t) => {
                    self.pos -= 1;
                    return Err(self.error_here(format!(
                        "expected evidence value `0`, `1`, `true` or `false`, found {t}"
                    )));
                }
                None => return Err(self.error_here("expected evidence value, found end of input")),
            };
            if self.pos != b {
                return Err(self.error_here("unexpected trailing input in the evidence binding"));
            }
            evidence.push((name, value));
        }
        self.pos = close + 1;
        Ok(Query::Cause {
            formula,
            evidence,
            limit,
        })
    }

    /// Parses `tokens[a..b]` as a complete formula (used for the
    /// operands of `P(…)`, which are delimited by token scanning).
    fn parse_operand_range(&self, a: usize, b: usize) -> Result<Formula, ParseError> {
        let (end_line, end_col) = self
            .tokens
            .get(b)
            .map(|s| (s.line, s.col))
            .unwrap_or((self.end_line, self.end_col));
        let mut sub = Parser {
            tokens: self.tokens[a..b].to_vec(),
            pos: 0,
            end_line,
            end_col,
        };
        let f = sub.parse_formula()?;
        sub.finish()?;
        Ok(f)
    }

    /// Parses one comparison operator token.
    fn parse_cmp(&mut self, expectation: &str) -> Result<CmpOp, ParseError> {
        match self.bump() {
            Some(Tok::Lt) => Ok(CmpOp::Lt),
            Some(Tok::Le) => Ok(CmpOp::Le),
            Some(Tok::EqCmp) => Ok(CmpOp::Eq),
            Some(Tok::Ge) => Ok(CmpOp::Ge),
            Some(Tok::Gt) => Ok(CmpOp::Gt),
            Some(t) => {
                self.pos -= 1;
                Err(self.error_here(format!("{expectation}, found {t}")))
            }
            None => Err(self.error_here(format!("{expectation}, found end of input"))),
        }
    }

    fn parse_formula(&mut self) -> Result<Formula, ParseError> {
        self.parse_iff()
    }

    fn parse_iff(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.parse_implies()?;
        loop {
            match self.peek() {
                Some(Tok::IffOp) => {
                    self.bump();
                    let rhs = self.parse_implies()?;
                    lhs = lhs.iff(rhs);
                }
                Some(Tok::NeqOp) => {
                    self.bump();
                    let rhs = self.parse_implies()?;
                    lhs = lhs.neq(rhs);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_implies(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.parse_or()?;
        if matches!(self.peek(), Some(Tok::Arrow)) {
            self.bump();
            let rhs = self.parse_implies()?; // right-associative
            Ok(lhs.implies(rhs))
        } else {
            Ok(lhs)
        }
    }

    fn parse_or(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.parse_and()?;
        while matches!(self.peek(), Some(Tok::Pipe)) {
            self.bump();
            let rhs = self.parse_and()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.parse_unary()?;
        while matches!(self.peek(), Some(Tok::Amp)) {
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Formula, ParseError> {
        if matches!(self.peek(), Some(Tok::Bang)) {
            self.bump();
            Ok(self.parse_unary()?.not())
        } else {
            self.parse_postfix()
        }
    }

    fn parse_postfix(&mut self) -> Result<Formula, ParseError> {
        let mut f = self.parse_primary()?;
        while matches!(self.peek(), Some(Tok::LBracket)) {
            self.bump();
            loop {
                let name = self.parse_name()?;
                self.expect(&Tok::Assign)?;
                let value = match self.bump() {
                    Some(Tok::Number(0)) | Some(Tok::KwFalse) => false,
                    Some(Tok::Number(1)) | Some(Tok::KwTrue) => true,
                    Some(t) => {
                        self.pos -= 1;
                        return Err(self.error_here(format!(
                            "expected evidence value `0`, `1`, `true` or `false`, found {t}"
                        )));
                    }
                    None => {
                        return Err(self.error_here("expected evidence value, found end of input"))
                    }
                };
                f = f.with_evidence(name, value);
                match self.peek() {
                    Some(Tok::Comma) => {
                        self.bump();
                    }
                    _ => break,
                }
            }
            self.expect(&Tok::RBracket)?;
        }
        Ok(f)
    }

    fn parse_primary(&mut self) -> Result<Formula, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Name(_)) => {
                let name = self.parse_name()?;
                Ok(Formula::atom(name))
            }
            Some(Tok::KwTrue) => {
                self.bump();
                Ok(Formula::top())
            }
            Some(Tok::KwFalse) => {
                self.bump();
                Ok(Formula::bot())
            }
            Some(Tok::LParen) => {
                self.bump();
                let f = self.parse_formula()?;
                self.expect(&Tok::RParen)?;
                Ok(f)
            }
            Some(Tok::KwMcs) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let f = self.parse_formula()?;
                self.expect(&Tok::RParen)?;
                Ok(f.mcs())
            }
            Some(Tok::KwMps) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let f = self.parse_formula()?;
                self.expect(&Tok::RParen)?;
                Ok(f.mps())
            }
            Some(Tok::KwVot) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let op = self.parse_cmp("expected comparison (`<`, `<=`, `=`, `>=`, `>`)")?;
                let k = match self.bump() {
                    Some(Tok::Number(n)) => n,
                    Some(t) => {
                        self.pos -= 1;
                        return Err(self.error_here(format!("expected threshold, found {t}")));
                    }
                    None => return Err(self.error_here("expected threshold, found end of input")),
                };
                self.expect(&Tok::Semicolon)?;
                let mut operands = vec![self.parse_formula()?];
                while matches!(self.peek(), Some(Tok::Comma)) {
                    self.bump();
                    operands.push(self.parse_formula()?);
                }
                self.expect(&Tok::RParen)?;
                Ok(Formula::vot(op, k, operands))
            }
            Some(t) => Err(self.error_here(format!("expected a formula, found {t}"))),
            None => Err(self.error_here("expected a formula, found end of input")),
        }
    }

    fn finish(&self) -> Result<(), ParseError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.error_here("unexpected trailing input"))
        }
    }
}

fn make_parser(input: &str) -> Result<Parser, ParseError> {
    let end_line = input.lines().count().max(1);
    let end_col = input
        .lines()
        .last()
        .map(|l| l.chars().count() + 1)
        .unwrap_or(1);
    let tokens = Lexer::new(input).tokenize()?;
    Ok(Parser {
        tokens,
        pos: 0,
        end_line,
        end_col,
    })
}

/// Parses a layer-1 formula.
///
/// # Errors
///
/// Returns a [`ParseError`] with source position on lexical or grammatical
/// problems, including trailing input.
pub fn parse_formula(input: &str) -> Result<Formula, ParseError> {
    let mut p = make_parser(input)?;
    let f = p.parse_formula()?;
    p.finish()?;
    Ok(f)
}

/// Parses a layer-2 query (`exists/forall/IDP/SUP`).
///
/// # Errors
///
/// As [`parse_formula`].
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let mut p = make_parser(input)?;
    let q = p.parse_query()?;
    p.finish()?;
    Ok(q)
}

/// Either layer, for tools that accept both (e.g. the CLI).
#[derive(Debug, Clone, PartialEq)]
pub enum Spec {
    /// A layer-1 formula (to be paired with a status vector).
    Formula(Formula),
    /// A layer-2 query.
    Query(Query),
}

impl fmt::Display for Spec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Spec::Formula(x) => x.fmt(f),
            Spec::Query(x) => x.fmt(f),
        }
    }
}

/// Parses either a query or a formula (queries are recognised by their
/// leading keyword).
///
/// # Errors
///
/// As [`parse_formula`].
pub fn parse_spec(input: &str) -> Result<Spec, ParseError> {
    let mut p = make_parser(input)?;
    let is_query = matches!(
        p.peek(),
        Some(Tok::KwExists) | Some(Tok::KwForall) | Some(Tok::KwIdp) | Some(Tok::KwSup)
    ) || p.peek_call("P")
        || p.peek_call("importance")
        || p.peek_call("cause")
        || p.peek_call("causes");
    let spec = if is_query {
        Spec::Query(p.parse_query()?)
    } else {
        Spec::Formula(p.parse_formula()?)
    };
    p.finish()?;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) {
        let f = parse_formula(src).unwrap();
        let printed = f.to_string();
        let again = parse_formula(&printed).unwrap();
        assert_eq!(f, again, "printed as `{printed}`");
    }

    #[test]
    fn atoms_and_connectives() {
        let f = parse_formula("a & !b | c => d <=> e").unwrap();
        // Precedence: (((a & !b) | c) => d) <=> e; `<=>` binds loosest so
        // the printer needs no parentheses.
        assert_eq!(f.to_string(), "a & !b | c => d <=> e");
        assert_eq!(parse_formula(&f.to_string()).unwrap(), f);
    }

    #[test]
    fn implication_is_right_associative() {
        let f = parse_formula("a => b => c").unwrap();
        assert_eq!(
            f,
            Formula::atom("a").implies(Formula::atom("b").implies(Formula::atom("c")))
        );
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let f = parse_formula("a | b & c").unwrap();
        assert_eq!(
            f,
            Formula::atom("a").or(Formula::atom("b").and(Formula::atom("c")))
        );
    }

    #[test]
    fn unicode_operators() {
        let f = parse_formula("¬a ∧ b ∨ c ⇒ d").unwrap();
        let g = parse_formula("!a & b | c => d").unwrap();
        assert_eq!(f, g);
        let q = parse_query("∀ a ⇒ b").unwrap();
        assert_eq!(
            q,
            Query::forall(Formula::atom("a").implies(Formula::atom("b")))
        );
    }

    #[test]
    fn evidence_brackets() {
        let f = parse_formula("MPS(IWoS)[H1 := 0, H2 := 1]").unwrap();
        assert_eq!(
            f,
            Formula::atom("IWoS")
                .mps()
                .with_evidence("H1", false)
                .with_evidence("H2", true)
        );
        let g = parse_formula("a[e ↦ 1]").unwrap();
        assert_eq!(g, Formula::atom("a").with_evidence("e", true));
    }

    #[test]
    fn vot_forms() {
        let f = parse_formula("VOT(>=2; H1, H2, H3)").unwrap();
        assert_eq!(
            f,
            Formula::vot(CmpOp::Ge, 2, ["H1", "H2", "H3"].map(Formula::atom))
        );
        for op in ["<", "<=", "=", ">=", ">"] {
            let src = format!("VOT({op}1; a, b)");
            assert!(parse_formula(&src).is_ok(), "{src}");
        }
    }

    #[test]
    fn queries() {
        assert_eq!(
            parse_query("exists MCS(Top)").unwrap(),
            Query::Exists(Formula::atom("Top").mcs())
        );
        assert_eq!(
            parse_query("IDP(CIO, CIS)").unwrap(),
            Query::Idp(Formula::atom("CIO"), Formula::atom("CIS"))
        );
        assert_eq!(parse_query("SUP(PP)").unwrap(), Query::Sup("PP".into()));
    }

    #[test]
    fn prob_judgements() {
        let q = parse_query("P(IWoS) <= 0.01").unwrap();
        assert_eq!(
            q,
            Query::prob(Formula::atom("IWoS"), CmpOp::Le, 0.01).unwrap()
        );
        // Integer bounds, equality, and scientific notation all lex.
        assert!(parse_query("P(Top) = 1").is_ok());
        assert!(parse_query("P(Top) >= 2.5e-3").is_ok());
        assert!(parse_query("P(MCS(Top) & H4) > 0").is_ok());
        // The conditional separator is a depth-0 `|`.
        let c = parse_query("P(Top | H1 & H2) < 0.5").unwrap();
        assert_eq!(
            c,
            Query::prob_given(
                Formula::atom("Top"),
                Formula::atom("H1").and(Formula::atom("H2")),
                CmpOp::Lt,
                0.5
            )
            .unwrap()
        );
        // Parenthesised `|` stays a disjunction.
        let d = parse_query("P((a | b)) >= 0.1").unwrap();
        assert_eq!(
            d,
            Query::prob(Formula::atom("a").or(Formula::atom("b")), CmpOp::Ge, 0.1).unwrap()
        );
        // Evidence brackets inside the operand do not confuse the scan.
        assert!(parse_query("P(Top[H1 := 1]) <= 0.9").is_ok());
    }

    #[test]
    fn importance_judgement() {
        assert_eq!(
            parse_query("importance(IWoS)").unwrap(),
            Query::importance(Formula::atom("IWoS"))
        );
        assert!(parse_query("importance(MCS(Top) & H4)").is_ok());
    }

    #[test]
    fn prob_judgement_errors() {
        // Out-of-range bound carries the bound's position.
        let e = parse_query("P(Top) >= 1.5").unwrap_err();
        assert!(e.message.contains("[0, 1]"), "{e}");
        assert_eq!(e.col, 11);
        // Missing close paren, missing comparison, missing bound.
        assert!(parse_query("P(Top").is_err());
        assert!(parse_query("P(Top) Top").is_err());
        assert!(parse_query("P(Top) >=").is_err());
        // Empty operands around the conditional separator.
        assert!(parse_query("P(| Top) >= 0").is_err());
        assert!(parse_query("P(Top |) >= 0").is_err());
        // Malformed numbers.
        assert!(parse_formula("VOT(>=2; a, b)").is_ok());
        assert!(parse_query("P(Top) >= 0.").is_err());
        assert!(parse_query("P(Top) >= 1e").is_err());
    }

    #[test]
    fn prob_query_round_trips() {
        for src in [
            "P(Top) <= 0.3",
            "P((a | b)) >= 0.1",
            "P(Top | H1 & H2) < 0.5",
            "P((a => b) | c) = 0.25",
            "P(MCS(Top)[e := 0]) > 0.001",
            "importance(MCS(Top) & H4)",
        ] {
            let q = parse_query(src).unwrap();
            let printed = q.to_string();
            assert_eq!(parse_query(&printed).unwrap(), q, "printed as `{printed}`");
        }
    }

    #[test]
    fn cause_queries() {
        let q = parse_query("cause(Top, A := 1, B := 0)").unwrap();
        assert_eq!(
            q,
            Query::cause(Formula::atom("Top"), [("A", true), ("B", false)])
        );
        // `=` and `↦` are accepted alongside `:=`; values may be words.
        let q2 = parse_query("cause(Top, A = true, B ↦ false)").unwrap();
        assert_eq!(
            q2,
            Query::cause(Formula::atom("Top"), [("A", true), ("B", false)])
        );
        // Bounded enumeration: trailing bare number is the bound.
        let k = parse_query("causes(MCS(Top), A := 1, 5)").unwrap();
        assert_eq!(
            k,
            Query::causes(Formula::atom("Top").mcs(), [("A", true)], 5)
        );
        // Empty evidence is allowed in both forms.
        assert_eq!(
            parse_query("cause(Top)").unwrap(),
            Query::cause(Formula::atom("Top"), Vec::<(String, bool)>::new())
        );
        assert_eq!(
            parse_query("causes(Top, 3)").unwrap(),
            Query::causes(Formula::atom("Top"), Vec::<(String, bool)>::new(), 3)
        );
        // Commas inside the operand (VOT, evidence brackets) do not cut.
        let v = parse_query("cause(VOT(>=2; a, b, c), a := 1)").unwrap();
        assert!(matches!(v, Query::Cause { ref evidence, .. } if evidence.len() == 1));
        assert!(parse_query("cause(Top[e := 1], A := 1)").is_ok());
    }

    #[test]
    fn cause_query_errors() {
        assert!(parse_query("cause(Top").is_err());
        assert!(parse_query("cause(Top, A)").is_err());
        assert!(parse_query("cause(Top, A := 2)").is_err());
        assert!(parse_query("cause(Top, A := 1 x)").is_err());
        // `causes` insists on the trailing bound; `cause` rejects one.
        assert!(parse_query("causes(Top, A := 1)").is_err());
        assert!(parse_query("causes(Top)").is_err());
        assert!(parse_query("cause(Top, 5)").is_err());
        let e = parse_query("causes(Top, A := 1)").unwrap_err();
        assert!(e.message.contains("bound"), "{e}");
    }

    #[test]
    fn cause_query_round_trips() {
        for src in [
            "cause(Top)",
            "cause(Top, A := 1)",
            "cause(MCS(Top) & H4, A := 1, B := 0)",
            "causes(Top, 3)",
            "causes(VOT(>=2; a, b, c), a := 1, b := 1, 7)",
            "cause(\"a b\", \"c d\" := 1)",
        ] {
            let q = parse_query(src).unwrap();
            let printed = q.to_string();
            assert_eq!(parse_query(&printed).unwrap(), q, "printed as `{printed}`");
        }
    }

    #[test]
    fn cause_spec_dispatch() {
        assert!(matches!(
            parse_spec("cause(Top, A := 1)").unwrap(),
            Spec::Query(Query::Cause { .. })
        ));
        assert!(matches!(
            parse_spec("causes(Top, 2)").unwrap(),
            Spec::Query(Query::Cause { limit: Some(2), .. })
        ));
        // Bare atoms named `cause`/`causes` stay formulae.
        assert!(matches!(parse_spec("cause & x").unwrap(), Spec::Formula(_)));
        assert!(matches!(parse_spec("causes").unwrap(), Spec::Formula(_)));
    }

    #[test]
    fn prob_spec_dispatch() {
        assert!(matches!(
            parse_spec("P(Top) <= 0.5").unwrap(),
            Spec::Query(Query::Prob { .. })
        ));
        assert!(matches!(
            parse_spec("importance(Top)").unwrap(),
            Spec::Query(Query::Importance(_))
        ));
        // A bare atom named `P` or `importance` is still a formula.
        assert!(matches!(parse_spec("P & x").unwrap(), Spec::Formula(_)));
        assert!(matches!(
            parse_spec("importance").unwrap(),
            Spec::Formula(_)
        ));
    }

    #[test]
    fn quoted_and_slashed_names() {
        let f = parse_formula("\"a b\" & CP/R").unwrap();
        assert_eq!(f, Formula::atom("a b").and(Formula::atom("CP/R")));
    }

    #[test]
    fn spec_dispatch() {
        assert!(matches!(parse_spec("forall a").unwrap(), Spec::Query(_)));
        assert!(matches!(parse_spec("a & b").unwrap(), Spec::Formula(_)));
    }

    #[test]
    fn error_positions() {
        let err = parse_formula("a &\n& b").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.col, 1);
        let err2 = parse_formula("a b").unwrap_err();
        assert!(err2.message.contains("trailing"));
        let err3 = parse_formula("(a").unwrap_err();
        assert!(err3.message.contains("expected `)`"));
        let err4 = parse_formula("").unwrap_err();
        assert!(err4.message.contains("end of input"));
    }

    #[test]
    fn paper_properties_parse() {
        // All nine COVID case-study properties in DSL form.
        let sources = [
            "forall IS => MoT",
            "forall MoT => H1 | H2 | H3 | H4 | H5",
            "forall H4 => IWoS",
            "forall VOT(>=2; H1, H2, H3, H4, H5) => IWoS",
            "MCS(IWoS) & H4",
            "exists MPS(IWoS)[H1 := 0, H2 := 0, H3 := 0, H4 := 0, H5 := 0]",
            "MPS(IWoS)",
            "IDP(CIO, CIS)",
            "SUP(PP)",
        ];
        for src in sources {
            assert!(parse_spec(src).is_ok(), "{src}");
        }
    }

    #[test]
    fn roundtrips() {
        for src in [
            "a",
            "!a",
            "a & b & c",
            "a | b => c",
            "(a => b) => c",
            "MCS(a & b)[e := 0]",
            "MPS(x) != MCS(y)",
            "VOT(=2; a, b, c) <=> d",
            "\"weird name\" & \"MCS\"",
            "!(a | b)[c := 1]",
        ] {
            roundtrip(src);
        }
    }
}
