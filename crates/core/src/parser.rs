//! A textual DSL for BFL — the paper's third future-work item ("a Domain
//! Specific Language for BFL").
//!
//! The grammar (binding strength increasing downwards; `name` is a bare
//! identifier `[A-Za-z_][A-Za-z0-9_/]*` or a quoted string):
//!
//! ```text
//! query   := ('exists' | '∃') formula
//!          | ('forall' | '∀') formula
//!          | 'IDP' '(' formula ',' formula ')'
//!          | 'SUP' '(' name ')'
//! formula := iff
//! iff     := imp (('<=>' | '≡' | '!=' | '≢') imp)*        (left-assoc)
//! imp     := or ('=>' imp)?                               (right-assoc)
//! or      := and (('|' | '∨') and)*
//! and     := unary (('&' | '∧') unary)*
//! unary   := ('!' | '¬') unary | postfix
//! postfix := primary ('[' name (':=' | '↦') bit (',' name (':=' | '↦') bit)* ']')*
//! primary := name | 'true' | 'false' | '(' formula ')'
//!          | 'MCS' '(' formula ')' | 'MPS' '(' formula ')'
//!          | 'VOT' '(' cmp nat ';' formula (',' formula)* ')'
//! cmp     := '<' | '<=' | '=' | '>=' | '>'
//! bit     := '0' | '1' | 'true' | 'false'
//! ```
//!
//! Pretty-printing ([`Formula`]'s `Display`) emits exactly this grammar;
//! `parse(format!("{f}")) == f` is enforced by property tests.
//!
//! # Example
//!
//! ```
//! use bfl_core::parser::{parse_formula, parse_query};
//! let phi = parse_formula("MCS(IWoS) & H4")?;
//! assert_eq!(phi.to_string(), "MCS(IWoS) & H4");
//! let psi = parse_query("forall VOT(>=2; H1, H2, H3) => IWoS")?;
//! assert_eq!(psi.to_string(), "forall VOT(>=2; H1, H2, H3) => IWoS");
//! # Ok::<(), bfl_core::parser::ParseError>(())
//! ```

use std::error::Error;
use std::fmt;

use crate::ast::{CmpOp, Formula, Query};

/// A parse error with 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Name(String),
    Number(u32),
    KwMcs,
    KwMps,
    KwVot,
    KwIdp,
    KwSup,
    KwExists,
    KwForall,
    KwTrue,
    KwFalse,
    Bang,
    Amp,
    Pipe,
    Arrow,  // =>
    IffOp,  // <=>
    NeqOp,  // !=
    Assign, // :=
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semicolon,
    Lt,
    Le,
    EqCmp,
    Ge,
    Gt,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s: String = match self {
            Tok::Name(n) => format!("name `{n}`"),
            Tok::Number(n) => format!("number `{n}`"),
            Tok::KwMcs => "`MCS`".into(),
            Tok::KwMps => "`MPS`".into(),
            Tok::KwVot => "`VOT`".into(),
            Tok::KwIdp => "`IDP`".into(),
            Tok::KwSup => "`SUP`".into(),
            Tok::KwExists => "`exists`".into(),
            Tok::KwForall => "`forall`".into(),
            Tok::KwTrue => "`true`".into(),
            Tok::KwFalse => "`false`".into(),
            Tok::Bang => "`!`".into(),
            Tok::Amp => "`&`".into(),
            Tok::Pipe => "`|`".into(),
            Tok::Arrow => "`=>`".into(),
            Tok::IffOp => "`<=>`".into(),
            Tok::NeqOp => "`!=`".into(),
            Tok::Assign => "`:=`".into(),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::LBracket => "`[`".into(),
            Tok::RBracket => "`]`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Semicolon => "`;`".into(),
            Tok::Lt => "`<`".into(),
            Tok::Le => "`<=`".into(),
            Tok::EqCmp => "`=`".into(),
            Tok::Ge => "`>=`".into(),
            Tok::Gt => "`>`".into(),
        };
        f.write_str(&s)
    }
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

struct Lexer<'a> {
    src: &'a str,
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            chars: src.char_indices().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn bump(&mut self) -> Option<(usize, char)> {
        let next = self.chars.next();
        if let Some((_, c)) = next {
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        next
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn tokenize(mut self) -> Result<Vec<Spanned>, ParseError> {
        let mut out = Vec::new();
        while let Some(&(i, c)) = self.chars.peek() {
            let (line, col) = (self.line, self.col);
            let mut push = |tok: Tok| out.push(Spanned { tok, line, col });
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '(' => {
                    self.bump();
                    push(Tok::LParen);
                }
                ')' => {
                    self.bump();
                    push(Tok::RParen);
                }
                '[' => {
                    self.bump();
                    push(Tok::LBracket);
                }
                ']' => {
                    self.bump();
                    push(Tok::RBracket);
                }
                ',' => {
                    self.bump();
                    push(Tok::Comma);
                }
                ';' => {
                    self.bump();
                    push(Tok::Semicolon);
                }
                '&' | '∧' => {
                    self.bump();
                    push(Tok::Amp);
                }
                '|' | '∨' => {
                    self.bump();
                    push(Tok::Pipe);
                }
                '¬' => {
                    self.bump();
                    push(Tok::Bang);
                }
                '≡' => {
                    self.bump();
                    push(Tok::IffOp);
                }
                '≢' => {
                    self.bump();
                    push(Tok::NeqOp);
                }
                '⇒' => {
                    self.bump();
                    push(Tok::Arrow);
                }
                '↦' => {
                    self.bump();
                    push(Tok::Assign);
                }
                '∃' => {
                    self.bump();
                    push(Tok::KwExists);
                }
                '∀' => {
                    self.bump();
                    push(Tok::KwForall);
                }
                '!' => {
                    self.bump();
                    if matches!(self.chars.peek(), Some(&(_, '='))) {
                        self.bump();
                        push(Tok::NeqOp);
                    } else {
                        push(Tok::Bang);
                    }
                }
                '=' => {
                    self.bump();
                    if matches!(self.chars.peek(), Some(&(_, '>'))) {
                        self.bump();
                        push(Tok::Arrow);
                    } else {
                        push(Tok::EqCmp);
                    }
                }
                '<' => {
                    self.bump();
                    if matches!(self.chars.peek(), Some(&(_, '='))) {
                        self.bump();
                        if matches!(self.chars.peek(), Some(&(_, '>'))) {
                            self.bump();
                            push(Tok::IffOp);
                        } else {
                            push(Tok::Le);
                        }
                    } else {
                        push(Tok::Lt);
                    }
                }
                '>' => {
                    self.bump();
                    if matches!(self.chars.peek(), Some(&(_, '='))) {
                        self.bump();
                        push(Tok::Ge);
                    } else {
                        push(Tok::Gt);
                    }
                }
                ':' => {
                    self.bump();
                    if matches!(self.chars.peek(), Some(&(_, '='))) {
                        self.bump();
                        push(Tok::Assign);
                    } else {
                        return Err(self.error("expected `=` after `:`"));
                    }
                }
                '"' => {
                    self.bump();
                    let mut name = String::new();
                    let mut closed = false;
                    while let Some((_, ch)) = self.bump() {
                        if ch == '"' {
                            closed = true;
                            break;
                        }
                        name.push(ch);
                    }
                    if !closed {
                        return Err(self.error("unterminated quoted name"));
                    }
                    if name.is_empty() {
                        return Err(self.error("empty quoted name"));
                    }
                    push(Tok::Name(name));
                }
                c if c.is_ascii_digit() => {
                    let start = i;
                    let mut end = i;
                    while let Some(&(j, ch)) = self.chars.peek() {
                        if ch.is_ascii_digit() {
                            end = j + ch.len_utf8();
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    let text = &self.src[start..end];
                    let n: u32 = text
                        .parse()
                        .map_err(|_| self.error(format!("number `{text}` out of range")))?;
                    push(Tok::Number(n));
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let start = i;
                    let mut end = i + c.len_utf8();
                    self.bump();
                    while let Some(&(j, ch)) = self.chars.peek() {
                        if ch.is_ascii_alphanumeric() || ch == '_' || ch == '/' {
                            end = j + ch.len_utf8();
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    let word = &self.src[start..end];
                    push(match word {
                        "MCS" => Tok::KwMcs,
                        "MPS" => Tok::KwMps,
                        "VOT" => Tok::KwVot,
                        "IDP" => Tok::KwIdp,
                        "SUP" => Tok::KwSup,
                        "exists" => Tok::KwExists,
                        "forall" => Tok::KwForall,
                        "true" => Tok::KwTrue,
                        "false" => Tok::KwFalse,
                        _ => Tok::Name(word.to_string()),
                    });
                }
                other => {
                    return Err(self.error(format!("unexpected character `{other}`")));
                }
            }
        }
        Ok(out)
    }
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    end_line: usize,
    end_col: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error_here(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self
            .tokens
            .get(self.pos)
            .map(|s| (s.line, s.col))
            .unwrap_or((self.end_line, self.end_col));
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == tok => {
                self.bump();
                Ok(())
            }
            Some(t) => Err(self.error_here(format!("expected {tok}, found {t}"))),
            None => Err(self.error_here(format!("expected {tok}, found end of input"))),
        }
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Name(n)) => Ok(n),
            Some(t) => {
                self.pos -= 1;
                Err(self.error_here(format!("expected a name, found {t}")))
            }
            None => Err(self.error_here("expected a name, found end of input")),
        }
    }

    fn parse_query(&mut self) -> Result<Query, ParseError> {
        match self.peek() {
            Some(Tok::KwExists) => {
                self.bump();
                Ok(Query::Exists(self.parse_formula()?))
            }
            Some(Tok::KwForall) => {
                self.bump();
                Ok(Query::Forall(self.parse_formula()?))
            }
            Some(Tok::KwIdp) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let a = self.parse_formula()?;
                self.expect(&Tok::Comma)?;
                let b = self.parse_formula()?;
                self.expect(&Tok::RParen)?;
                Ok(Query::Idp(a, b))
            }
            Some(Tok::KwSup) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let name = self.parse_name()?;
                self.expect(&Tok::RParen)?;
                Ok(Query::Sup(name))
            }
            _ => Err(self
                .error_here("expected a layer-2 query (`exists`, `forall`, `IDP(…)` or `SUP(…)`)")),
        }
    }

    fn parse_formula(&mut self) -> Result<Formula, ParseError> {
        self.parse_iff()
    }

    fn parse_iff(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.parse_implies()?;
        loop {
            match self.peek() {
                Some(Tok::IffOp) => {
                    self.bump();
                    let rhs = self.parse_implies()?;
                    lhs = lhs.iff(rhs);
                }
                Some(Tok::NeqOp) => {
                    self.bump();
                    let rhs = self.parse_implies()?;
                    lhs = lhs.neq(rhs);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_implies(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.parse_or()?;
        if matches!(self.peek(), Some(Tok::Arrow)) {
            self.bump();
            let rhs = self.parse_implies()?; // right-associative
            Ok(lhs.implies(rhs))
        } else {
            Ok(lhs)
        }
    }

    fn parse_or(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.parse_and()?;
        while matches!(self.peek(), Some(Tok::Pipe)) {
            self.bump();
            let rhs = self.parse_and()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.parse_unary()?;
        while matches!(self.peek(), Some(Tok::Amp)) {
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Formula, ParseError> {
        if matches!(self.peek(), Some(Tok::Bang)) {
            self.bump();
            Ok(self.parse_unary()?.not())
        } else {
            self.parse_postfix()
        }
    }

    fn parse_postfix(&mut self) -> Result<Formula, ParseError> {
        let mut f = self.parse_primary()?;
        while matches!(self.peek(), Some(Tok::LBracket)) {
            self.bump();
            loop {
                let name = self.parse_name()?;
                self.expect(&Tok::Assign)?;
                let value = match self.bump() {
                    Some(Tok::Number(0)) | Some(Tok::KwFalse) => false,
                    Some(Tok::Number(1)) | Some(Tok::KwTrue) => true,
                    Some(t) => {
                        self.pos -= 1;
                        return Err(self.error_here(format!(
                            "expected evidence value `0`, `1`, `true` or `false`, found {t}"
                        )));
                    }
                    None => {
                        return Err(self.error_here("expected evidence value, found end of input"))
                    }
                };
                f = f.with_evidence(name, value);
                match self.peek() {
                    Some(Tok::Comma) => {
                        self.bump();
                    }
                    _ => break,
                }
            }
            self.expect(&Tok::RBracket)?;
        }
        Ok(f)
    }

    fn parse_primary(&mut self) -> Result<Formula, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Name(_)) => {
                let name = self.parse_name()?;
                Ok(Formula::atom(name))
            }
            Some(Tok::KwTrue) => {
                self.bump();
                Ok(Formula::top())
            }
            Some(Tok::KwFalse) => {
                self.bump();
                Ok(Formula::bot())
            }
            Some(Tok::LParen) => {
                self.bump();
                let f = self.parse_formula()?;
                self.expect(&Tok::RParen)?;
                Ok(f)
            }
            Some(Tok::KwMcs) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let f = self.parse_formula()?;
                self.expect(&Tok::RParen)?;
                Ok(f.mcs())
            }
            Some(Tok::KwMps) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let f = self.parse_formula()?;
                self.expect(&Tok::RParen)?;
                Ok(f.mps())
            }
            Some(Tok::KwVot) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let op = match self.bump() {
                    Some(Tok::Lt) => CmpOp::Lt,
                    Some(Tok::Le) => CmpOp::Le,
                    Some(Tok::EqCmp) => CmpOp::Eq,
                    Some(Tok::Ge) => CmpOp::Ge,
                    Some(Tok::Gt) => CmpOp::Gt,
                    Some(t) => {
                        self.pos -= 1;
                        return Err(self.error_here(format!(
                            "expected comparison (`<`, `<=`, `=`, `>=`, `>`), found {t}"
                        )));
                    }
                    None => return Err(self.error_here("expected comparison, found end of input")),
                };
                let k = match self.bump() {
                    Some(Tok::Number(n)) => n,
                    Some(t) => {
                        self.pos -= 1;
                        return Err(self.error_here(format!("expected threshold, found {t}")));
                    }
                    None => return Err(self.error_here("expected threshold, found end of input")),
                };
                self.expect(&Tok::Semicolon)?;
                let mut operands = vec![self.parse_formula()?];
                while matches!(self.peek(), Some(Tok::Comma)) {
                    self.bump();
                    operands.push(self.parse_formula()?);
                }
                self.expect(&Tok::RParen)?;
                Ok(Formula::vot(op, k, operands))
            }
            Some(t) => Err(self.error_here(format!("expected a formula, found {t}"))),
            None => Err(self.error_here("expected a formula, found end of input")),
        }
    }

    fn finish(&self) -> Result<(), ParseError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.error_here("unexpected trailing input"))
        }
    }
}

fn make_parser(input: &str) -> Result<Parser, ParseError> {
    let end_line = input.lines().count().max(1);
    let end_col = input
        .lines()
        .last()
        .map(|l| l.chars().count() + 1)
        .unwrap_or(1);
    let tokens = Lexer::new(input).tokenize()?;
    Ok(Parser {
        tokens,
        pos: 0,
        end_line,
        end_col,
    })
}

/// Parses a layer-1 formula.
///
/// # Errors
///
/// Returns a [`ParseError`] with source position on lexical or grammatical
/// problems, including trailing input.
pub fn parse_formula(input: &str) -> Result<Formula, ParseError> {
    let mut p = make_parser(input)?;
    let f = p.parse_formula()?;
    p.finish()?;
    Ok(f)
}

/// Parses a layer-2 query (`exists/forall/IDP/SUP`).
///
/// # Errors
///
/// As [`parse_formula`].
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let mut p = make_parser(input)?;
    let q = p.parse_query()?;
    p.finish()?;
    Ok(q)
}

/// Either layer, for tools that accept both (e.g. the CLI).
#[derive(Debug, Clone, PartialEq)]
pub enum Spec {
    /// A layer-1 formula (to be paired with a status vector).
    Formula(Formula),
    /// A layer-2 query.
    Query(Query),
}

impl fmt::Display for Spec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Spec::Formula(x) => x.fmt(f),
            Spec::Query(x) => x.fmt(f),
        }
    }
}

/// Parses either a query or a formula (queries are recognised by their
/// leading keyword).
///
/// # Errors
///
/// As [`parse_formula`].
pub fn parse_spec(input: &str) -> Result<Spec, ParseError> {
    let mut p = make_parser(input)?;
    let is_query = matches!(
        p.peek(),
        Some(Tok::KwExists) | Some(Tok::KwForall) | Some(Tok::KwIdp) | Some(Tok::KwSup)
    );
    let spec = if is_query {
        Spec::Query(p.parse_query()?)
    } else {
        Spec::Formula(p.parse_formula()?)
    };
    p.finish()?;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) {
        let f = parse_formula(src).unwrap();
        let printed = f.to_string();
        let again = parse_formula(&printed).unwrap();
        assert_eq!(f, again, "printed as `{printed}`");
    }

    #[test]
    fn atoms_and_connectives() {
        let f = parse_formula("a & !b | c => d <=> e").unwrap();
        // Precedence: (((a & !b) | c) => d) <=> e; `<=>` binds loosest so
        // the printer needs no parentheses.
        assert_eq!(f.to_string(), "a & !b | c => d <=> e");
        assert_eq!(parse_formula(&f.to_string()).unwrap(), f);
    }

    #[test]
    fn implication_is_right_associative() {
        let f = parse_formula("a => b => c").unwrap();
        assert_eq!(
            f,
            Formula::atom("a").implies(Formula::atom("b").implies(Formula::atom("c")))
        );
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let f = parse_formula("a | b & c").unwrap();
        assert_eq!(
            f,
            Formula::atom("a").or(Formula::atom("b").and(Formula::atom("c")))
        );
    }

    #[test]
    fn unicode_operators() {
        let f = parse_formula("¬a ∧ b ∨ c ⇒ d").unwrap();
        let g = parse_formula("!a & b | c => d").unwrap();
        assert_eq!(f, g);
        let q = parse_query("∀ a ⇒ b").unwrap();
        assert_eq!(
            q,
            Query::forall(Formula::atom("a").implies(Formula::atom("b")))
        );
    }

    #[test]
    fn evidence_brackets() {
        let f = parse_formula("MPS(IWoS)[H1 := 0, H2 := 1]").unwrap();
        assert_eq!(
            f,
            Formula::atom("IWoS")
                .mps()
                .with_evidence("H1", false)
                .with_evidence("H2", true)
        );
        let g = parse_formula("a[e ↦ 1]").unwrap();
        assert_eq!(g, Formula::atom("a").with_evidence("e", true));
    }

    #[test]
    fn vot_forms() {
        let f = parse_formula("VOT(>=2; H1, H2, H3)").unwrap();
        assert_eq!(
            f,
            Formula::vot(CmpOp::Ge, 2, ["H1", "H2", "H3"].map(Formula::atom))
        );
        for op in ["<", "<=", "=", ">=", ">"] {
            let src = format!("VOT({op}1; a, b)");
            assert!(parse_formula(&src).is_ok(), "{src}");
        }
    }

    #[test]
    fn queries() {
        assert_eq!(
            parse_query("exists MCS(Top)").unwrap(),
            Query::Exists(Formula::atom("Top").mcs())
        );
        assert_eq!(
            parse_query("IDP(CIO, CIS)").unwrap(),
            Query::Idp(Formula::atom("CIO"), Formula::atom("CIS"))
        );
        assert_eq!(parse_query("SUP(PP)").unwrap(), Query::Sup("PP".into()));
    }

    #[test]
    fn quoted_and_slashed_names() {
        let f = parse_formula("\"a b\" & CP/R").unwrap();
        assert_eq!(f, Formula::atom("a b").and(Formula::atom("CP/R")));
    }

    #[test]
    fn spec_dispatch() {
        assert!(matches!(parse_spec("forall a").unwrap(), Spec::Query(_)));
        assert!(matches!(parse_spec("a & b").unwrap(), Spec::Formula(_)));
    }

    #[test]
    fn error_positions() {
        let err = parse_formula("a &\n& b").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.col, 1);
        let err2 = parse_formula("a b").unwrap_err();
        assert!(err2.message.contains("trailing"));
        let err3 = parse_formula("(a").unwrap_err();
        assert!(err3.message.contains("expected `)`"));
        let err4 = parse_formula("").unwrap_err();
        assert!(err4.message.contains("end of input"));
    }

    #[test]
    fn paper_properties_parse() {
        // All nine COVID case-study properties in DSL form.
        let sources = [
            "forall IS => MoT",
            "forall MoT => H1 | H2 | H3 | H4 | H5",
            "forall H4 => IWoS",
            "forall VOT(>=2; H1, H2, H3, H4, H5) => IWoS",
            "MCS(IWoS) & H4",
            "exists MPS(IWoS)[H1 := 0, H2 := 0, H3 := 0, H4 := 0, H5 := 0]",
            "MPS(IWoS)",
            "IDP(CIO, CIS)",
            "SUP(PP)",
        ];
        for src in sources {
            assert!(parse_spec(src).is_ok(), "{src}");
        }
    }

    #[test]
    fn roundtrips() {
        for src in [
            "a",
            "!a",
            "a & b & c",
            "a | b => c",
            "(a => b) => c",
            "MCS(a & b)[e := 0]",
            "MPS(x) != MCS(y)",
            "VOT(=2; a, b, c) <=> d",
            "\"weird name\" & \"MCS\"",
            "!(a | b)[c := 1]",
        ] {
            roundtrip(src);
        }
    }
}
