//! Reference (naive) semantics of BFL — a direct transcription of the
//! satisfaction relation of Section III-B.
//!
//! This evaluator enumerates status vectors explicitly, so it is
//! exponential in the worst case; it exists as executable ground truth for
//! the BDD-based model checker ([`crate::checker`]) and is cross-checked
//! against it by the property-based test-suite. Use the model checker for
//! real workloads.

use bfl_fault_tree::{FaultTree, StatusVector};

use crate::ast::{Formula, Query};
use crate::error::BflError;

/// Hard cap on `|BE|` for the exhaustive quantifier/`IBE` enumerations.
pub const NAIVE_LIMIT: usize = 20;

/// Evaluates `b, T ⊨ ϕ` by direct recursion over the satisfaction
/// relation (Section III-B).
///
/// # Errors
///
/// * [`BflError::UnknownElement`] if an atom or evidence target is not in
///   the tree;
/// * [`BflError::EvidenceOnGate`] if evidence targets an intermediate
///   event.
///
/// # Panics
///
/// Panics if `b` does not cover the tree's basic events.
pub fn eval(tree: &FaultTree, b: &StatusVector, phi: &Formula) -> Result<bool, BflError> {
    match phi {
        Formula::Const(c) => Ok(*c),
        Formula::Atom(name) => {
            let e = tree
                .element(name)
                .ok_or_else(|| BflError::UnknownElement(name.clone()))?;
            Ok(tree.evaluate(b, e))
        }
        Formula::Not(a) => Ok(!eval(tree, b, a)?),
        Formula::And(x, y) => Ok(eval(tree, b, x)? && eval(tree, b, y)?),
        Formula::Or(x, y) => Ok(eval(tree, b, x)? || eval(tree, b, y)?),
        Formula::Implies(x, y) => Ok(!eval(tree, b, x)? || eval(tree, b, y)?),
        Formula::Iff(x, y) => Ok(eval(tree, b, x)? == eval(tree, b, y)?),
        Formula::Neq(x, y) => Ok(eval(tree, b, x)? != eval(tree, b, y)?),
        Formula::Evidence {
            inner,
            element,
            value,
        } => {
            let e = tree
                .element(element)
                .ok_or_else(|| BflError::UnknownElement(element.clone()))?;
            let bi = tree
                .basic_index(e)
                .ok_or_else(|| BflError::EvidenceOnGate(element.clone()))?;
            let forced = b.with(bi, *value);
            eval(tree, &forced, inner)
        }
        Formula::Mcs(a) => {
            // b ⊨ ϕ and no b′ ⊂ b satisfies ϕ.
            if !eval(tree, b, a)? {
                return Ok(false);
            }
            for smaller in proper_subvectors(b) {
                if eval(tree, &smaller, a)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Mps(a) => {
            // b ⊨ ¬ϕ and no b′ ⊃ b satisfies ¬ϕ (maximality; DESIGN.md §4).
            if eval(tree, b, a)? {
                return Ok(false);
            }
            for bigger in proper_supervectors(b) {
                if !eval(tree, &bigger, a)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Vot { op, k, operands } => {
            let mut count = 0u32;
            for o in operands {
                if eval(tree, b, o)? {
                    count += 1;
                }
            }
            Ok(op.compare(count, *k))
        }
    }
}

/// All vectors whose failed set is a proper subset of `b`'s.
fn proper_subvectors(b: &StatusVector) -> Vec<StatusVector> {
    let failed = b.failed_indices();
    let mut out = Vec::new();
    // Every proper subset of the failed set.
    let n = failed.len();
    assert!(
        n < 26,
        "too many failures for exhaustive subset enumeration"
    );
    for mask in 0..(1u32 << n) {
        if mask == (1u32 << n) - 1 {
            continue; // the improper subset (b itself)
        }
        let mut v = StatusVector::all_operational(b.len());
        for (j, &idx) in failed.iter().enumerate() {
            if (mask >> j) & 1 == 1 {
                v.set(idx, true);
            }
        }
        out.push(v);
    }
    out
}

/// All vectors whose failed set is a proper superset of `b`'s.
fn proper_supervectors(b: &StatusVector) -> Vec<StatusVector> {
    let operational: Vec<usize> = (0..b.len()).filter(|&i| !b.get(i)).collect();
    let n = operational.len();
    assert!(
        n < 26,
        "too many operational events for exhaustive superset enumeration"
    );
    let mut out = Vec::new();
    for mask in 1..(1u32 << n) {
        let mut v = b.clone();
        for (j, &idx) in operational.iter().enumerate() {
            if (mask >> j) & 1 == 1 {
                v.set(idx, true);
            }
        }
        out.push(v);
    }
    out
}

/// Evaluates a layer-2 query `T ⊨ ψ` by exhaustive enumeration.
///
/// # Errors
///
/// Everything [`eval`] reports, plus [`BflError::TooLarge`] when the tree
/// exceeds [`NAIVE_LIMIT`] basic events.
pub fn eval_query(tree: &FaultTree, psi: &Query) -> Result<bool, BflError> {
    let n = tree.num_basic_events();
    if n > NAIVE_LIMIT {
        return Err(BflError::TooLarge {
            actual: n,
            limit: NAIVE_LIMIT,
        });
    }
    match psi {
        Query::Exists(phi) => {
            for b in StatusVector::enumerate_all(n) {
                if eval(tree, &b, phi)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Query::Forall(phi) => {
            for b in StatusVector::enumerate_all(n) {
                if !eval(tree, &b, phi)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Query::Idp(a, b) => {
            let ia = influencing_basic_events(tree, a)?;
            let ib = influencing_basic_events(tree, b)?;
            Ok(ia.iter().all(|e| !ib.contains(e)))
        }
        Query::Sup(name) => {
            // SUP(e) ::= IDP(e, e_top).
            let top = tree.name(tree.top()).to_string();
            eval_query(
                tree,
                &Query::Idp(Formula::atom(name.clone()), Formula::atom(top)),
            )
        }
        Query::Cause {
            formula, evidence, ..
        } => {
            // `T ⊨ cause(ϕ, E)` iff the observation is failing and at
            // least one actual cause exists (always true for a failing
            // observation of a monotone ϕ; the separate conjunct matters
            // for non-monotone formulae, where un-failing events can be
            // unable to flip the verdict).
            let causes = actual_causes_naive(tree, formula, evidence)?;
            Ok(!causes.is_empty())
        }
        // Probabilistic judgements need annotations; the reference layer
        // is purely Boolean. `quant::probability_naive` is the reference
        // for the quantitative layer.
        Query::Prob { .. } | Query::Importance(_) => Err(BflError::MissingProbabilities {
            events: tree
                .basic_events()
                .iter()
                .map(|&e| tree.name(e).to_string())
                .collect(),
        }),
    }
}

/// The observation vector of a causality query: every bound event at its
/// bound value (first binding wins, matching scenario resolution), every
/// unbound event operational.
///
/// # Errors
///
/// * [`BflError::UnknownElement`] if a bound name is not in the tree;
/// * [`BflError::EvidenceOnGate`] if a binding targets an intermediate
///   event.
pub fn observation_vector(
    tree: &FaultTree,
    evidence: &[(String, bool)],
) -> Result<StatusVector, BflError> {
    let n = tree.num_basic_events();
    let mut b = StatusVector::all_operational(n);
    let mut bound = vec![false; n];
    for (name, value) in evidence {
        let e = tree
            .element(name)
            .ok_or_else(|| BflError::UnknownElement(name.clone()))?;
        let bi = tree
            .basic_index(e)
            .ok_or_else(|| BflError::EvidenceOnGate(name.clone()))?;
        if !bound[bi] {
            bound[bi] = true;
            b.set(bi, *value);
        }
    }
    Ok(b)
}

/// The minimal actual causes of `ϕ` under `evidence`, by brute force:
/// every subset-minimal `S ⊆ failed(b)` whose joint repair `b[S↦0]`
/// un-satisfies `ϕ`, as sorted basic-index sets (shortest first, then
/// lexicographic). This is the executable ground truth the BDD engine in
/// [`crate::causality`] is differentially tested against.
///
/// Returns the empty list when the observation is not failing (`b ⊭ ϕ`),
/// or when no repair of failed events can flip the verdict (possible for
/// non-monotone `ϕ`).
///
/// # Errors
///
/// Everything [`eval`] and [`observation_vector`] report, plus
/// [`BflError::TooLarge`] when the tree exceeds [`NAIVE_LIMIT`] basic
/// events.
pub fn actual_causes_naive(
    tree: &FaultTree,
    phi: &Formula,
    evidence: &[(String, bool)],
) -> Result<Vec<Vec<usize>>, BflError> {
    let n = tree.num_basic_events();
    if n > NAIVE_LIMIT {
        return Err(BflError::TooLarge {
            actual: n,
            limit: NAIVE_LIMIT,
        });
    }
    let b = observation_vector(tree, evidence)?;
    if !eval(tree, &b, phi)? {
        return Ok(Vec::new());
    }
    let failed = b.failed_indices();
    let k = failed.len();
    assert!(k < 26, "too many failures for exhaustive cause enumeration");
    // Every but-for cause: a non-empty repair set that flips the verdict.
    let mut but_for: Vec<u32> = Vec::new();
    for mask in 1..(1u32 << k) {
        let mut v = b.clone();
        for (j, &idx) in failed.iter().enumerate() {
            if (mask >> j) & 1 == 1 {
                v.set(idx, false);
            }
        }
        if !eval(tree, &v, phi)? {
            but_for.push(mask);
        }
    }
    // Keep the subset-minimal ones.
    let mut out: Vec<Vec<usize>> = Vec::new();
    for &m in &but_for {
        if but_for.iter().all(|&o| o == m || (o & m) != o) {
            out.push(
                failed
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| (m >> j) & 1 == 1)
                    .map(|(_, &idx)| idx)
                    .collect(),
            );
        }
    }
    out.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    Ok(out)
}

/// The influencing basic events `IBE(ϕ)` by the definition of
/// Section III-B: events `e` for which some vector distinguishes
/// `ϕ[e↦0]` from `ϕ[e↦1]`.
///
/// # Errors
///
/// Everything [`eval`] reports, plus [`BflError::TooLarge`] when the tree
/// exceeds [`NAIVE_LIMIT`] basic events.
pub fn influencing_basic_events(tree: &FaultTree, phi: &Formula) -> Result<Vec<String>, BflError> {
    let n = tree.num_basic_events();
    if n > NAIVE_LIMIT {
        return Err(BflError::TooLarge {
            actual: n,
            limit: NAIVE_LIMIT,
        });
    }
    let mut out = Vec::new();
    for (bi, &e) in tree.basic_events().iter().enumerate() {
        let mut influences = false;
        for b in StatusVector::enumerate_all(n) {
            let v0 = eval(tree, &b.with(bi, false), phi)?;
            let v1 = eval(tree, &b.with(bi, true), phi)?;
            if v0 != v1 {
                influences = true;
                break;
            }
        }
        if influences {
            out.push(tree.name(e).to_string());
        }
    }
    Ok(out)
}

/// All satisfying vectors `⟦ϕ⟧`, by exhaustive enumeration.
///
/// # Errors
///
/// Everything [`eval`] reports, plus [`BflError::TooLarge`] when the tree
/// exceeds [`NAIVE_LIMIT`] basic events.
pub fn satisfying_vectors(tree: &FaultTree, phi: &Formula) -> Result<Vec<StatusVector>, BflError> {
    let n = tree.num_basic_events();
    if n > NAIVE_LIMIT {
        return Err(BflError::TooLarge {
            actual: n,
            limit: NAIVE_LIMIT,
        });
    }
    let mut out = Vec::new();
    for b in StatusVector::enumerate_all(n) {
        if eval(tree, &b, phi)? {
            out.push(b);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfl_fault_tree::corpus;

    #[test]
    fn atom_and_connectives() {
        let tree = corpus::fig1();
        let b = StatusVector::from_failed_names(&tree, &["IW", "H3"]);
        assert!(eval(&tree, &b, &Formula::atom("CP")).unwrap());
        assert!(eval(&tree, &b, &Formula::atom("CP/R")).unwrap());
        assert!(!eval(&tree, &b, &Formula::atom("CR")).unwrap());
        let phi = Formula::atom("CP").and(Formula::atom("CR").not());
        assert!(eval(&tree, &b, &phi).unwrap());
    }

    #[test]
    fn evidence_is_not_conjunction() {
        // (¬e)[e↦0] ⊨ true even when e has failed (Section III-A).
        let tree = corpus::or2();
        let b = StatusVector::from_failed_names(&tree, &["e1"]);
        let phi = Formula::atom("e1").not().with_evidence("e1", false);
        assert!(eval(&tree, &b, &phi).unwrap());
        let psi = Formula::atom("e1").not().and(Formula::atom("e1").not());
        assert!(!eval(&tree, &b, &psi).unwrap());
    }

    #[test]
    fn evidence_on_gate_rejected() {
        let tree = corpus::fig1();
        let b = StatusVector::all_operational(4);
        let phi = Formula::atom("IW").with_evidence("CP", true);
        assert_eq!(
            eval(&tree, &b, &phi).unwrap_err(),
            BflError::EvidenceOnGate("CP".into())
        );
    }

    #[test]
    fn unknown_element_rejected() {
        let tree = corpus::or2();
        let b = StatusVector::all_operational(2);
        assert_eq!(
            eval(&tree, &b, &Formula::atom("ghost")).unwrap_err(),
            BflError::UnknownElement("ghost".into())
        );
    }

    #[test]
    fn mcs_of_example_2() {
        // Example 2: OR gate, b = (0,1) satisfies MCS(Top).
        let tree = corpus::or2();
        let phi = Formula::atom("Top").mcs();
        let b = StatusVector::from_bits([false, true]);
        assert!(eval(&tree, &b, &phi).unwrap());
        // (1,1) is a cut set but not minimal.
        let b2 = StatusVector::from_bits([true, true]);
        assert!(!eval(&tree, &b2, &phi).unwrap());
        // (0,0) is not a cut set at all.
        let b3 = StatusVector::from_bits([false, false]);
        assert!(!eval(&tree, &b3, &phi).unwrap());
    }

    #[test]
    fn mps_maximality() {
        let tree = corpus::table1_tree();
        let phi = Formula::atom("e1").mps();
        // (1,0,0): e2 failed, e4/e5 operational — MPS {e4,e5}.
        assert!(eval(&tree, &StatusVector::from_bits([true, false, false]), &phi).unwrap());
        // (0,1,1): only e2 operational — MPS {e2}.
        assert!(eval(&tree, &StatusVector::from_bits([false, true, true]), &phi).unwrap());
        // (0,0,0): path set but not maximal.
        assert!(!eval(&tree, &StatusVector::from_bits([false, false, false]), &phi).unwrap());
        // (1,0,1): not even a path set (e1 fails).
        assert!(!eval(&tree, &StatusVector::from_bits([true, false, true]), &phi).unwrap());
    }

    #[test]
    fn quantifiers() {
        let tree = corpus::fig1();
        // ∀(CP ⇒ CP/R) holds (Example 1).
        let q = Query::forall(Formula::atom("CP").implies(Formula::atom("CP/R")));
        assert!(eval_query(&tree, &q).unwrap());
        // ∃(CP ∧ CR) holds.
        let q2 = Query::exists(Formula::atom("CP").and(Formula::atom("CR")));
        assert!(eval_query(&tree, &q2).unwrap());
        // ∀(IW ⇒ CP/R) fails: IW alone does not fail the OR of two ANDs.
        let q3 = Query::forall(Formula::atom("IW").implies(Formula::atom("CP/R")));
        assert!(!eval_query(&tree, &q3).unwrap());
    }

    #[test]
    fn ibe_of_gates() {
        let tree = corpus::fig1();
        let ibe = influencing_basic_events(&tree, &Formula::atom("CP")).unwrap();
        assert_eq!(ibe, vec!["IW".to_string(), "H3".to_string()]);
        // A tautology has no influencing events.
        let taut = Formula::atom("IW").or(Formula::atom("IW").not());
        assert!(influencing_basic_events(&tree, &taut).unwrap().is_empty());
    }

    #[test]
    fn idp_and_sup() {
        let tree = corpus::fig1();
        // CP and CR share no basic events.
        let q = Query::idp(Formula::atom("CP"), Formula::atom("CR"));
        assert!(eval_query(&tree, &q).unwrap());
        // CP and CP/R do.
        let q2 = Query::idp(Formula::atom("CP"), Formula::atom("CP/R"));
        assert!(!eval_query(&tree, &q2).unwrap());
        // No event is superfluous in Fig. 1.
        for name in ["IW", "H3", "IT", "H2"] {
            assert!(!eval_query(&tree, &Query::sup(name)).unwrap(), "{name}");
        }
    }

    #[test]
    fn vot_counting() {
        let tree = corpus::fig1();
        let b = StatusVector::from_failed_names(&tree, &["IW", "IT"]);
        let ops = ["IW", "H3", "IT", "H2"].map(Formula::atom);
        use crate::ast::CmpOp;
        assert!(eval(&tree, &b, &Formula::vot(CmpOp::Eq, 2, ops.clone())).unwrap());
        assert!(eval(&tree, &b, &Formula::vot(CmpOp::Ge, 2, ops.clone())).unwrap());
        assert!(!eval(&tree, &b, &Formula::vot(CmpOp::Gt, 2, ops.clone())).unwrap());
        assert!(eval(&tree, &b, &Formula::vot(CmpOp::Le, 2, ops.clone())).unwrap());
        assert!(!eval(&tree, &b, &Formula::vot(CmpOp::Lt, 2, ops)).unwrap());
    }

    #[test]
    fn naive_causes_on_fig1() {
        let tree = corpus::fig1();
        let ev = |names: &[&str]| -> Vec<(String, bool)> {
            names.iter().map(|e| (e.to_string(), true)).collect()
        };
        // All four events failed: flipping CP/R = OR(AND, AND) needs one
        // repair per conjunct — four minimal causes of size two.
        let phi = Formula::atom("CP/R");
        let causes = actual_causes_naive(&tree, &phi, &ev(&["IW", "H3", "IT", "H2"])).unwrap();
        assert_eq!(causes.len(), 4);
        assert!(causes.iter().all(|s| s.len() == 2));
        // Only one conjunct failing: either of its events is a singleton
        // cause on its own.
        let causes = actual_causes_naive(&tree, &phi, &ev(&["IW", "H3"])).unwrap();
        assert_eq!(causes.len(), 2);
        assert!(causes.iter().all(|s| s.len() == 1));
        // Non-failing observation: no causes, and the query does not hold.
        assert!(actual_causes_naive(&tree, &phi, &ev(&["IW"]))
            .unwrap()
            .is_empty());
        let q = Query::cause(phi.clone(), [("IW".to_string(), true)]);
        assert!(!eval_query(&tree, &q).unwrap());
        // Failing observation with a cause: the query holds.
        let q = Query::cause(phi, [("IW".to_string(), true), ("H3".to_string(), true)]);
        assert!(eval_query(&tree, &q).unwrap());
    }

    #[test]
    fn naive_causes_non_monotone() {
        let tree = corpus::fig1();
        // ϕ = IW ⊕ H3: failing with only IW failed, repaired by {IW}.
        let phi = Formula::atom("IW").neq(Formula::atom("H3"));
        let causes = actual_causes_naive(&tree, &phi, &[("IW".to_string(), true)]).unwrap();
        assert_eq!(causes, vec![vec![0]]);
        // ¬IW fails with everything operational: no failed event to
        // repair, so the observation is failing yet has no cause.
        let phi = Formula::atom("IW").not();
        let causes = actual_causes_naive(&tree, &phi, &[]).unwrap();
        assert!(causes.is_empty());
        let q = Query::cause(Formula::atom("IW").not(), Vec::<(String, bool)>::new());
        assert!(!eval_query(&tree, &q).unwrap());
    }

    #[test]
    fn observation_vector_first_binding_wins() {
        let tree = corpus::fig1();
        let b = observation_vector(
            &tree,
            &[("IW".to_string(), true), ("IW".to_string(), false)],
        )
        .unwrap();
        assert!(b.get(0));
        assert_eq!(
            observation_vector(&tree, &[("CP".to_string(), true)]).unwrap_err(),
            BflError::EvidenceOnGate("CP".into())
        );
        assert_eq!(
            observation_vector(&tree, &[("ghost".to_string(), true)]).unwrap_err(),
            BflError::UnknownElement("ghost".into())
        );
    }

    #[test]
    fn satisfying_vectors_of_mcs() {
        let tree = corpus::or2();
        let sats = satisfying_vectors(&tree, &Formula::atom("Top").mcs()).unwrap();
        assert_eq!(
            sats,
            vec![
                StatusVector::from_bits([true, false]),
                StatusVector::from_bits([false, true]),
            ]
        );
    }
}
