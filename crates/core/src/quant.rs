//! Quantitative (probabilistic) BFL — a prototype of the paper's first
//! future-work item: *"extend BFL to model probabilities … a probabilistic
//! fault tree logic will allow users to perform such quantitative
//! analysis."*
//!
//! Given independent basic-event failure probabilities, the probability of
//! **any** layer-1 BFL formula is the probability mass of its satisfaction
//! set `⟦ϕ⟧`, computed exactly by a Shannon recursion over the formula's
//! BDD. On top of it: conditional probabilities, probability-threshold
//! queries (`P(ϕ) ▷◁ p`) and formula-level Birnbaum importance.
//!
//! ```
//! use bfl_core::{quant, Formula, ModelChecker};
//! use bfl_fault_tree::corpus;
//!
//! # fn main() -> Result<(), bfl_core::BflError> {
//! let tree = corpus::or2();
//! let mut mc = ModelChecker::new(&tree);
//! // P(Top) = 1 - (1-0.1)(1-0.2) = 0.28
//! let p = quant::probability(&mut mc, &Formula::atom("Top"), &[0.1, 0.2])?;
//! assert!((p - 0.28).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

use bfl_fault_tree::prob::validate_probabilities;
use bfl_fault_tree::StatusVector;

use crate::ast::{CmpOp, Formula};
use crate::checker::ModelChecker;
use crate::error::BflError;

/// Exact probability `P(b ⊨ ϕ)` under independent basic-event failure
/// probabilities `probs` (indexed by basic index).
///
/// Works for *any* layer-1 formula, including `MCS`/`MPS` and evidence —
/// e.g. `P(MCS(top))` is the probability that the realised failure set is
/// exactly a minimal cut set.
///
/// # Errors
///
/// As for [`ModelChecker::formula_bdd`].
///
/// # Panics
///
/// Panics if `probs` is not a valid probability vector for the tree.
pub fn probability(mc: &mut ModelChecker, phi: &Formula, probs: &[f64]) -> Result<f64, BflError> {
    let tree = mc.tree();
    validate_probabilities(tree, probs).expect("invalid probabilities");
    let f = mc.formula_bdd(phi)?;
    let mut memo = std::collections::HashMap::new();
    Ok(prob_rec(mc, f, probs, &mut memo))
}

fn prob_rec(
    mc: &ModelChecker,
    f: bfl_bdd::Bdd,
    probs: &[f64],
    memo: &mut std::collections::HashMap<u32, f64>,
) -> f64 {
    if f.is_false() {
        return 0.0;
    }
    if f.is_true() {
        return 1.0;
    }
    if let Some(&p) = memo.get(&f.id()) {
        return p;
    }
    let node = mc.manager().node(f);
    debug_assert_eq!(node.var.index() % 2, 0, "primed variable in query BDD");
    let bi = mc.basic_of_position()[(node.var.index() / 2) as usize];
    let p = probs[bi];
    let lo = prob_rec(mc, node.low, probs, memo);
    let hi = prob_rec(mc, node.high, probs, memo);
    let r = (1.0 - p) * lo + p * hi;
    memo.insert(f.id(), r);
    r
}

/// Conditional probability `P(ϕ | ψ) = P(ϕ ∧ ψ) / P(ψ)`.
///
/// Returns `None` when `P(ψ) = 0`.
///
/// # Errors
///
/// As for [`probability`].
pub fn conditional_probability(
    mc: &mut ModelChecker,
    phi: &Formula,
    given: &Formula,
    probs: &[f64],
) -> Result<Option<f64>, BflError> {
    let joint = probability(mc, &phi.clone().and(given.clone()), probs)?;
    let base = probability(mc, given, probs)?;
    if base == 0.0 {
        Ok(None)
    } else {
        Ok(Some(joint / base))
    }
}

/// A probability-threshold query `P(ϕ) ▷◁ p` — the natural quantitative
/// layer-2 judgement.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbQuery {
    /// The formula whose probability is bounded.
    pub formula: Formula,
    /// The comparison `▷◁`.
    pub op: CmpOp,
    /// The bound `p ∈ [0, 1]`.
    pub bound: f64,
}

impl ProbQuery {
    /// Builds `P(formula) ▷◁ bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is not a probability.
    pub fn new(formula: Formula, op: CmpOp, bound: f64) -> Self {
        assert!(
            bound.is_finite() && (0.0..=1.0).contains(&bound),
            "bound {bound} outside [0, 1]"
        );
        ProbQuery { formula, op, bound }
    }

    /// Evaluates the query.
    ///
    /// # Errors
    ///
    /// As for [`probability`].
    pub fn check(&self, mc: &mut ModelChecker, probs: &[f64]) -> Result<bool, BflError> {
        let p = probability(mc, &self.formula, probs)?;
        Ok(match self.op {
            CmpOp::Lt => p < self.bound,
            CmpOp::Le => p <= self.bound,
            CmpOp::Eq => (p - self.bound).abs() < f64::EPSILON * 4.0,
            CmpOp::Ge => p >= self.bound,
            CmpOp::Gt => p > self.bound,
        })
    }
}

impl std::fmt::Display for ProbQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P({}) {} {}", self.formula, self.op, self.bound)
    }
}

/// Formula-level Birnbaum importance of basic event `be` for `ϕ`:
/// `P(ϕ | be failed) − P(ϕ | be operational)`, computed by cofactoring.
///
/// # Errors
///
/// [`BflError::UnknownElement`] / [`BflError::EvidenceOnGate`] if `be` is
/// not a basic event of the tree, plus translation errors.
pub fn birnbaum(
    mc: &mut ModelChecker,
    phi: &Formula,
    be: &str,
    probs: &[f64],
) -> Result<f64, BflError> {
    let hi = probability(mc, &phi.clone().with_evidence(be, true), probs)?;
    let lo = probability(mc, &phi.clone().with_evidence(be, false), probs)?;
    Ok(hi - lo)
}

/// Exhaustive reference for [`probability`], used by tests.
///
/// # Errors
///
/// As for the reference evaluator.
///
/// # Panics
///
/// Panics if the tree has more than 20 basic events or `probs` is
/// invalid.
pub fn probability_naive(
    tree: &bfl_fault_tree::FaultTree,
    phi: &Formula,
    probs: &[f64],
) -> Result<f64, BflError> {
    assert!(
        tree.num_basic_events() <= 20,
        "naive engine limited to 20 events"
    );
    validate_probabilities(tree, probs).expect("invalid probabilities");
    let mut total = 0.0;
    for b in StatusVector::enumerate_all(tree.num_basic_events()) {
        if crate::semantics::eval(tree, &b, phi)? {
            let mut w = 1.0;
            for (i, &p) in probs.iter().enumerate() {
                w *= if b.get(i) { p } else { 1.0 - p };
            }
            total += w;
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfl_fault_tree::corpus;

    #[test]
    fn matches_element_probability() {
        let tree = corpus::fig1();
        let mut mc = ModelChecker::new(&tree);
        let probs = [0.1, 0.2, 0.3, 0.4];
        let via_logic = probability(&mut mc, &Formula::atom("CP/R"), &probs).unwrap();
        let via_ft = bfl_fault_tree::prob::top_event_probability(&tree, &probs);
        assert!((via_logic - via_ft).abs() < 1e-12);
    }

    #[test]
    fn mcs_probability_matches_naive() {
        let tree = corpus::covid();
        let mut mc = ModelChecker::new(&tree);
        let n = tree.num_basic_events();
        let probs: Vec<f64> = (0..n).map(|i| 0.02 + (i as f64) * 0.05).collect();
        for phi in [
            Formula::atom("IWoS").mcs(),
            Formula::atom("MoT").mps(),
            Formula::atom("CT").with_evidence("H1", true),
            Formula::atom("CP").implies(Formula::atom("IWoS")),
        ] {
            let fast = probability(&mut mc, &phi, &probs).unwrap();
            let slow = probability_naive(&tree, &phi, &probs).unwrap();
            assert!((fast - slow).abs() < 1e-9, "{phi}: fast={fast} slow={slow}");
        }
    }

    #[test]
    fn conditional_probability_basics() {
        let tree = corpus::or2();
        let mut mc = ModelChecker::new(&tree);
        let probs = [0.5, 0.5];
        // P(Top | e1) = 1.
        let p =
            conditional_probability(&mut mc, &Formula::atom("Top"), &Formula::atom("e1"), &probs)
                .unwrap()
                .unwrap();
        assert!((p - 1.0).abs() < 1e-12);
        // Conditioning on an impossible event.
        let none = conditional_probability(
            &mut mc,
            &Formula::atom("Top"),
            &Formula::atom("e1").and(Formula::atom("e1").not()),
            &probs,
        )
        .unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn threshold_queries() {
        let tree = corpus::or2();
        let mut mc = ModelChecker::new(&tree);
        let probs = [0.1, 0.2];
        // P(Top) = 0.28
        let q = ProbQuery::new(Formula::atom("Top"), CmpOp::Le, 0.3);
        assert!(q.check(&mut mc, &probs).unwrap());
        let q2 = ProbQuery::new(Formula::atom("Top"), CmpOp::Gt, 0.3);
        assert!(!q2.check(&mut mc, &probs).unwrap());
        assert_eq!(q.to_string(), "P(Top) <= 0.3");
    }

    #[test]
    fn birnbaum_matches_ft_layer() {
        let tree = corpus::covid();
        let mut mc = ModelChecker::new(&tree);
        let n = tree.num_basic_events();
        let probs = vec![0.1; n];
        for name in ["IW", "H1", "VW"] {
            let via_logic = birnbaum(&mut mc, &Formula::atom("IWoS"), name, &probs).unwrap();
            let be = tree.element(name).unwrap();
            let via_ft = bfl_fault_tree::prob::birnbaum_importance(&tree, tree.top(), be, &probs);
            assert!((via_logic - via_ft).abs() < 1e-12, "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_bound_rejected() {
        let _ = ProbQuery::new(Formula::atom("x"), CmpOp::Ge, 1.5);
    }
}
