//! Quantitative (probabilistic) BFL — the PFL-style probabilistic layer
//! realising the paper's first future-work item: *"extend BFL to model
//! probabilities … a probabilistic fault tree logic will allow users to
//! perform such quantitative analysis."*
//!
//! Given independent basic-event failure probabilities, the probability
//! of **any** layer-1 BFL formula is the probability mass of its
//! satisfaction set `⟦ϕ⟧`, computed exactly by the node-keyed Shannon
//! walk of [`bfl_bdd::Manager::probability_with_memo`] over the
//! formula's BDD. On top of it: conditional probabilities, the layer-2
//! probability judgements `P(ϕ) ▷◁ p` / `P(ϕ | ψ) ▷◁ p`
//! ([`crate::ast::Query::Prob`], with [`ProbQuery`] as the standalone
//! form), and the batched importance suite ([`rank_events`]: Birnbaum,
//! criticality, Fussell-Vesely, RAW, RRW).
//!
//! Every function here is **fallible**: malformed probability vectors
//! ([`BflError::InvalidProbability`]), out-of-range bounds
//! ([`BflError::InvalidBound`]) and vanishing denominators
//! ([`BflError::DivisionByZero`]) come back as errors, never as panics —
//! the module carries a `deny(clippy::unwrap_used, clippy::expect_used)`
//! gate to keep it that way.
//!
//! ```
//! use bfl_core::{quant, Formula, ModelChecker};
//! use bfl_fault_tree::corpus;
//!
//! # fn main() -> Result<(), bfl_core::BflError> {
//! let tree = corpus::or2();
//! let mut mc = ModelChecker::new(&tree);
//! // P(Top) = 1 - (1-0.1)(1-0.2) = 0.28
//! let p = quant::probability(&mut mc, &Formula::atom("Top"), &[0.1, 0.2])?;
//! assert!((p - 0.28).abs() < 1e-12);
//! // Malformed input is an error, not a panic.
//! assert!(quant::probability(&mut mc, &Formula::atom("Top"), &[0.1, f64::NAN]).is_err());
//! # Ok(())
//! # }
//! ```

// The whole point of this module's redesign: no panic is reachable from
// user-supplied probabilities or bounds.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashMap;

use bfl_bdd::Bdd;
use bfl_fault_tree::prob::{validate_intervals, validate_probabilities, ProbInterval};
use bfl_fault_tree::StatusVector;

use crate::ast::{CmpOp, Formula, Prob, Query};
use crate::checker::ModelChecker;
use crate::error::BflError;

/// Absolute part of the tolerance used by `=` probability comparisons.
pub const PROB_EQ_ABS_TOLERANCE: f64 = 1e-12;

/// Relative part of the tolerance used by `=` probability comparisons:
/// `|p − bound| ≤ ABS + REL · max(|p|, |bound|)`. A relative term keeps
/// equality judgements meaningful near `1.0`, where a probability
/// assembled from many multiplications carries roundoff proportional to
/// its magnitude — a purely absolute `ε` misjudges those.
pub const PROB_EQ_REL_TOLERANCE: f64 = 1e-9;

/// Conditioning probabilities below this threshold (the smallest
/// positive *normal* `f64`) are treated as zero: a subnormal or
/// underflowed `P(ψ)` has lost so much precision that the ratio
/// `P(ϕ ∧ ψ) / P(ψ)` is garbage, so [`conditional_probability`] returns
/// `None` rather than a meaningless number.
pub const MIN_CONDITIONING_PROBABILITY: f64 = f64::MIN_POSITIVE;

/// Applies `▷◁` to a computed probability and a bound. Strict and weak
/// inequalities compare exactly; `=` uses the documented
/// relative-plus-absolute tolerance ([`PROB_EQ_ABS_TOLERANCE`],
/// [`PROB_EQ_REL_TOLERANCE`]).
pub fn prob_compare(op: CmpOp, p: f64, bound: f64) -> bool {
    match op {
        CmpOp::Lt => p < bound,
        CmpOp::Le => p <= bound,
        CmpOp::Eq => {
            (p - bound).abs()
                <= PROB_EQ_ABS_TOLERANCE + PROB_EQ_REL_TOLERANCE * p.abs().max(bound.abs())
        }
        CmpOp::Ge => p >= bound,
        CmpOp::Gt => p > bound,
    }
}

/// Judges a probability judgement `P(…) ▷◁ bound` given the (possibly
/// undefined) computed probability: an undefined conditional (`None`,
/// i.e. the conditioning probability fell below
/// [`MIN_CONDITIONING_PROBABILITY`]) satisfies **no** bound. This is the
/// single policy point shared by [`check_query`], the session evaluator
/// and the prepared-plan evaluator.
#[must_use]
pub fn judge_bound(p: Option<f64>, op: CmpOp, bound: f64) -> bool {
    p.map(|p| prob_compare(op, p, bound)).unwrap_or(false)
}

/// Validates `probs` against `mc`'s tree, mapping the message into
/// [`BflError::InvalidProbability`].
fn validate(mc: &ModelChecker, probs: &[f64]) -> Result<(), BflError> {
    validate_probabilities(mc.tree(), probs)
        .map_err(|reason| BflError::InvalidProbability { reason })
}

/// The node-keyed Shannon walk over an already-compiled diagram, sharing
/// `memo` across roots — the handle-level core used by [`probability`],
/// [`rank_events`] and the prepared-plan probability sweeps. `probs`
/// must already be validated.
pub(crate) fn bdd_probability_with_memo(
    mc: &ModelChecker,
    f: Bdd,
    probs: &[f64],
    memo: &mut HashMap<u32, f64>,
) -> f64 {
    let basic_of_position = mc.basic_of_position();
    mc.manager().probability_with_memo(
        f,
        &|v| {
            debug_assert_eq!(v.index() % 2, 0, "primed variable in query BDD");
            probs[basic_of_position[(v.index() / 2) as usize]]
        },
        memo,
    )
}

/// Exact probability `P(b ⊨ ϕ)` under independent basic-event failure
/// probabilities `probs` (indexed by basic index).
///
/// Works for *any* layer-1 formula, including `MCS`/`MPS` and evidence —
/// e.g. `P(MCS(top))` is the probability that the realised failure set is
/// exactly a minimal cut set.
///
/// # Errors
///
/// [`BflError::InvalidProbability`] if `probs` has the wrong length or a
/// value outside `[0, 1]` (or not finite); translation errors as for
/// [`ModelChecker::formula_bdd`].
pub fn probability(mc: &mut ModelChecker, phi: &Formula, probs: &[f64]) -> Result<f64, BflError> {
    validate(mc, probs)?;
    let f = mc.formula_bdd(phi)?;
    let mut memo = HashMap::new();
    Ok(bdd_probability_with_memo(mc, f, probs, &mut memo))
}

/// The interval twin of [`bdd_probability_with_memo`]: the node-keyed
/// interval Shannon walk over an already-compiled diagram, sharing
/// `memo` across roots. `intervals` must already be validated.
pub(crate) fn bdd_probability_interval_with_memo(
    mc: &ModelChecker,
    f: Bdd,
    intervals: &[ProbInterval],
    memo: &mut HashMap<u32, (f64, f64)>,
) -> ProbInterval {
    let basic_of_position = mc.basic_of_position();
    let (lo, hi) = mc.manager().probability_interval_with_memo(
        f,
        &|v| {
            debug_assert_eq!(v.index() % 2, 0, "primed variable in query BDD");
            let iv = intervals[basic_of_position[(v.index() / 2) as usize]];
            (iv.lo, iv.hi)
        },
        memo,
    );
    ProbInterval { lo, hi }
}

/// Interval twin of [`probability`]: conservative `[lo, hi]` bounds on
/// `P(b ⊨ ϕ)` when each basic event's failure probability is only known
/// to lie in an interval. Degenerate intervals `[p, p]` reproduce
/// [`probability`] bit for bit.
///
/// # Errors
///
/// [`BflError::InvalidProbability`] if `intervals` is malformed;
/// translation errors as for [`ModelChecker::formula_bdd`].
pub fn probability_interval(
    mc: &mut ModelChecker,
    phi: &Formula,
    intervals: &[ProbInterval],
) -> Result<ProbInterval, BflError> {
    validate_intervals(mc.tree(), intervals)
        .map_err(|reason| BflError::InvalidProbability { reason })?;
    let f = mc.formula_bdd(phi)?;
    let mut memo = HashMap::new();
    Ok(bdd_probability_interval_with_memo(
        mc, f, intervals, &mut memo,
    ))
}

/// Interval twin of [`conditional_probability`]: bounds on
/// `P(ϕ | ψ) = P(ϕ ∧ ψ) / P(ψ)` by interval division,
/// `[joint.lo / base.hi, joint.hi / base.lo]` clamped to `[0, 1]`.
/// The division is correlation-oblivious — see the caveat on
/// [`ProbInterval`] — so the bounds are sound but not tight.
///
/// Returns `None` when even the *largest* conditioning probability in
/// the bounds (`P(ψ).hi`) falls below
/// [`MIN_CONDITIONING_PROBABILITY`] — the condition is impossible under
/// every choice of annotations. When only the lower end vanishes the
/// upper bound is `1.0` (division by the vanishing end is avoided).
///
/// # Errors
///
/// As for [`probability_interval`].
pub fn conditional_probability_interval(
    mc: &mut ModelChecker,
    phi: &Formula,
    given: &Formula,
    intervals: &[ProbInterval],
) -> Result<Option<ProbInterval>, BflError> {
    let joint = probability_interval(mc, &phi.clone().and(given.clone()), intervals)?;
    let base = probability_interval(mc, given, intervals)?;
    Ok(interval_conditional(joint, base))
}

/// Conservative interval division `joint / base` for conditional
/// probabilities, shared by the formula-level API above and the
/// compiled-plan evaluator. `None` when even `base.hi` is below
/// [`MIN_CONDITIONING_PROBABILITY`] (the condition is impossible under
/// every annotation choice).
pub(crate) fn interval_conditional(
    joint: ProbInterval,
    base: ProbInterval,
) -> Option<ProbInterval> {
    if base.hi < MIN_CONDITIONING_PROBABILITY {
        return None;
    }
    let lo = (joint.lo / base.hi).clamp(0.0, 1.0);
    let hi = if base.lo < MIN_CONDITIONING_PROBABILITY {
        1.0
    } else {
        (joint.hi / base.lo).clamp(0.0, 1.0)
    };
    // Conservative division can invert endpoints only through clamping
    // artefacts; normalise so the result is a well-formed interval.
    Some(ProbInterval { lo: lo.min(hi), hi })
}

/// Conditional probability `P(ϕ | ψ) = P(ϕ ∧ ψ) / P(ψ)`.
///
/// Returns `None` when `P(ψ)` is zero **or below
/// [`MIN_CONDITIONING_PROBABILITY`]** — a subnormal denominator would
/// produce a garbage ratio, so it is treated as an impossible condition.
///
/// # Errors
///
/// As for [`probability`].
pub fn conditional_probability(
    mc: &mut ModelChecker,
    phi: &Formula,
    given: &Formula,
    probs: &[f64],
) -> Result<Option<f64>, BflError> {
    let joint = probability(mc, &phi.clone().and(given.clone()), probs)?;
    let base = probability(mc, given, probs)?;
    if base < MIN_CONDITIONING_PROBABILITY {
        Ok(None)
    } else {
        Ok(Some(joint / base))
    }
}

/// A standalone probability-threshold query `P(ϕ) ▷◁ p` — the
/// free-function form of the layer-2 judgement [`Query::Prob`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProbQuery {
    /// The formula whose probability is bounded.
    pub formula: Formula,
    /// The comparison `▷◁`.
    pub op: CmpOp,
    /// The bound `p ∈ [0, 1]`. The [`Prob`] newtype makes an
    /// out-of-range bound unrepresentable, so conversions to
    /// [`Query::Prob`] never need to clamp or fail.
    pub bound: Prob,
}

impl ProbQuery {
    /// Builds `P(formula) ▷◁ bound`, validating the bound.
    ///
    /// Replaces the panicking `ProbQuery::new` of earlier releases.
    ///
    /// # Errors
    ///
    /// [`BflError::InvalidBound`] if `bound` is not a probability.
    pub fn try_new(formula: Formula, op: CmpOp, bound: f64) -> Result<Self, BflError> {
        let bound = Prob::new(bound)?;
        Ok(ProbQuery { formula, op, bound })
    }

    /// Evaluates the query. `=` uses the documented
    /// relative-plus-absolute tolerance of [`prob_compare`].
    ///
    /// # Errors
    ///
    /// As for [`probability`].
    pub fn check(&self, mc: &mut ModelChecker, probs: &[f64]) -> Result<bool, BflError> {
        let p = probability(mc, &self.formula, probs)?;
        Ok(prob_compare(self.op, p, self.bound.get()))
    }
}

impl From<ProbQuery> for Query {
    fn from(q: ProbQuery) -> Query {
        Query::Prob {
            formula: q.formula,
            given: None,
            op: q.op,
            bound: q.bound,
        }
    }
}

impl std::fmt::Display for ProbQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P({}) {} {}", self.formula, self.op, self.bound)
    }
}

/// Formula-level Birnbaum importance of basic event `be` for `ϕ`:
/// `P(ϕ | be failed) − P(ϕ | be operational)`, computed by cofactoring.
///
/// # Errors
///
/// [`BflError::UnknownElement`] / [`BflError::EvidenceOnGate`] if `be` is
/// not a basic event of the tree, plus the errors of [`probability`].
pub fn birnbaum(
    mc: &mut ModelChecker,
    phi: &Formula,
    be: &str,
    probs: &[f64],
) -> Result<f64, BflError> {
    let hi = probability(mc, &phi.clone().with_evidence(be, true), probs)?;
    let lo = probability(mc, &phi.clone().with_evidence(be, false), probs)?;
    Ok(hi - lo)
}

/// The quantitative importance of one basic event for a formula — one
/// row of [`rank_events`].
///
/// For non-coherent formulae (negations make `ϕ` non-monotone) the
/// classical `[0, 1]` ranges do not apply: Birnbaum and Fussell-Vesely
/// can go negative, RAW below 1. The definitions are reported as
/// computed.
#[derive(Debug, Clone, PartialEq)]
pub struct EventImportance {
    /// The basic event's name.
    pub event: String,
    /// Its configured failure probability `p_e`.
    pub probability: f64,
    /// Birnbaum importance `I_B = P(ϕ|e=1) − P(ϕ|e=0)`.
    pub birnbaum: f64,
    /// Criticality importance `I_CR = I_B · p_e / P(ϕ)` — by the Shannon
    /// identity also the risk-contribution fraction
    /// `(P(ϕ) − P(ϕ|e=0)) / P(ϕ)`.
    pub criticality: f64,
    /// Vesely-Fussell importance in the diagnostic form
    /// `I_VF = P(e ∧ ϕ) / P(ϕ) = p_e · P(ϕ|e=1) / P(ϕ)` — the
    /// probability that the event is failed given `ϕ` holds. (The
    /// risk-contribution FV variant coincides identically with
    /// [`EventImportance::criticality`] under exact cofactoring, so the
    /// diagnostic form is reported to carry distinct information.)
    pub fussell_vesely: f64,
    /// Risk achievement worth `RAW = P(ϕ|e=1) / P(ϕ)`.
    pub raw: f64,
    /// Risk reduction worth `RRW = P(ϕ) / P(ϕ|e=0)`; `None` when
    /// `P(ϕ|e=0)` vanishes (the event is in every cut set, so fixing it
    /// removes the risk entirely — RRW diverges).
    pub rrw: Option<f64>,
}

/// The batched importance suite: every basic event of the tree ranked by
/// Birnbaum importance (descending, ties by name), with criticality,
/// Fussell-Vesely, RAW and RRW computed from the same three cofactor
/// probabilities per event — all on one compiled BDD with a shared
/// node-keyed memo, so the whole table costs little more than one
/// probability evaluation.
///
/// # Errors
///
/// [`BflError::InvalidProbability`] for a malformed `probs`;
/// [`BflError::DivisionByZero`] when `P(ϕ)` vanishes (every relative
/// measure is undefined then); translation errors as for
/// [`ModelChecker::formula_bdd`].
pub fn rank_events(
    mc: &mut ModelChecker,
    phi: &Formula,
    probs: &[f64],
) -> Result<Vec<EventImportance>, BflError> {
    validate(mc, probs)?;
    let f = mc.formula_bdd(phi)?;
    let mut memo = HashMap::new();
    rank_events_bdd(mc, f, probs, &mut memo)
}

/// Handle-level core of [`rank_events`], shared with the prepared-plan
/// evaluator (which ranks restricted diagrams under scenarios, reusing
/// its plan-lifetime memo). `probs` must already be validated.
pub(crate) fn rank_events_bdd(
    mc: &mut ModelChecker,
    f: Bdd,
    probs: &[f64],
    memo: &mut HashMap<u32, f64>,
) -> Result<Vec<EventImportance>, BflError> {
    let p_phi = bdd_probability_with_memo(mc, f, probs, memo);
    if p_phi < MIN_CONDITIONING_PROBABILITY {
        return Err(BflError::DivisionByZero {
            context: format!(
                "importance measures are undefined: P(ϕ) = {p_phi} (below {MIN_CONDITIONING_PROBABILITY:e})"
            ),
        });
    }
    let tree = mc.tree_arc();
    let mut rows = Vec::with_capacity(tree.num_basic_events());
    for (bi, &p_e) in probs.iter().enumerate() {
        let v = mc.var_of_basic(bi);
        let hi = mc.tree_bdd_mut().manager_mut().restrict(f, v, true);
        let lo = mc.tree_bdd_mut().manager_mut().restrict(f, v, false);
        let p_hi = bdd_probability_with_memo(mc, hi, probs, memo);
        let p_lo = bdd_probability_with_memo(mc, lo, probs, memo);
        let birnbaum = p_hi - p_lo;
        rows.push(EventImportance {
            event: tree.name(tree.basic_events()[bi]).to_string(),
            probability: p_e,
            birnbaum,
            criticality: birnbaum * p_e / p_phi,
            fussell_vesely: p_e * p_hi / p_phi,
            raw: p_hi / p_phi,
            rrw: if p_lo < MIN_CONDITIONING_PROBABILITY {
                None
            } else {
                Some(p_phi / p_lo)
            },
        });
    }
    rows.sort_by(|a, b| {
        b.birnbaum
            .total_cmp(&a.birnbaum)
            .then_with(|| a.event.cmp(&b.event))
    });
    Ok(rows)
}

/// Evaluates any layer-2 query — Boolean or probabilistic — against a
/// checker plus an explicit probability vector. Boolean shapes delegate
/// to [`ModelChecker::check_query`]; `P(…) ▷◁ p` and `importance(…)`
/// use `probs`. An `importance(…)` query "holds" iff the ranking is
/// *defined*, i.e. `P(ϕ)` is at least
/// [`MIN_CONDITIONING_PROBABILITY`] (the relative measures divide by
/// it) — only definedness is checked here, not the full table; callers
/// wanting the rows use [`rank_events`].
///
/// # Errors
///
/// As for [`probability`].
pub fn check_query(mc: &mut ModelChecker, psi: &Query, probs: &[f64]) -> Result<bool, BflError> {
    match psi {
        Query::Prob {
            formula,
            given,
            op,
            bound,
        } => {
            let p = match given {
                None => Some(probability(mc, formula, probs)?),
                Some(g) => conditional_probability(mc, formula, g, probs)?,
            };
            Ok(judge_bound(p, *op, bound.get()))
        }
        Query::Importance(phi) => Ok(probability(mc, phi, probs)? >= MIN_CONDITIONING_PROBABILITY),
        other => mc.check_query(other),
    }
}

/// Exhaustive reference for [`probability`], used by tests.
///
/// # Errors
///
/// [`BflError::TooLarge`] if the tree has more than 20 basic events,
/// [`BflError::InvalidProbability`] for a malformed `probs`, plus the
/// reference evaluator's errors.
pub fn probability_naive(
    tree: &bfl_fault_tree::FaultTree,
    phi: &Formula,
    probs: &[f64],
) -> Result<f64, BflError> {
    const LIMIT: usize = 20;
    if tree.num_basic_events() > LIMIT {
        return Err(BflError::TooLarge {
            actual: tree.num_basic_events(),
            limit: LIMIT,
        });
    }
    validate_probabilities(tree, probs)
        .map_err(|reason| BflError::InvalidProbability { reason })?;
    let mut total = 0.0;
    for b in StatusVector::enumerate_all(tree.num_basic_events()) {
        if crate::semantics::eval(tree, &b, phi)? {
            let mut w = 1.0;
            for (i, &p) in probs.iter().enumerate() {
                w *= if b.get(i) { p } else { 1.0 - p };
            }
            total += w;
        }
    }
    Ok(total)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use bfl_fault_tree::corpus;

    #[test]
    fn matches_element_probability() {
        let tree = corpus::fig1();
        let mut mc = ModelChecker::new(&tree);
        let probs = [0.1, 0.2, 0.3, 0.4];
        let via_logic = probability(&mut mc, &Formula::atom("CP/R"), &probs).unwrap();
        let via_ft = bfl_fault_tree::prob::top_event_probability(&tree, &probs).unwrap();
        assert!((via_logic - via_ft).abs() < 1e-12);
    }

    #[test]
    fn mcs_probability_matches_naive() {
        let tree = corpus::covid();
        let mut mc = ModelChecker::new(&tree);
        let n = tree.num_basic_events();
        let probs: Vec<f64> = (0..n).map(|i| 0.02 + (i as f64) * 0.05).collect();
        for phi in [
            Formula::atom("IWoS").mcs(),
            Formula::atom("MoT").mps(),
            Formula::atom("CT").with_evidence("H1", true),
            Formula::atom("CP").implies(Formula::atom("IWoS")),
        ] {
            let fast = probability(&mut mc, &phi, &probs).unwrap();
            let slow = probability_naive(&tree, &phi, &probs).unwrap();
            assert!((fast - slow).abs() < 1e-9, "{phi}: fast={fast} slow={slow}");
        }
    }

    #[test]
    fn malformed_probabilities_are_errors_not_panics() {
        let tree = corpus::or2();
        let mut mc = ModelChecker::new(&tree);
        let top = Formula::atom("Top");
        for bad in [
            vec![0.5],                // short
            vec![0.5, 0.5, 0.5],      // long
            vec![0.5, 1.5],           // out of range
            vec![0.5, -0.1],          // negative
            vec![0.5, f64::NAN],      // NaN
            vec![0.5, f64::INFINITY], // infinite
        ] {
            assert!(
                matches!(
                    probability(&mut mc, &top, &bad),
                    Err(BflError::InvalidProbability { .. })
                ),
                "{bad:?}"
            );
            assert!(
                matches!(
                    probability_naive(&tree, &top, &bad),
                    Err(BflError::InvalidProbability { .. })
                ),
                "{bad:?}"
            );
            assert!(conditional_probability(&mut mc, &top, &top, &bad).is_err());
            assert!(birnbaum(&mut mc, &top, "e1", &bad).is_err());
            assert!(rank_events(&mut mc, &top, &bad).is_err());
        }
    }

    #[test]
    fn naive_rejects_large_trees() {
        let tree =
            bfl_fault_tree::generator::random_tree(&bfl_fault_tree::generator::RandomTreeConfig {
                num_basic: 25,
                num_gates: 10,
                max_children: 4,
                vot_probability: 0.0,
                seed: 1,
            });
        let probs = vec![0.1; tree.num_basic_events()];
        let top = Formula::atom(tree.name(tree.top()));
        assert!(matches!(
            probability_naive(&tree, &top, &probs),
            Err(BflError::TooLarge {
                actual: 25,
                limit: 20
            })
        ));
    }

    #[test]
    fn conditional_probability_basics() {
        let tree = corpus::or2();
        let mut mc = ModelChecker::new(&tree);
        let probs = [0.5, 0.5];
        // P(Top | e1) = 1.
        let p =
            conditional_probability(&mut mc, &Formula::atom("Top"), &Formula::atom("e1"), &probs)
                .unwrap()
                .unwrap();
        assert!((p - 1.0).abs() < 1e-12);
        // Conditioning on an impossible event.
        let none = conditional_probability(
            &mut mc,
            &Formula::atom("Top"),
            &Formula::atom("e1").and(Formula::atom("e1").not()),
            &probs,
        )
        .unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn conditional_rejects_subnormal_denominators() {
        // P(e2) is subnormal: the ratio would be garbage, so the
        // condition is treated as impossible (regression test for the
        // exact-zero-only guard).
        let tree = corpus::or2();
        let mut mc = ModelChecker::new(&tree);
        let tiny: f64 = 1e-320; // subnormal, inside [0, 1]
        assert!(!tiny.is_normal() && tiny > 0.0);
        let probs = [0.5, tiny];
        let got =
            conditional_probability(&mut mc, &Formula::atom("Top"), &Formula::atom("e2"), &probs)
                .unwrap();
        assert_eq!(got, None);
        // A normal denominator still conditions.
        let ok = conditional_probability(
            &mut mc,
            &Formula::atom("Top"),
            &Formula::atom("e2"),
            &[0.5, 1e-9],
        )
        .unwrap();
        assert!((ok.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn conditional_interval_division_clamps_to_unit() {
        // P(Top | e2) on or2 with P(e1) ∈ [0.1, 0.9], P(e2) = [0.5, 0.5]:
        // joint = P(Top ∧ e2) = P(e2) = 0.5 exactly, but the
        // correlation-oblivious division pairs joint.hi = 0.5 with
        // base.lo = 0.5 → fine; force an overflow with e2 ∈ [0.1, 0.9]:
        // joint = P(e2) ∈ [0.1, 0.9], base = P(e2) ∈ [0.1, 0.9], so the
        // raw upper bound is 0.9 / 0.1 = 9 and must clamp to 1.
        let tree = corpus::or2();
        let mut mc = ModelChecker::new(&tree);
        let ivs = [
            ProbInterval::new(0.2, 0.4).unwrap(),
            ProbInterval::new(0.1, 0.9).unwrap(),
        ];
        let iv = conditional_probability_interval(
            &mut mc,
            &Formula::atom("Top"),
            &Formula::atom("e2"),
            &ivs,
        )
        .unwrap()
        .unwrap();
        // The true conditional is exactly 1 under every annotation
        // choice; the clamped envelope must be well-formed, contain it,
        // and never leave [0, 1].
        assert!(iv.lo <= iv.hi, "inverted envelope {iv}");
        assert!((0.0..=1.0).contains(&iv.lo) && (0.0..=1.0).contains(&iv.hi));
        assert!((iv.hi - 1.0).abs() < 1e-12, "envelope {iv} excludes 1");
        // The raw division helper clamps on both ends.
        let joint = ProbInterval::new(0.1, 0.9).unwrap();
        let base = ProbInterval::new(0.1, 0.9).unwrap();
        let c = interval_conditional(joint, base).unwrap();
        assert!((c.hi - 1.0).abs() < f64::EPSILON && c.lo >= 0.0);
    }

    #[test]
    fn threshold_queries() {
        let tree = corpus::or2();
        let mut mc = ModelChecker::new(&tree);
        let probs = [0.1, 0.2];
        // P(Top) = 0.28
        let q = ProbQuery::try_new(Formula::atom("Top"), CmpOp::Le, 0.3).unwrap();
        assert!(q.check(&mut mc, &probs).unwrap());
        let q2 = ProbQuery::try_new(Formula::atom("Top"), CmpOp::Gt, 0.3).unwrap();
        assert!(!q2.check(&mut mc, &probs).unwrap());
        assert_eq!(q.to_string(), "P(Top) <= 0.3");
        // Conversion into the layer-2 AST form.
        let as_query: Query = q.into();
        assert!(matches!(as_query, Query::Prob { given: None, .. }));
    }

    #[test]
    fn bad_bound_is_an_error() {
        for bad in [1.5, -0.1, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                ProbQuery::try_new(Formula::atom("x"), CmpOp::Ge, bad),
                Err(BflError::InvalidBound { .. })
            ));
        }
    }

    #[test]
    fn equality_tolerance_is_relative_near_one() {
        // A probability equal to 1 up to accumulated roundoff: the old
        // absolute 4·ε window rejects it once the error exceeds ~1e-15;
        // the relative tolerance accepts anything within 1e-9 of 1.
        let p = 1.0 - 3e-12;
        assert!(prob_compare(CmpOp::Eq, p, 1.0));
        assert!(!prob_compare(CmpOp::Eq, 0.9999, 1.0));
        // Inequalities stay exact.
        assert!(prob_compare(CmpOp::Lt, p, 1.0));
        assert!(!prob_compare(CmpOp::Gt, p, 1.0));
    }

    #[test]
    fn birnbaum_matches_ft_layer() {
        let tree = corpus::covid();
        let mut mc = ModelChecker::new(&tree);
        let n = tree.num_basic_events();
        let probs = vec![0.1; n];
        for name in ["IW", "H1", "VW"] {
            let via_logic = birnbaum(&mut mc, &Formula::atom("IWoS"), name, &probs).unwrap();
            let be = tree.element(name).unwrap();
            let via_ft =
                bfl_fault_tree::prob::birnbaum_importance(&tree, tree.top(), be, &probs).unwrap();
            assert!((via_logic - via_ft).abs() < 1e-12, "{name}");
        }
    }

    #[test]
    fn rank_events_agrees_with_pointwise_measures() {
        let tree = corpus::covid();
        let mut mc = ModelChecker::new(&tree);
        let n = tree.num_basic_events();
        let probs: Vec<f64> = (0..n).map(|i| 0.05 + (i as f64) * 0.03).collect();
        let phi = Formula::atom("IWoS");
        let p_phi = probability(&mut mc, &phi, &probs).unwrap();
        let rows = rank_events(&mut mc, &phi, &probs).unwrap();
        assert_eq!(rows.len(), n);
        // Sorted by Birnbaum descending.
        for w in rows.windows(2) {
            assert!(w[0].birnbaum >= w[1].birnbaum);
        }
        for row in &rows {
            let bb = birnbaum(&mut mc, &phi, &row.event, &probs).unwrap();
            assert!((row.birnbaum - bb).abs() < 1e-12, "{}", row.event);
            let p_lo = probability(
                &mut mc,
                &phi.clone().with_evidence(&*row.event, false),
                &probs,
            )
            .unwrap();
            let p_hi = probability(
                &mut mc,
                &phi.clone().with_evidence(&*row.event, true),
                &probs,
            )
            .unwrap();
            assert!((row.fussell_vesely - row.probability * p_hi / p_phi).abs() < 1e-12);
            assert!((row.raw - p_hi / p_phi).abs() < 1e-12);
            assert!((row.criticality - bb * row.probability / p_phi).abs() < 1e-12);
            // The Shannon identity behind the criticality ≡
            // risk-contribution-FV coincidence.
            assert!((row.criticality - (p_phi - p_lo) / p_phi).abs() < 1e-9);
            match row.rrw {
                Some(rrw) => assert!((rrw - p_phi / p_lo).abs() < 1e-9),
                None => assert!(p_lo < MIN_CONDITIONING_PROBABILITY),
            }
        }
        // VW is in every cut set of the COVID tree: fixing it removes
        // the risk, so its RRW diverges.
        let vw = rows.iter().find(|r| r.event == "VW").unwrap();
        assert_eq!(vw.rrw, None);
        assert!((vw.fussell_vesely - 1.0).abs() < 1e-12);
    }

    #[test]
    fn interval_probability_brackets_and_degenerates() {
        let tree = corpus::covid();
        let mut mc = ModelChecker::new(&tree);
        let n = tree.num_basic_events();
        let probs: Vec<f64> = (0..n).map(|i| 0.02 + (i as f64) * 0.05).collect();
        let phi = Formula::atom("IWoS").mcs();
        // Degenerate intervals: bit-identical to the exact walk, even
        // through MCS desugaring.
        let exact = probability(&mut mc, &phi, &probs).unwrap();
        let points: Vec<ProbInterval> = probs
            .iter()
            .map(|&p| ProbInterval { lo: p, hi: p })
            .collect();
        let iv = probability_interval(&mut mc, &phi, &points).unwrap();
        assert_eq!(iv.lo.to_bits(), exact.to_bits());
        assert_eq!(iv.hi.to_bits(), exact.to_bits());
        // Widened intervals bracket the point answer.
        let wide: Vec<ProbInterval> = probs
            .iter()
            .map(|&p| ProbInterval {
                lo: (p - 0.01).max(0.0),
                hi: (p + 0.05).min(1.0),
            })
            .collect();
        let iv = probability_interval(&mut mc, &phi, &wide).unwrap();
        assert!(iv.lo <= exact && exact <= iv.hi, "{exact} outside {iv}");
        // Malformed intervals are structured errors.
        let bad = vec![ProbInterval { lo: 0.9, hi: 0.1 }; n];
        assert!(matches!(
            probability_interval(&mut mc, &phi, &bad),
            Err(BflError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn conditional_interval_division() {
        let tree = corpus::or2();
        let mut mc = ModelChecker::new(&tree);
        let ivs = [
            ProbInterval { lo: 0.1, hi: 0.3 },
            ProbInterval { lo: 0.2, hi: 0.2 },
        ];
        // P(Top | e1) = 1 pointwise, but interval division is oblivious
        // to the joint/base correlation: [lo/hi, min(1, hi/lo)].
        let got = conditional_probability_interval(
            &mut mc,
            &Formula::atom("Top"),
            &Formula::atom("e1"),
            &ivs,
        )
        .unwrap()
        .unwrap();
        assert!((got.lo - 0.1 / 0.3).abs() < 1e-12, "lo = {}", got.lo);
        assert_eq!(got.hi, 1.0);
        // Conditioning on the impossible: None, like the exact path.
        let none = conditional_probability_interval(
            &mut mc,
            &Formula::atom("Top"),
            &Formula::atom("e1").and(Formula::atom("e1").not()),
            &ivs,
        )
        .unwrap();
        assert!(none.is_none());
        // A condition whose lower bound vanishes: upper end widens to 1.
        let zero_lo = [
            ProbInterval { lo: 0.0, hi: 0.5 },
            ProbInterval { lo: 0.2, hi: 0.2 },
        ];
        let wide = conditional_probability_interval(
            &mut mc,
            &Formula::atom("e1"),
            &Formula::atom("e1"),
            &zero_lo,
        )
        .unwrap()
        .unwrap();
        assert_eq!(wide.hi, 1.0);
    }

    #[test]
    fn rank_events_of_impossible_formula_is_division_by_zero() {
        let tree = corpus::or2();
        let mut mc = ModelChecker::new(&tree);
        let phi = Formula::atom("e1").and(Formula::atom("e1").not());
        assert!(matches!(
            rank_events(&mut mc, &phi, &[0.1, 0.2]),
            Err(BflError::DivisionByZero { .. })
        ));
    }

    #[test]
    fn check_query_covers_both_layers() {
        let tree = corpus::or2();
        let mut mc = ModelChecker::new(&tree);
        let probs = [0.1, 0.2];
        // P(Top) = 0.28.
        let q = Query::prob(Formula::atom("Top"), CmpOp::Le, 0.3).unwrap();
        assert!(check_query(&mut mc, &q, &probs).unwrap());
        let c =
            Query::prob_given(Formula::atom("Top"), Formula::atom("e1"), CmpOp::Ge, 1.0).unwrap();
        assert!(check_query(&mut mc, &c, &probs).unwrap());
        // Conditioning on the impossible: no bound is satisfied.
        let imp = Query::prob_given(
            Formula::atom("Top"),
            Formula::atom("e1").and(Formula::atom("e1").not()),
            CmpOp::Ge,
            0.0,
        )
        .unwrap();
        assert!(!check_query(&mut mc, &imp, &probs).unwrap());
        // Boolean queries pass through.
        assert!(check_query(&mut mc, &Query::exists(Formula::atom("Top")), &probs).unwrap());
        // Importance is a ranking; it "holds" whenever it is defined.
        assert!(check_query(&mut mc, &Query::importance(Formula::atom("Top")), &probs).unwrap());
    }
}
