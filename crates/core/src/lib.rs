//! # `bfl-core` — Boolean Fault tree Logic
//!
//! A faithful, production-quality implementation of
//! *"BFL: a Logic to Reason about Fault Trees"* (Nicoletti, Hahn &
//! Stoelinga, DSN 2022):
//!
//! * the two-layer logic of Section III — [`Formula`] (layer 1: element
//!   atoms, Boolean connectives, evidence, `MCS`/`MPS`) and [`Query`]
//!   (layer 2: `∃`, `∀`, `IDP`), plus all the paper's syntactic sugar
//!   (`⇒ ≡ ≢ SUP VOT▷◁k`);
//! * reference semantics by direct recursion ([`semantics`]);
//! * the BDD-based model-checking algorithms of Section V
//!   ([`ModelChecker`]): formula compilation with caching (Algorithm 1),
//!   vector checking (Algorithm 2), satisfaction sets (Algorithm 3);
//! * counterexample generation per Section VI ([`counterexample()`],
//!   Algorithm 4 and Definition 7) with the four patterns of Table I
//!   ([`patterns`]) and failure-propagation rendering ([`render`]);
//! * a textual DSL for the logic ([`parser`]) — the paper's third
//!   future-work item;
//! * a fault-tree synthesis prototype for the Section V-E discussion
//!   ([`synthesis`]);
//! * an **actual-causality layer** ([`causality`]) — `cause(ϕ, evidence)`
//!   computes the minimal event sets that actually caused a failing
//!   observation, by BDD cofactoring and the `MPS` maximality machinery;
//! * the **[`AnalysisSession`] engine** ([`engine`], [`report`]) — an
//!   owned, `Send + Sync`, batch-first façade over all of the above;
//! * **compiled query plans** ([`plan`], [`scenario`]) — prepare a
//!   layer-2 query once, then evaluate it under arbitrary what-if
//!   [`Scenario`]s (evidence bindings `e←b`) by BDD restriction, sweep
//!   whole scenario sets across threads, and [`explain`] the compiled
//!   plan pass by pass.
//!
//! [`explain`]: plan::PreparedQuery::explain
//!
//! ## Quickstart
//!
//! ```
//! use bfl_core::engine::AnalysisSession;
//! use bfl_core::report::Spec;
//! use bfl_core::parser;
//! use bfl_fault_tree::corpus;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let session = AnalysisSession::new(corpus::covid());
//!
//! // Property 1 of the case study: is an infected surface sufficient for
//! // the transmission of COVID? (It is not — and the outcome says why.)
//! let q = parser::parse_query("forall IS => MoT")?;
//! let outcome = session.check_query(&q)?;
//! assert!(!outcome.holds);
//! assert!(!outcome.counterexamples.is_empty());
//!
//! // Which minimal cut sets involve the object-disinfection error H4?
//! let phi = parser::parse_formula("MCS(IWoS) & H4")?;
//! let sets = session.satisfying_vectors(&phi)?;
//! assert_eq!(sets.len(), 2);
//!
//! // Whole specs evaluate in one pass over shared BDD caches.
//! let report = session.run(&Spec::parse("P8: IDP(CIO, CIS)\nP9: SUP(PP)\n")?)?;
//! assert_eq!(report.holding(), 0);
//!
//! // What-if sweeps: prepare once, evaluate scenarios by restriction.
//! let prepared = session.prepare(&parser::parse_query("exists IWoS")?)?;
//! let scenarios = bfl_core::scenario::ScenarioSet::parse("protected: VW = 0\nworst: IW = 1\n")?;
//! let sweep = prepared.sweep(&scenarios)?;
//! assert_eq!(sweep.holding(), 1);
//! assert_eq!(sweep.stats.translation_misses, 0); // no recompilation
//! # Ok(())
//! # }
//! ```
//!
//! ## Migration note: per-scenario `with_evidence` loops → `prepare`/`sweep`
//!
//! Before, every what-if hypothesis was baked into the AST and paid the
//! whole pipeline again; now evidence is applied to the *compiled*
//! diagram by restriction (cofactoring):
//!
//! | before (recompile per scenario)                       | after (compile once)                     |
//! |-------------------------------------------------------|------------------------------------------|
//! | `let phi2 = phi.clone().with_evidence("IW", true);`   | `session.prepare(&q)?` once, then        |
//! | `session.check_query(&Query::Exists(phi2))?`          | `prepared.eval(&Scenario::new().bind("IW", true))?` |
//! | loop over hypotheses, one compile each                | `prepared.sweep(&ScenarioSet::parse(..)?)?` |
//! | no visibility into the pipeline                       | `prepared.explain()` → [`Plan`] (text/JSON) |
//!
//! The two paths agree exactly — verdicts *and* witnesses — because the
//! checker compiles outermost evidence as BDD restriction and BDDs are
//! canonical; `tests/prepared_query.rs` asserts the agreement on the
//! case study and on randomized trees.
//!
//! ## Migration note: `ModelChecker` → `AnalysisSession`
//!
//! [`ModelChecker`] (lifetime-bound, `&mut`, bare `bool` answers) remains
//! available as the session's internal workhorse, but the public face is
//! now [`AnalysisSession`]: owned tree (`Arc<FaultTree>`, no lifetime
//! parameter), `Send + Sync`, structured [`report::Outcome`]s with
//! witnesses/counterexamples/statistics, cut-set [`Backend`] selection as
//! configuration, and batch evaluation via
//! [`AnalysisSession::run`](engine::AnalysisSession::run). See the
//! migration table in the [`engine`] module docs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod catalog;
pub mod causality;
pub mod checker;
pub mod counterexample;
pub mod engine;
pub mod error;
pub mod lint;
pub mod parser;
pub mod patterns;
pub mod plan;
pub mod quant;
pub mod render;
pub mod report;
pub mod rewrite;
pub mod scenario;
pub mod semantics;
pub mod synthesis;
pub mod uncertainty;

pub use ast::{CmpOp, Formula, Prob, Query};
pub use causality::{ActualCause, CauseReport};
pub use checker::{MinimalityScope, ModelChecker};
pub use counterexample::{
    counterexample, is_valid_counterexample, some_counterexamples, Counterexample,
    CounterexampleSet,
};
pub use engine::{
    AnalysisSession, Backend, MaintenanceReport, MaintenanceStats, ReorderPolicy, SamplerStats,
    SessionBuilder,
};
pub use error::BflError;
pub use lint::{Diagnostic, Severity};
pub use patterns::{Pattern, Table1Row};
pub use plan::{
    ConstructionReport, ModuleReport, Plan, PreparedQuery, PreparedStats, ProbOutcome,
    ProbSweepReport, ProbSweepStats, SweepReport, SweepStats,
};
pub use quant::{EventImportance, ProbQuery};
pub use report::{EvalStats, Outcome, Report, Spec, SpecItem, SpecKind};
pub use scenario::{Scenario, ScenarioSet};
pub use uncertainty::{Estimate, Method, ProbInterval, ProbValue};
