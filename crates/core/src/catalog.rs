//! A catalogue of ready-made BFL query templates.
//!
//! BFL was designed around "concrete insights and needs gathered through
//! series of questions targeted at a FT practitioner from industry"
//! (Section I and reference \[4\] of the paper). This module packages the
//! recurring question shapes from the paper's introduction and case study
//! as documented constructors, so applications can ask them without
//! assembling ASTs by hand:
//!
//! * what-if cut/path sets under evidence;
//! * sufficiency ("does the failure of E always lead to the TLE?");
//! * necessity ("is E part of every failure?");
//! * redundancy/boundary checks with `VOT` ("would at most/at least k
//!   of … suffice?");
//! * common-cause checks (`IDP`), superfluousness sweeps (`SUP`);
//! * k-resilience ("no k failures can bring the system down").
//!
//! # Example
//!
//! ```
//! use bfl_core::{catalog, ModelChecker};
//! use bfl_fault_tree::corpus;
//!
//! # fn main() -> Result<(), bfl_core::BflError> {
//! let tree = corpus::covid();
//! let mut mc = ModelChecker::new(&tree);
//! // "Is the failure of H4 sufficient for the top event?" (Property 3)
//! let q = catalog::sufficient_for(&tree, "H4", "IWoS");
//! assert!(!mc.check_query(&q)?);
//! // The smallest minimal cut set has five elements, so the system
//! // survives every scenario with at most four failures.
//! let q = catalog::k_resilient(&tree, 4);
//! assert!(mc.check_query(&q)?);
//! # Ok(())
//! # }
//! ```

use bfl_fault_tree::FaultTree;

use crate::ast::{CmpOp, Formula, Query};

/// "Does the failure of `cause` always lead to the failure of `effect`?"
/// — `∀(cause ⇒ effect)` (properties 1 and 3 of the case study).
pub fn sufficient_for(_tree: &FaultTree, cause: &str, effect: &str) -> Query {
    Query::Forall(Formula::atom(cause).implies(Formula::atom(effect)))
}

/// "Can `effect` occur without `cause`?" — `∃(effect ∧ ¬cause)`. When
/// this is false, `cause` is *necessary* for `effect`.
pub fn occurs_without(_tree: &FaultTree, effect: &str, cause: &str) -> Query {
    Query::Exists(Formula::atom(effect).and(Formula::atom(cause).not()))
}

/// "Is `cause` necessary for `effect`?" — `∀(effect ⇒ cause)`.
pub fn necessary_for(_tree: &FaultTree, cause: &str, effect: &str) -> Query {
    Query::Forall(Formula::atom(effect).implies(Formula::atom(cause)))
}

/// "Would `effect` always fail if at least `k` of `candidates` failed?"
/// — `∀(VOT≥k(candidates) ⇒ effect)` (property 4 of the case study).
pub fn at_least_k_sufficient<I, S>(k: u32, candidates: I, effect: &str) -> Query
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let operands: Vec<Formula> = candidates
        .into_iter()
        .map(|s| Formula::atom(s.into()))
        .collect();
    Query::Forall(Formula::vot(CmpOp::Ge, k, operands).implies(Formula::atom(effect)))
}

/// "Can the system survive every scenario with at most `k` basic-event
/// failures?" — `∀(VOT≤k(all BEs) ⇒ ¬e_top)`; true iff every minimal cut
/// set has more than `k` elements (k-resilience).
pub fn k_resilient(tree: &FaultTree, k: u32) -> Query {
    let operands: Vec<Formula> = tree
        .basic_event_names()
        .into_iter()
        .map(Formula::atom)
        .collect();
    let top = Formula::atom(tree.name(tree.top()));
    Query::Forall(Formula::vot(CmpOp::Le, k, operands).implies(top.not()))
}

/// The minimal cut sets of `element` *given* that the listed events have
/// already failed (`evidence = 1`) — the scenario query of the paper's
/// introduction, as a layer-1 formula for
/// [`ModelChecker::satisfying_vectors`](crate::ModelChecker::satisfying_vectors).
pub fn cut_sets_given_failed<I, S>(element: &str, failed: I) -> Formula
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let mut phi = Formula::atom(element).mcs();
    for e in failed {
        phi = phi.with_evidence(e, true);
    }
    phi
}

/// The minimal path sets of `element` given that the listed events are
/// guaranteed operational (`evidence = 0`).
pub fn path_sets_given_operational<I, S>(element: &str, operational: I) -> Formula
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let mut phi = Formula::atom(element).mps();
    for e in operational {
        phi = phi.with_evidence(e, false);
    }
    phi
}

/// "Are `a` and `b` independent scenarios?" — `IDP(a, b)` (property 8).
/// `a` and `b` share a common cause exactly when this query is false.
pub fn independent(a: &str, b: &str) -> Query {
    Query::Idp(Formula::atom(a), Formula::atom(b))
}

/// All superfluous basic events of the tree: events whose status never
/// influences the top event (`SUP`, property 9). Evaluates eagerly.
///
/// # Errors
///
/// As for [`ModelChecker::check_query`](crate::ModelChecker::check_query).
pub fn superfluous_events(mc: &mut crate::ModelChecker) -> Result<Vec<String>, crate::BflError> {
    let names: Vec<String> = mc
        .tree()
        .basic_event_names()
        .into_iter()
        .map(str::to_string)
        .collect();
    let mut out = Vec::new();
    for name in names {
        if mc.check_query(&Query::Sup(name.clone()))? {
            out.push(name);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelChecker;
    use bfl_fault_tree::corpus;

    #[test]
    fn sufficiency_matches_case_study() {
        let tree = corpus::covid();
        let mut mc = ModelChecker::new(&tree);
        // P3: H4 alone is not sufficient.
        assert!(!mc
            .check_query(&sufficient_for(&tree, "H4", "IWoS"))
            .unwrap());
        // But the whole SH subtree failing together with CP/R and MoT is —
        // trivially, the top itself.
        assert!(mc
            .check_query(&sufficient_for(&tree, "IWoS", "IWoS"))
            .unwrap());
    }

    #[test]
    fn necessity_of_h1_and_vw() {
        // SH = AND(H1, VW) gates the whole tree: both are necessary.
        let tree = corpus::covid();
        let mut mc = ModelChecker::new(&tree);
        assert!(mc.check_query(&necessary_for(&tree, "H1", "IWoS")).unwrap());
        assert!(mc.check_query(&necessary_for(&tree, "VW", "IWoS")).unwrap());
        assert!(!mc.check_query(&necessary_for(&tree, "H4", "IWoS")).unwrap());
        // Equivalent formulation through occurs_without.
        assert!(!mc
            .check_query(&occurs_without(&tree, "IWoS", "H1"))
            .unwrap());
        assert!(mc
            .check_query(&occurs_without(&tree, "IWoS", "H4"))
            .unwrap());
    }

    #[test]
    fn vot_boundary_matches_property_4() {
        let tree = corpus::covid();
        let mut mc = ModelChecker::new(&tree);
        let q = at_least_k_sufficient(2, ["H1", "H2", "H3", "H4", "H5"], "IWoS");
        assert!(!mc.check_query(&q).unwrap());
    }

    #[test]
    fn resilience_thresholds() {
        let tree = corpus::covid();
        let mut mc = ModelChecker::new(&tree);
        // The smallest MCS has 5 elements, so the system tolerates any 4
        // failures but not every set of 5.
        assert!(mc.check_query(&k_resilient(&tree, 4)).unwrap());
        assert!(!mc.check_query(&k_resilient(&tree, 5)).unwrap());
        // Fig. 1's smallest cut set has 2 elements.
        let fig1 = corpus::fig1();
        let mut mc1 = ModelChecker::new(&fig1);
        assert!(mc1.check_query(&k_resilient(&fig1, 1)).unwrap());
        assert!(!mc1.check_query(&k_resilient(&fig1, 2)).unwrap());
    }

    #[test]
    fn scenario_cut_sets() {
        let tree = corpus::fig1();
        let mut mc = ModelChecker::new(&tree);
        // Given IW already failed, the remaining minimal scenarios.
        let phi = cut_sets_given_failed("CP/R", ["IW"]);
        let vectors = mc.satisfying_vectors(&phi).unwrap();
        // IW is restricted out: vectors describe the other events; the
        // smallest completion is {H3} (as don't-care expansion includes
        // IW itself both ways we check membership by evaluation instead).
        assert!(!vectors.is_empty());
        for v in &vectors {
            let mut with_iw = v.clone();
            let iw = tree.basic_index(tree.element("IW").unwrap()).unwrap();
            with_iw.set(iw, true);
            assert!(tree.is_cut_set(&with_iw, tree.top()));
        }
    }

    #[test]
    fn independence_and_sup() {
        let tree = corpus::covid();
        let mut mc = ModelChecker::new(&tree);
        // P8: CIO and CIS share H1 — not independent.
        assert!(!mc.check_query(&independent("CIO", "CIS")).unwrap());
        // DT = AND(IW, AB) and CR = AND(IT, H2) share nothing.
        assert!(mc.check_query(&independent("DT", "CR")).unwrap());
        // No superfluous events anywhere in the COVID tree.
        assert!(superfluous_events(&mut mc).unwrap().is_empty());
    }
}
