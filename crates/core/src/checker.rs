//! The BDD-based model checker: Algorithms 1, 2 and 3 of Section V.
//!
//! * **Algorithm 1** ([`ModelChecker::formula_bdd`]): compile a formula to
//!   a BDD, caching the translation of every sub-formula and fault-tree
//!   element so repeated queries share work ("dynamic programming
//!   standards" in the paper's words).
//! * **Algorithm 2** ([`ModelChecker::holds`]): check `b, T ⊨ χ` by
//!   walking the BDD along the truth assignments of `b`.
//! * **Algorithm 3** ([`ModelChecker::satisfying_vectors`]): compute the
//!   satisfaction set `⟦χ⟧` by collecting all paths to the `1` terminal.
//! * Layer-2 queries `∃ϕ`, `∀ϕ`, `IDP`, `SUP`
//!   ([`ModelChecker::check_query`]): quantification reduces to comparing
//!   the BDD with the terminals; `IDP` compares BDD supports, which on
//!   *reduced* diagrams coincide exactly with the influencing basic events.

use std::collections::HashMap;
use std::sync::Arc;

use bfl_bdd::{Bdd, GcStats, Manager, SiftStats, Var};
use bfl_fault_tree::analysis::{mcs_bdd_paper, mps_bdd_paper};
use bfl_fault_tree::bdd::{vot_threshold, ParallelCompileStats, TreeBdd};
use bfl_fault_tree::{FaultTree, StatusVector, VariableOrdering};

use crate::ast::{CmpOp, Formula, Query};
use crate::error::BflError;

/// Which variables the `MCS`/`MPS` minimality quantifier ranges over.
///
/// The paper's *formal* semantics (Section III-B) compares whole status
/// vectors, i.e. minimality over the **global universe** of basic events:
/// a vector satisfying `MCS(ϕ)` has every `ϕ`-irrelevant event
/// operational. Its Table I *examples*, however, treat events outside the
/// cone of `ϕ` as unconstrained (pattern 3 is unsatisfiable otherwise —
/// see `DESIGN.md` §4). Both readings are offered; the formal one is the
/// default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MinimalityScope {
    /// Minimality over all basic events of the tree (formal semantics).
    #[default]
    GlobalUniverse,
    /// Minimality only over the influencing events of the operand formula;
    /// other events are don't-cares (Table I reading).
    FormulaSupport,
}

/// The BFL model checker for one fault tree.
///
/// Holds the BDD manager, the `Ψ_FT` element translations and a
/// per-formula translation cache, so a sequence of queries against the
/// same tree reuses all intermediate BDDs.
///
/// # Example
///
/// ```
/// use bfl_core::{Formula, Query, ModelChecker};
/// use bfl_fault_tree::corpus;
///
/// # fn main() -> Result<(), bfl_core::BflError> {
/// let tree = corpus::fig1();
/// let mut mc = ModelChecker::new(&tree);
/// // Example 1 of the paper: ∀(CP ⇒ CP/R) holds.
/// let q = Query::forall(Formula::atom("CP").implies(Formula::atom("CP/R")));
/// assert!(mc.check_query(&q)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ModelChecker {
    tree: Arc<FaultTree>,
    tb: TreeBdd,
    cache: HashMap<(Formula, MinimalityScope), Bdd>,
    scope: MinimalityScope,
    /// ordering position -> basic index (inverse of the TreeBdd map).
    basic_of_position: Vec<usize>,
    /// Formula-translation cache hits/misses since the last reset, over
    /// every recursive `formula_bdd` step.
    cache_hits: u64,
    cache_misses: u64,
}

impl ModelChecker {
    /// Creates a checker with the default DFS variable ordering and the
    /// formal (global-universe) minimality scope.
    ///
    /// The checker *owns* its tree (it clones `tree` into an
    /// [`Arc`]); use [`ModelChecker::from_arc`] to share an existing
    /// allocation.
    pub fn new(tree: &FaultTree) -> Self {
        Self::with_ordering(tree, VariableOrdering::DfsPreorder)
    }

    /// Creates a checker with an explicit variable ordering.
    pub fn with_ordering(tree: &FaultTree, ordering: VariableOrdering) -> Self {
        Self::from_arc(Arc::new(tree.clone()), ordering)
    }

    /// Creates a checker sharing ownership of an existing tree.
    pub fn from_arc(tree: Arc<FaultTree>, ordering: VariableOrdering) -> Self {
        let tb = TreeBdd::new(&tree, ordering);
        let basic_of_position = tb
            .order()
            .iter()
            .map(|&e| tree.basic_index(e).unwrap_or_else(|| unreachable!("basic")))
            .collect();
        ModelChecker {
            tree,
            tb,
            cache: HashMap::new(),
            scope: MinimalityScope::default(),
            basic_of_position,
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// Selects the minimality scope used by `MCS`/`MPS` (see
    /// [`MinimalityScope`]).
    pub fn set_minimality_scope(&mut self, scope: MinimalityScope) {
        self.scope = scope;
    }

    /// The current minimality scope.
    pub fn minimality_scope(&self) -> MinimalityScope {
        self.scope
    }

    /// The fault tree under analysis.
    pub fn tree(&self) -> &FaultTree {
        &self.tree
    }

    /// Shared handle to the fault tree under analysis.
    pub fn tree_arc(&self) -> Arc<FaultTree> {
        Arc::clone(&self.tree)
    }

    /// Translation-cache hits since construction or the last
    /// [`ModelChecker::reset_cache_stats`], counted over every recursive
    /// step of Algorithm 1.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Translation-cache misses (sub-formulae compiled for the first
    /// time); the cache holds exactly this many entries per scope.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// Zeroes the hit/miss counters (the cache itself is kept).
    pub fn reset_cache_stats(&mut self) {
        self.cache_hits = 0;
        self.cache_misses = 0;
    }

    /// The underlying BDD manager (for statistics and rendering).
    pub fn manager(&self) -> &Manager {
        self.tb.manager()
    }

    /// Compiles every element translation of the tree up front, farming
    /// independent modules out to `workers` threads and stitching the
    /// results into the checker's arena (see
    /// [`TreeBdd::compile_parallel`]). The resulting diagrams are
    /// node-for-node identical to the lazy sequential compile; later
    /// queries find every element already cached.
    pub fn compile_parallel(&mut self, workers: usize) -> ParallelCompileStats {
        let tree = Arc::clone(&self.tree);
        self.tb.compile_parallel(&tree, workers)
    }

    /// Dynamic variable reordering: Rudell sifting over glued
    /// *(event, primed)* pairs, steered by every diagram the checker
    /// keeps alive (element translations *and* compiled formulae). Both
    /// caches are remapped through any interleaved compaction, so every
    /// handle the checker hands out afterwards stays valid.
    ///
    /// Follow with [`ModelChecker::collect_garbage`] to reclaim the final
    /// round of swap debris.
    pub fn sift(&mut self) -> SiftStats {
        let mut none: Vec<Bdd> = Vec::new();
        self.sift_with_extra(&mut none)
    }

    /// [`ModelChecker::sift`] with additional caller-owned roots included
    /// in the live-size metric and rewritten in place (e.g.
    /// prepared-query roots).
    pub(crate) fn sift_with_extra(&mut self, extra: &mut Vec<Bdd>) -> SiftStats {
        let entries: Vec<((Formula, MinimalityScope), Bdd)> = self.cache.drain().collect();
        let offset = extra.len();
        extra.extend(entries.iter().map(|&(_, b)| b));
        let stats = self.tb.sift_with_extra_roots(extra);
        self.cache = entries
            .into_iter()
            .zip(extra[offset..].iter())
            .map(|((key, _), &new)| (key, new))
            .collect();
        extra.truncate(offset);
        stats
    }

    /// Mark-and-sweep garbage collection with arena compaction.
    ///
    /// Roots are the element-translation cache and the formula-translation
    /// cache; both are remapped through the sweep, so every handle the
    /// checker hands out afterwards is valid. Handles obtained *before*
    /// the collection (outside those caches) are invalidated — the
    /// session layer keeps prepared-query roots registered so its
    /// maintenance can pass them through the sweep and remap them.
    pub fn collect_garbage(&mut self) -> GcStats {
        let mut none: Vec<Bdd> = Vec::new();
        self.collect_garbage_with(&mut none)
    }

    /// [`ModelChecker::collect_garbage`] with extra caller-owned roots,
    /// rewritten in place to their remapped values.
    pub(crate) fn collect_garbage_with(&mut self, extra: &mut Vec<Bdd>) -> GcStats {
        let entries: Vec<((Formula, MinimalityScope), Bdd)> = self.cache.drain().collect();
        let offset = extra.len();
        extra.extend(entries.iter().map(|&(_, b)| b));
        let stats = self.tb.collect_garbage_with(extra);
        self.cache = entries
            .into_iter()
            .zip(extra[offset..].iter())
            .map(|((key, _), &new)| (key, new))
            .collect();
        extra.truncate(offset);
        stats
    }

    /// Live nodes reachable from the checker's caches plus `extra`.
    pub(crate) fn live_node_count(&self, extra: &[Bdd]) -> usize {
        let mut roots: Vec<Bdd> = self.cache.values().copied().collect();
        roots.extend_from_slice(extra);
        self.tb.live_node_count(&roots)
    }

    /// Number of nodes of the diagram for `f`.
    pub fn bdd_size(&self, f: Bdd) -> usize {
        self.tb.manager().node_count(f)
    }

    fn resolve(&self, name: &str) -> Result<bfl_fault_tree::ElementId, BflError> {
        self.tree
            .element(name)
            .ok_or_else(|| BflError::UnknownElement(name.to_string()))
    }

    /// **Algorithm 1**: computes `B_T(χ)` for a layer-1 formula, caching
    /// intermediate results.
    ///
    /// # Errors
    ///
    /// [`BflError::UnknownElement`] and [`BflError::EvidenceOnGate`] as in
    /// the reference evaluator.
    pub fn formula_bdd(&mut self, phi: &Formula) -> Result<Bdd, BflError> {
        let key = (phi.clone(), self.scope);
        if let Some(&b) = self.cache.get(&key) {
            self.cache_hits += 1;
            return Ok(b);
        }
        self.cache_misses += 1;
        let result = match phi {
            Formula::Const(c) => self.tb.manager().constant(*c),
            Formula::Atom(name) => {
                let e = self.resolve(name)?;
                self.tb.element_bdd(&self.tree, e)
            }
            Formula::Not(a) => {
                let x = self.formula_bdd(a)?;
                self.tb.manager_mut().not(x)
            }
            Formula::And(a, b) => {
                let x = self.formula_bdd(a)?;
                let y = self.formula_bdd(b)?;
                self.tb.manager_mut().and(x, y)
            }
            Formula::Or(a, b) => {
                let x = self.formula_bdd(a)?;
                let y = self.formula_bdd(b)?;
                self.tb.manager_mut().or(x, y)
            }
            Formula::Implies(a, b) => {
                let x = self.formula_bdd(a)?;
                let y = self.formula_bdd(b)?;
                self.tb.manager_mut().implies(x, y)
            }
            Formula::Iff(a, b) => {
                let x = self.formula_bdd(a)?;
                let y = self.formula_bdd(b)?;
                self.tb.manager_mut().iff(x, y)
            }
            Formula::Neq(a, b) => {
                let x = self.formula_bdd(a)?;
                let y = self.formula_bdd(b)?;
                self.tb.manager_mut().xor(x, y)
            }
            Formula::Evidence {
                inner,
                element,
                value,
            } => {
                let e = self.resolve(element)?;
                let bi = self
                    .tree
                    .basic_index(e)
                    .ok_or_else(|| BflError::EvidenceOnGate(element.clone()))?;
                let x = self.formula_bdd(inner)?;
                let v = self.tb.var_of_basic(bi);
                self.tb.manager_mut().restrict(x, v, *value)
            }
            Formula::Mcs(a) => {
                let x = self.formula_bdd(a)?;
                self.minimality_bdd(x, true)
            }
            Formula::Mps(a) => {
                let x = self.formula_bdd(a)?;
                self.minimality_bdd(x, false)
            }
            Formula::Vot { op, k, operands } => {
                let mut xs = Vec::with_capacity(operands.len());
                for o in operands {
                    xs.push(self.formula_bdd(o)?);
                }
                let m = self.tb.manager_mut();
                let ge = |m: &mut Manager, xs: &[Bdd], k: u32| vot_threshold(m, xs, k);
                let k1 = k.saturating_add(1);
                match op {
                    CmpOp::Ge => ge(m, &xs, *k),
                    CmpOp::Gt => ge(m, &xs, k1),
                    CmpOp::Lt => {
                        let g = ge(m, &xs, *k);
                        m.not(g)
                    }
                    CmpOp::Le => {
                        let g = ge(m, &xs, k1);
                        m.not(g)
                    }
                    CmpOp::Eq => {
                        let at_least = ge(m, &xs, *k);
                        let more = ge(m, &xs, k1);
                        let not_more = m.not(more);
                        m.and(at_least, not_more)
                    }
                }
            }
        };
        self.cache.insert(key, result);
        Ok(result)
    }

    /// `MCS` (`minimal = true`) / `MPS` (`minimal = false`) translation:
    /// the primed-vector construction of Algorithm 1 restricted to the
    /// variable pairs selected by the minimality scope.
    fn minimality_bdd(&mut self, x: Bdd, minimal: bool) -> Bdd {
        match self.scope {
            MinimalityScope::GlobalUniverse => {
                if minimal {
                    mcs_bdd_paper(&mut self.tb, x)
                } else {
                    mps_bdd_paper(&mut self.tb, x)
                }
            }
            MinimalityScope::FormulaSupport => {
                let support = self.tb.manager().support(x);
                let pairs: Vec<(Var, Var)> =
                    support.iter().map(|&v| (v, Var(v.index() + 1))).collect();
                let primed: Vec<Var> = pairs.iter().map(|&(_, p)| p).collect();
                let m = self.tb.manager_mut();
                let (base, relation) = if minimal {
                    (x, m.strict_subset(&pairs))
                } else {
                    let nx = m.not(x);
                    (nx, m.strict_superset(&pairs))
                };
                let renamed = m.rename(base, &|v| Var(v.index() + 1));
                let exists_other = m.and_exists(relation, renamed, &primed);
                let not_other = m.not(exists_other);
                m.and(base, not_other)
            }
        }
    }

    /// **Algorithm 2**: checks `b, T ⊨ χ` by computing `B_T(χ)` and
    /// walking it along `b`.
    ///
    /// # Errors
    ///
    /// As for [`ModelChecker::formula_bdd`].
    ///
    /// # Panics
    ///
    /// Panics if `b` does not cover the tree's basic events.
    pub fn holds(&mut self, b: &StatusVector, phi: &Formula) -> Result<bool, BflError> {
        assert_eq!(b.len(), self.tree.num_basic_events(), "vector length");
        let f = self.formula_bdd(phi)?;
        let basic_of_position = &self.basic_of_position;
        Ok(self.tb.manager().eval(f, |v| {
            debug_assert_eq!(v.index() % 2, 0, "primed variable in query BDD");
            b.get(basic_of_position[(v.index() / 2) as usize])
        }))
    }

    /// **Algorithm 3**: the satisfaction set `⟦χ⟧` as explicit status
    /// vectors, in ascending order.
    ///
    /// # Errors
    ///
    /// As for [`ModelChecker::formula_bdd`].
    pub fn satisfying_vectors(&mut self, phi: &Formula) -> Result<Vec<StatusVector>, BflError> {
        let f = self.formula_bdd(phi)?;
        Ok(self.vectors_of_bdd(f, usize::MAX))
    }

    /// Up to `limit` satisfying vectors of `phi` — Algorithm 3 truncated
    /// after `limit` BDD paths, for cheap witness extraction on formulae
    /// whose full satisfaction set is astronomically large.
    ///
    /// # Errors
    ///
    /// As for [`ModelChecker::formula_bdd`].
    pub fn some_satisfying_vectors(
        &mut self,
        phi: &Formula,
        limit: usize,
    ) -> Result<Vec<StatusVector>, BflError> {
        let f = self.formula_bdd(phi)?;
        Ok(self.vectors_of_bdd(f, limit))
    }

    /// Up to `limit` satisfying vectors of an already-compiled diagram —
    /// the handle-level core of Algorithm 3, shared with the prepared
    /// query evaluator (which restricts compiled BDDs instead of
    /// recompiling formulae).
    pub(crate) fn vectors_of_bdd(&self, f: Bdd, limit: usize) -> Vec<StatusVector> {
        let universe = self.tb.unprimed_vars();
        let mut out: Vec<StatusVector> = self
            .tb
            .manager()
            .sat_vectors(f, &universe)
            .take(limit)
            .map(|assignment| self.tb.vector_from_positions(&self.tree, &assignment))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Names of the basic events in the support of an already-compiled
    /// diagram, in basic-index order — the handle-level core of `IBE`.
    pub(crate) fn support_basic_names(&self, f: Bdd) -> Vec<String> {
        let mut indices: Vec<usize> = self
            .tb
            .manager()
            .support(f)
            .into_iter()
            .map(|v| {
                debug_assert_eq!(v.index() % 2, 0, "primed variable in query BDD");
                self.basic_of_position[(v.index() / 2) as usize]
            })
            .collect();
        indices.sort_unstable();
        indices
            .into_iter()
            .map(|bi| self.tree.name(self.tree.basic_events()[bi]).to_string())
            .collect()
    }

    /// Number of satisfying vectors `|⟦χ⟧|` without enumerating them.
    ///
    /// # Errors
    ///
    /// As for [`ModelChecker::formula_bdd`].
    pub fn count_satisfying(&mut self, phi: &Formula) -> Result<u128, BflError> {
        let f = self.formula_bdd(phi)?;
        // Count over the unprimed universe only; the manager also hosts
        // the primed variables, which never occur in query BDDs.
        let universe = self.tb.unprimed_vars();
        Ok(self.tb.manager().sat_count_over(f, &universe))
    }

    /// Evaluates a layer-2 query `T ⊨ ψ`.
    ///
    /// # Errors
    ///
    /// As for [`ModelChecker::formula_bdd`].
    pub fn check_query(&mut self, psi: &Query) -> Result<bool, BflError> {
        match psi {
            Query::Exists(phi) => {
                let f = self.formula_bdd(phi)?;
                Ok(!f.is_false())
            }
            Query::Forall(phi) => {
                let f = self.formula_bdd(phi)?;
                Ok(f.is_true())
            }
            Query::Idp(a, b) => {
                let ia = self.influencing_basic_events(a)?;
                let ib = self.influencing_basic_events(b)?;
                Ok(ia.iter().all(|e| !ib.contains(e)))
            }
            Query::Sup(name) => {
                // SUP(e) ::= IDP(e, e_top).
                let top = self.tree.name(self.tree.top()).to_string();
                self.check_query(&Query::Idp(Formula::atom(name.clone()), Formula::atom(top)))
            }
            Query::Cause {
                formula, evidence, ..
            } => {
                // The verdict only needs the failing check and the exact
                // cause count, not the witnesses: enumerate none.
                let report = crate::causality::actual_causes(self, formula, evidence, 0)?;
                Ok(report.holds())
            }
            // Probabilistic judgements need annotations the bare checker
            // does not hold: evaluate them through
            // [`quant::check_query`](crate::quant::check_query) with an
            // explicit vector, or an
            // [`AnalysisSession`](crate::engine::AnalysisSession) built
            // with probabilities.
            Query::Prob { .. } | Query::Importance(_) => Err(BflError::MissingProbabilities {
                events: self
                    .tree
                    .basic_events()
                    .iter()
                    .map(|&e| self.tree.name(e).to_string())
                    .collect(),
            }),
        }
    }

    /// The influencing basic events `IBE(ϕ)`, via the support of the
    /// reduced BDD (exactly the semantic dependencies), as names in
    /// basic-index order.
    ///
    /// # Errors
    ///
    /// As for [`ModelChecker::formula_bdd`].
    pub fn influencing_basic_events(&mut self, phi: &Formula) -> Result<Vec<String>, BflError> {
        let f = self.formula_bdd(phi)?;
        Ok(self.support_basic_names(f))
    }

    /// Convenience: the minimal cut sets of element `e` as sorted name
    /// lists, through the logic (`⟦MCS(e)⟧`).
    ///
    /// # Errors
    ///
    /// [`BflError::UnknownElement`] if `e` is not in the tree.
    pub fn minimal_cut_sets(&mut self, e: &str) -> Result<Vec<Vec<String>>, BflError> {
        let vectors = self.satisfying_vectors(&Formula::atom(e).mcs())?;
        Ok(self.vectors_to_failed_sets(&vectors))
    }

    /// Convenience: the minimal path sets of element `e` as sorted name
    /// lists of the *operational* events (`⟦MPS(e)⟧`).
    ///
    /// # Errors
    ///
    /// [`BflError::UnknownElement`] if `e` is not in the tree.
    pub fn minimal_path_sets(&mut self, e: &str) -> Result<Vec<Vec<String>>, BflError> {
        let vectors = self.satisfying_vectors(&Formula::atom(e).mps())?;
        let mut out: Vec<Vec<String>> = vectors
            .iter()
            .map(|v| {
                let mut names: Vec<String> = (0..v.len())
                    .filter(|&i| !v.get(i))
                    .map(|i| self.tree.name(self.tree.basic_events()[i]).to_string())
                    .collect();
                names.sort();
                names
            })
            .collect();
        out.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        Ok(out)
    }

    /// Renders vectors as sorted lists of failed-event names.
    pub fn vectors_to_failed_sets(&self, vectors: &[StatusVector]) -> Vec<Vec<String>> {
        let mut out: Vec<Vec<String>> = vectors
            .iter()
            .map(|v| {
                let mut names: Vec<String> = v
                    .failed_names(&self.tree)
                    .into_iter()
                    .map(str::to_string)
                    .collect();
                names.sort();
                names
            })
            .collect();
        out.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        out
    }

    /// Exposes the compiled [`TreeBdd`] (used by the counterexample
    /// generator and the benches).
    pub(crate) fn tree_bdd_mut(&mut self) -> &mut TreeBdd {
        &mut self.tb
    }

    /// The unprimed BDD variable encoding basic index `bi` — used by the
    /// prepared-query evaluator to turn scenario bindings into
    /// restrictions.
    pub(crate) fn var_of_basic(&self, bi: usize) -> Var {
        self.tb.var_of_basic(bi)
    }

    /// Position-to-basic-index mapping shared with the walk of Algorithm 4.
    pub(crate) fn basic_of_position(&self) -> &[usize] {
        &self.basic_of_position
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfl_fault_tree::corpus;

    #[test]
    fn example_2_walks_to_true() {
        // Example 2: T = OR(e1,e2), χ = MCS(Top), b = (0,1) ⊨ χ.
        let tree = corpus::or2();
        let mut mc = ModelChecker::new(&tree);
        let phi = Formula::atom("Top").mcs();
        assert!(mc
            .holds(&StatusVector::from_bits([false, true]), &phi)
            .unwrap());
        assert!(!mc
            .holds(&StatusVector::from_bits([true, true]), &phi)
            .unwrap());
        assert!(!mc
            .holds(&StatusVector::from_bits([false, false]), &phi)
            .unwrap());
    }

    #[test]
    fn example_3_allsat() {
        // Example 3: ⟦MCS(Top)⟧ = {(0,1), (1,0)}.
        let tree = corpus::or2();
        let mut mc = ModelChecker::new(&tree);
        let sats = mc.satisfying_vectors(&Formula::atom("Top").mcs()).unwrap();
        assert_eq!(
            sats,
            vec![
                StatusVector::from_bits([true, false]),
                StatusVector::from_bits([false, true]),
            ]
        );
        assert_eq!(mc.count_satisfying(&Formula::atom("Top").mcs()).unwrap(), 2);
    }

    #[test]
    fn checker_matches_reference_on_fig1() {
        let tree = corpus::fig1();
        let mut mc = ModelChecker::new(&tree);
        let formulas = [
            Formula::atom("CP/R"),
            Formula::atom("CP").and(Formula::atom("CR")),
            Formula::atom("CP/R").mcs(),
            Formula::atom("CP/R").mps(),
            Formula::atom("CP").implies(Formula::atom("CP/R")),
            Formula::atom("CP/R").with_evidence("IW", true),
            Formula::atom("CP/R").mcs().with_evidence("H2", false),
        ];
        for phi in &formulas {
            for b in StatusVector::enumerate_all(4) {
                let fast = mc.holds(&b, phi).unwrap();
                let slow = crate::semantics::eval(&tree, &b, phi).unwrap();
                assert_eq!(fast, slow, "{phi} at {b}");
            }
        }
    }

    #[test]
    fn quantifiers_via_terminals() {
        let tree = corpus::fig1();
        let mut mc = ModelChecker::new(&tree);
        assert!(mc
            .check_query(&Query::forall(
                Formula::atom("CP").implies(Formula::atom("CP/R"))
            ))
            .unwrap());
        assert!(mc
            .check_query(&Query::exists(Formula::atom("CP").and(Formula::atom("CR"))))
            .unwrap());
        assert!(!mc
            .check_query(&Query::forall(Formula::atom("CP/R")))
            .unwrap());
        assert!(!mc
            .check_query(&Query::exists(
                Formula::atom("CP").and(Formula::atom("CP").not())
            ))
            .unwrap());
    }

    #[test]
    fn ibe_matches_reference() {
        let tree = corpus::covid();
        let mut mc = ModelChecker::new(&tree);
        for name in ["CIO", "CIS", "MoT", "SH", "IWoS"] {
            let fast = mc.influencing_basic_events(&Formula::atom(name)).unwrap();
            let slow =
                crate::semantics::influencing_basic_events(&tree, &Formula::atom(name)).unwrap();
            let slow_sorted = {
                // Reference returns basic-index order already; compare as sets.
                let mut s = slow.clone();
                s.sort();
                s
            };
            let mut fast_sorted = fast.clone();
            fast_sorted.sort();
            assert_eq!(fast_sorted, slow_sorted, "{name}");
        }
    }

    #[test]
    fn idp_cio_cis_share_h1() {
        let tree = corpus::covid();
        let mut mc = ModelChecker::new(&tree);
        // Property 8 of the case study.
        assert!(!mc
            .check_query(&Query::idp(Formula::atom("CIO"), Formula::atom("CIS")))
            .unwrap());
        let ia = mc.influencing_basic_events(&Formula::atom("CIO")).unwrap();
        let ib = mc.influencing_basic_events(&Formula::atom("CIS")).unwrap();
        let shared: Vec<_> = ia.iter().filter(|e| ib.contains(e)).collect();
        assert_eq!(shared, vec!["H1"]);
    }

    #[test]
    fn sup_pp_is_false() {
        let tree = corpus::covid();
        let mut mc = ModelChecker::new(&tree);
        // Property 9: PP is not superfluous.
        assert!(!mc.check_query(&Query::sup("PP")).unwrap());
    }

    #[test]
    fn mcs_mps_match_analysis_engines() {
        let tree = corpus::covid();
        let mut mc = ModelChecker::new(&tree);
        let via_logic = mc.minimal_cut_sets("IWoS").unwrap();
        let via_analysis = bfl_fault_tree::analysis::minimal_cut_sets_names(&tree, tree.top());
        assert_eq!(via_logic, via_analysis);
        let mps_logic = mc.minimal_path_sets("IWoS").unwrap();
        let mps_analysis = bfl_fault_tree::analysis::minimal_path_sets_names(&tree, tree.top());
        assert_eq!(mps_logic, mps_analysis);
    }

    #[test]
    fn support_scope_relaxes_minimality() {
        // MCS(e3) on the Table-I tree: e3 = OR(e4, e5) does not depend on
        // e2. Under the global scope, e2 is forced operational; under the
        // support scope it is free.
        let tree = corpus::table1_tree();
        let mut mc = ModelChecker::new(&tree);
        let phi = Formula::atom("e3").mcs();
        assert_eq!(mc.count_satisfying(&phi).unwrap(), 2);
        mc.set_minimality_scope(MinimalityScope::FormulaSupport);
        assert_eq!(mc.count_satisfying(&phi).unwrap(), 4);
        // Pattern 3 of Table I: satisfiable only under the support scope.
        let pat3 = Formula::atom("e1").mcs().and(Formula::atom("e3").mcs());
        assert!(mc.check_query(&Query::exists(pat3.clone())).unwrap());
        mc.set_minimality_scope(MinimalityScope::GlobalUniverse);
        assert!(!mc.check_query(&Query::exists(pat3)).unwrap());
    }

    #[test]
    fn evidence_on_gate_rejected() {
        let tree = corpus::fig1();
        let mut mc = ModelChecker::new(&tree);
        let phi = Formula::atom("IW").with_evidence("CP", true);
        assert_eq!(
            mc.formula_bdd(&phi).unwrap_err(),
            BflError::EvidenceOnGate("CP".into())
        );
    }

    #[test]
    fn translation_cache_reuses_results() {
        let tree = corpus::covid();
        let mut mc = ModelChecker::new(&tree);
        let phi = Formula::atom("IWoS").mcs();
        let f1 = mc.formula_bdd(&phi).unwrap();
        let size_before = mc.manager().arena_size();
        let f2 = mc.formula_bdd(&phi).unwrap();
        assert_eq!(f1, f2);
        assert_eq!(mc.manager().arena_size(), size_before);
    }
}
