//! Counterexample generation — Algorithm 4 and Definition 7 of Section VI.
//!
//! Given `b, T ⊭ χ`, a *counterexample* is a vector `b′` with `b′, T ⊨ χ`
//! such that every bit where `b′` differs from `b` is necessary: flipping
//! it back (keeping the rest of `b′`) falsifies `χ` again.
//!
//! Algorithm 4 computes such a `b′` by walking the BDD of `χ` along `b`
//! and revising a decision whenever it leads into the `0` terminal. The
//! revised decisions are exactly the changed bits, and since the original
//! branch pointed *directly* at the `0` terminal, each changed bit is
//! individually necessary — giving Definition 7 by construction.

use bfl_fault_tree::StatusVector;

use crate::ast::Formula;
use crate::checker::ModelChecker;
use crate::error::BflError;

/// Result of a counterexample query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Counterexample {
    /// `B_T(χ)` is unsatisfiable — no vector satisfies the formula, so no
    /// counterexample exists (Algorithm 4's early return when
    /// `1 ∉ W_t`).
    Unsatisfiable,
    /// The given vector already satisfies `χ`; Algorithm 4 presupposes
    /// `b, T ⊭ χ`.
    AlreadySatisfies,
    /// A revised vector `b′` with `b′, T ⊨ χ`, minimal per Definition 7.
    Found(StatusVector),
}

impl Counterexample {
    /// The revised vector, if one was produced.
    pub fn vector(&self) -> Option<&StatusVector> {
        match self {
            Counterexample::Found(v) => Some(v),
            _ => None,
        }
    }
}

/// **Algorithm 4**: computes a counterexample for `b, T ⊭ χ`.
///
/// # Errors
///
/// As for [`ModelChecker::formula_bdd`].
///
/// # Panics
///
/// Panics if `b` does not cover the tree's basic events.
///
/// # Example
///
/// ```
/// use bfl_core::{counterexample, Counterexample, Formula, ModelChecker};
/// use bfl_fault_tree::{corpus, StatusVector};
///
/// # fn main() -> Result<(), bfl_core::BflError> {
/// let tree = corpus::table1_tree();
/// let mut mc = ModelChecker::new(&tree);
/// // Pattern 1 of Table I: b = (0,1,0) is not an MCS for e1 …
/// let phi = Formula::atom("e1").mcs();
/// let b = StatusVector::from_bits([false, true, false]);
/// // … and the revised vector (1,1,0) is.
/// let cex = counterexample(&mut mc, &b, &phi)?;
/// assert_eq!(
///     cex,
///     Counterexample::Found(StatusVector::from_bits([true, true, false]))
/// );
/// # Ok(())
/// # }
/// ```
pub fn counterexample(
    mc: &mut ModelChecker,
    b: &StatusVector,
    phi: &Formula,
) -> Result<Counterexample, BflError> {
    assert_eq!(
        b.len(),
        mc.tree().num_basic_events(),
        "vector length mismatch"
    );
    let f = mc.formula_bdd(phi)?;
    if f.is_false() {
        return Ok(Counterexample::Unsatisfiable);
    }
    if mc.holds(b, phi)? {
        return Ok(Counterexample::AlreadySatisfies);
    }
    let mut revised = b.clone();
    let positions = mc.basic_of_position().to_vec();
    let tb = mc.tree_bdd_mut();
    let manager = tb.manager();
    let mut cur = f;
    while !cur.is_terminal() {
        let node = manager.node(cur);
        debug_assert_eq!(node.var.index() % 2, 0, "primed variable in query BDD");
        let bi = positions[(node.var.index() / 2) as usize];
        let bit = b.get(bi);
        let preferred = if bit { node.high } else { node.low };
        if preferred.is_false() {
            // Revise the decision: take the other branch and record the
            // flipped bit (the flipped branch cannot also be ⊥ in a
            // reduced diagram).
            revised.set(bi, !bit);
            cur = if bit { node.low } else { node.high };
        } else {
            revised.set(bi, bit);
            cur = preferred;
        }
    }
    debug_assert!(cur.is_true(), "walk cannot end in the 0 terminal");
    Ok(Counterexample::Found(revised))
}

/// Checks Definition 7: `b′ ⊨ χ`, and for every differing bit, flipping it
/// back falsifies `χ`.
///
/// # Errors
///
/// As for [`ModelChecker::formula_bdd`].
pub fn is_valid_counterexample(
    mc: &mut ModelChecker,
    b: &StatusVector,
    revised: &StatusVector,
    phi: &Formula,
) -> Result<bool, BflError> {
    if !mc.holds(revised, phi)? {
        return Ok(false);
    }
    for i in 0..b.len() {
        if revised.get(i) != b.get(i) {
            let reverted = revised.with(i, b.get(i));
            if mc.holds(&reverted, phi)? {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Enumerates **all** Definition-7-valid counterexamples for `b, T ⊭ χ`:
/// every satisfying vector whose differing bits are each individually
/// necessary. Algorithm 4 returns one member of this set; patterns 1–4 of
/// Table I illustrate that several can exist.
///
/// Exponential in the satisfaction set; intended for analysis of small
/// formulas and for tests.
///
/// # Errors
///
/// As for [`ModelChecker::formula_bdd`].
pub fn all_counterexamples(
    mc: &mut ModelChecker,
    b: &StatusVector,
    phi: &Formula,
) -> Result<Vec<StatusVector>, BflError> {
    if mc.holds(b, phi)? {
        return Ok(Vec::new());
    }
    let sats = mc.satisfying_vectors(phi)?;
    let mut out = Vec::new();
    for v in sats {
        if is_valid_counterexample(mc, b, &v, phi)? {
            out.push(v);
        }
    }
    Ok(out)
}

/// A bounded enumeration of Definition-7-valid counterexamples, with the
/// exact total so truncation is *reported*, never silent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterexampleSet {
    /// Up to the requested limit of valid counterexamples, in
    /// satisfaction-set order.
    pub witnesses: Vec<StatusVector>,
    /// The exact number of valid counterexamples that exist.
    pub total: usize,
    /// Whether `witnesses` was capped below `total`.
    pub truncated: bool,
}

/// Bounded twin of [`all_counterexamples`]: up to `limit`
/// Definition-7-valid counterexamples for `b, T ⊭ χ`, plus the exact
/// total — the caller can always tell a complete enumeration from a
/// truncated one. [`AnalysisSession::all_counterexamples`] calls this
/// with the session's witness limit.
///
/// [`AnalysisSession::all_counterexamples`]:
///     crate::engine::AnalysisSession::all_counterexamples
///
/// # Errors
///
/// As for [`ModelChecker::formula_bdd`].
pub fn some_counterexamples(
    mc: &mut ModelChecker,
    b: &StatusVector,
    phi: &Formula,
    limit: usize,
) -> Result<CounterexampleSet, BflError> {
    let all = all_counterexamples(mc, b, phi)?;
    let total = all.len();
    let mut witnesses = all;
    witnesses.truncate(limit);
    Ok(CounterexampleSet {
        truncated: total > witnesses.len(),
        total,
        witnesses,
    })
}

/// Exhaustive baseline: all satisfying vectors at minimal Hamming distance
/// from `b`. Exponential; used by tests and the `ablation_counterexample`
/// bench to contextualise Algorithm 4 (which minimises per-bit necessity,
/// not distance).
///
/// # Errors
///
/// As for [`ModelChecker::formula_bdd`].
pub fn nearest_witnesses(
    mc: &mut ModelChecker,
    b: &StatusVector,
    phi: &Formula,
) -> Result<Vec<StatusVector>, BflError> {
    let sats = mc.satisfying_vectors(phi)?;
    let distance =
        |x: &StatusVector| -> usize { (0..b.len()).filter(|&i| x.get(i) != b.get(i)).count() };
    let best = sats.iter().map(distance).min();
    Ok(match best {
        None => Vec::new(),
        Some(d) => sats.into_iter().filter(|x| distance(x) == d).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfl_fault_tree::corpus;

    /// Runs Algorithm 4 and asserts Definition 7 validity.
    fn check(tree: &bfl_fault_tree::FaultTree, bits: &[bool], phi: &Formula) -> StatusVector {
        let mut mc = ModelChecker::new(tree);
        let b = StatusVector::from_bits(bits.iter().copied());
        let cex = counterexample(&mut mc, &b, phi).unwrap();
        let v = cex.vector().expect("counterexample found").clone();
        assert!(is_valid_counterexample(&mut mc, &b, &v, phi).unwrap());
        v
    }

    #[test]
    fn table1_pattern1_first_row() {
        // MCS(e1), b = (0,1,0) → b′ = (1,1,0).
        let tree = corpus::table1_tree();
        let v = check(&tree, &[false, true, false], &Formula::atom("e1").mcs());
        assert_eq!(v, StatusVector::from_bits([true, true, false]));
    }

    #[test]
    fn table1_pattern1_second_row_is_valid() {
        // MCS(e1), b = (1,1,1): the paper shows (1,0,1); our walk revises
        // the later variable and produces (1,1,0) — also valid per Def. 7
        // (counterexamples are not unique).
        let tree = corpus::table1_tree();
        let v = check(&tree, &[true, true, true], &Formula::atom("e1").mcs());
        assert!(
            v == StatusVector::from_bits([true, true, false])
                || v == StatusVector::from_bits([true, false, true])
        );
    }

    #[test]
    fn table1_pattern2_rows() {
        let tree = corpus::table1_tree();
        // MPS(e1), b = (1,0,1) → b′ = (1,0,0).
        let v = check(&tree, &[true, false, true], &Formula::atom("e1").mps());
        assert_eq!(v, StatusVector::from_bits([true, false, false]));
        // MPS(e1), b = (0,0,0) → b′ = (0,1,1).
        let v2 = check(&tree, &[false, false, false], &Formula::atom("e1").mps());
        assert_eq!(v2, StatusVector::from_bits([false, true, true]));
    }

    #[test]
    fn table1_pattern4() {
        // MPS(e1) ∧ MPS(e3), b = (1,0,1) → b′ = (1,0,0).
        let tree = corpus::table1_tree();
        let phi = Formula::atom("e1").mps().and(Formula::atom("e3").mps());
        let v = check(&tree, &[true, false, true], &phi);
        assert_eq!(v, StatusVector::from_bits([true, false, false]));
    }

    #[test]
    fn unsatisfiable_formula() {
        let tree = corpus::or2();
        let mut mc = ModelChecker::new(&tree);
        let phi = Formula::atom("e1").and(Formula::atom("e1").not());
        let b = StatusVector::from_bits([false, false]);
        assert_eq!(
            counterexample(&mut mc, &b, &phi).unwrap(),
            Counterexample::Unsatisfiable
        );
    }

    #[test]
    fn already_satisfying_vector() {
        let tree = corpus::or2();
        let mut mc = ModelChecker::new(&tree);
        let phi = Formula::atom("Top");
        let b = StatusVector::from_bits([true, false]);
        assert_eq!(
            counterexample(&mut mc, &b, &phi).unwrap(),
            Counterexample::AlreadySatisfies
        );
    }

    #[test]
    fn sec6_example_iw_h3_it() {
        // Section VI overview: {IW, H3, IT} is not an MCS for CP/R; a
        // suitable counterexample is the MCS {IW, H3} contained in it.
        let tree = corpus::fig1();
        let mut mc = ModelChecker::new(&tree);
        let b = StatusVector::from_failed_names(&tree, &["IW", "H3", "IT"]);
        let phi = Formula::atom("CP/R").mcs();
        let cex = counterexample(&mut mc, &b, &phi).unwrap();
        let v = cex.vector().unwrap().clone();
        assert!(is_valid_counterexample(&mut mc, &b, &v, &phi).unwrap());
        let mut names = v.failed_names(&tree);
        names.sort();
        assert_eq!(names, vec!["H3", "IW"]);
    }

    #[test]
    fn all_counterexamples_for_table1_row2() {
        // b = (1,1,1) against MCS(e1): both MCS vectors are valid
        // counterexamples — the paper's (1,0,1) and our walk's (1,1,0).
        let tree = corpus::table1_tree();
        let mut mc = ModelChecker::new(&tree);
        let phi = Formula::atom("e1").mcs();
        let b = StatusVector::from_bits([true, true, true]);
        let all = all_counterexamples(&mut mc, &b, &phi).unwrap();
        assert_eq!(
            all,
            vec![
                StatusVector::from_bits([true, true, false]),
                StatusVector::from_bits([true, false, true]),
            ]
        );
        // Algorithm 4's answer is a member of the set.
        let ours = counterexample(&mut mc, &b, &phi).unwrap();
        assert!(all.contains(ours.vector().unwrap()));
    }

    #[test]
    fn all_counterexamples_empty_when_vector_satisfies() {
        let tree = corpus::or2();
        let mut mc = ModelChecker::new(&tree);
        let b = StatusVector::from_bits([true, false]);
        let all = all_counterexamples(&mut mc, &b, &Formula::atom("Top")).unwrap();
        assert!(all.is_empty());
    }

    #[test]
    fn nearest_witnesses_on_or_gate() {
        let tree = corpus::or2();
        let mut mc = ModelChecker::new(&tree);
        let phi = Formula::atom("Top").mcs();
        let b = StatusVector::from_bits([true, true]);
        let nearest = nearest_witnesses(&mut mc, &b, &phi).unwrap();
        // Both MCS vectors are at Hamming distance 1.
        assert_eq!(nearest.len(), 2);
    }

    #[test]
    fn counterexamples_are_def7_valid_for_many_vectors() {
        let tree = corpus::covid();
        let mut mc = ModelChecker::new(&tree);
        let phi = Formula::atom("IWoS").mcs();
        for seed in 0..64u64 {
            let bits: Vec<bool> = (0..tree.num_basic_events())
                .map(|i| (seed >> (i % 6)) & 1 == 1)
                .collect();
            let b = StatusVector::from_bits(bits);
            match counterexample(&mut mc, &b, &phi).unwrap() {
                Counterexample::Found(v) => {
                    assert!(
                        is_valid_counterexample(&mut mc, &b, &v, &phi).unwrap(),
                        "{b}"
                    );
                }
                Counterexample::AlreadySatisfies => {}
                Counterexample::Unsatisfiable => panic!("MCS(IWoS) is satisfiable"),
            }
        }
    }
}
