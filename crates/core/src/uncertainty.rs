//! Uncertainty engine: Monte Carlo estimation and interval propagation.
//!
//! The quantitative layer ([`quant`](crate::quant)) computes *exact*
//! probabilities by a Shannon walk over an exactly-compiled BDD. Both of
//! its assumptions fail in practice: failure-rate handbooks give
//! **interval** bounds rather than point probabilities, and industrial
//! trees exist whose BDDs are too large to compile at all. This module
//! supplies the two complementary relaxations behind one knob:
//!
//! * [`Method::Interval`] — conservative `[lo, hi]` propagation of
//!   per-event [`ProbInterval`] annotations through the same Shannon
//!   walk (see [`bfl_bdd::Manager::probability_interval_with_memo`]);
//!   degenerate intervals `[p, p]` reproduce the exact answer bit for
//!   bit.
//! * [`Method::Mc`] — a deterministic, seedable Monte Carlo
//!   [`Estimate`] of `P(ϕ)` / `P(ϕ | ψ)` by direct formula evaluation
//!   on sampled status vectors, **without compiling a BDD**. Work is
//!   fanned across `std::thread::scope` workers in fixed-size chunks
//!   with per-chunk seed streams, so the result is byte-identical at
//!   any worker count.
//!
//! Every evaluation of either method flows through the session /
//! prepared-plan layers behind [`Method`]; the CLI (`--method`) and the
//! server (`method` field of the `prob` op) expose the same knob.

// New quantitative code must not panic on user input: structured errors
// only (same policy as the fallible quant API).
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};

use bfl_fault_tree::rng::Prng;
use bfl_fault_tree::{ElementId, FaultTree, StatusVector};

pub use bfl_fault_tree::prob::ProbInterval;

use crate::ast::{CmpOp, Formula};
use crate::error::BflError;
use crate::quant::prob_compare;

/// Default Monte Carlo sample count.
pub const DEFAULT_MC_SAMPLES: u64 = 100_000;
/// Default Monte Carlo seed.
pub const DEFAULT_MC_SEED: u64 = 42;
/// Default Monte Carlo confidence level.
pub const DEFAULT_MC_CONFIDENCE: f64 = 0.99;

/// Samples per work chunk. Chunks — not workers — own seed streams, so
/// estimates are independent of the worker count.
const MC_CHUNK: u64 = 8192;

/// How a probability query is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Method {
    /// The exact Shannon walk over point probabilities (the PR-4
    /// behaviour; rejects models carrying interval annotations).
    #[default]
    Exact,
    /// Conservative interval propagation: point annotations are widened
    /// to degenerate intervals and the result brackets every point
    /// choice inside the per-event bounds.
    Interval,
    /// Deterministic Monte Carlo estimation on sampled status vectors
    /// (no BDD required). Rejects models carrying interval annotations
    /// — sampling needs a point distribution.
    Mc {
        /// Number of status vectors to draw (≥ 1).
        samples: u64,
        /// Base seed; equal `(seed, samples)` give byte-identical
        /// estimates at any thread count.
        seed: u64,
        /// Confidence level of the reported Wilson interval, in
        /// `(0, 1)`.
        confidence: f64,
    },
}

impl Method {
    /// Monte Carlo with the default `samples`/`seed`/`confidence`.
    pub const fn mc() -> Self {
        Method::Mc {
            samples: DEFAULT_MC_SAMPLES,
            seed: DEFAULT_MC_SEED,
            confidence: DEFAULT_MC_CONFIDENCE,
        }
    }

    /// The method's wire name: `exact`, `interval` or `mc`.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Exact => "exact",
            Method::Interval => "interval",
            Method::Mc { .. } => "mc",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Method {
    type Err = String;

    /// Parses a wire name (`exact`, `interval`, `mc`); `mc` gets the
    /// default sampler parameters.
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "exact" => Ok(Method::Exact),
            "interval" => Ok(Method::Interval),
            "mc" => Ok(Method::mc()),
            other => Err(format!(
                "unknown method `{other}` (expected `exact`, `interval` or `mc`)"
            )),
        }
    }
}

/// A Monte Carlo probability estimate with its confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The point estimate `hits / trials`.
    pub point: f64,
    /// Lower end of the Wilson score interval.
    pub ci_lo: f64,
    /// Upper end of the Wilson score interval.
    pub ci_hi: f64,
    /// Confidence level of `[ci_lo, ci_hi]`.
    pub confidence: f64,
    /// Total status vectors drawn.
    pub samples: u64,
    /// Samples satisfying the target formula (and the condition, when
    /// conditional).
    pub hits: u64,
    /// Denominator of the estimate: `samples` for `P(ϕ)`, the number of
    /// condition-satisfying samples for `P(ϕ | ψ)`.
    pub trials: u64,
}

/// The value of a probability query under some [`Method`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProbValue {
    /// An exact point probability.
    Exact(f64),
    /// Conservative bounds from interval propagation.
    Interval(ProbInterval),
    /// A Monte Carlo estimate.
    Estimate(Estimate),
}

impl ProbValue {
    /// A single representative number: the exact value, the interval
    /// midpoint, or the point estimate.
    pub fn midpoint(&self) -> f64 {
        match self {
            ProbValue::Exact(p) => *p,
            ProbValue::Interval(iv) => 0.5 * (iv.lo + iv.hi),
            ProbValue::Estimate(e) => e.point,
        }
    }

    /// Judges a threshold `P ▷◁ bound` against this value.
    ///
    /// * `Exact` and `Estimate` judge their point value (the estimate's
    ///   sampling error is reported, not folded into the verdict).
    /// * `Interval` returns `Some(true)` when **every** probability in
    ///   the interval satisfies the bound, `Some(false)` when none
    ///   does, and `None` when the interval straddles the bound — the
    ///   annotations are too coarse to decide.
    pub fn judge(&self, op: CmpOp, bound: f64) -> Option<bool> {
        match self {
            ProbValue::Exact(p) => Some(prob_compare(op, *p, bound)),
            ProbValue::Estimate(e) => Some(prob_compare(op, e.point, bound)),
            ProbValue::Interval(iv) => {
                let at_lo = prob_compare(op, iv.lo, bound);
                let at_hi = prob_compare(op, iv.hi, bound);
                match op {
                    // Monotone predicates: endpoint agreement decides.
                    CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                        (at_lo == at_hi).then_some(at_lo)
                    }
                    CmpOp::Eq => {
                        let straddles = iv.lo <= bound && bound <= iv.hi;
                        if at_lo && at_hi {
                            Some(true)
                        } else if !at_lo && !at_hi && !straddles {
                            Some(false)
                        } else {
                            None
                        }
                    }
                }
            }
        }
    }
}

/// A formula compiled for per-sample evaluation: names resolved to ids,
/// minimality operators rejected up front.
///
/// `MCS`/`MPS` are *vector-set* predicates — deciding them on one
/// sampled vector needs the satisfaction set, exactly the computation
/// Monte Carlo exists to avoid — so they are not estimable and surface
/// as [`BflError::UnsupportedMethod`] at compile time.
#[derive(Debug, Clone)]
pub(crate) enum CompiledFormula {
    Const(bool),
    Atom(ElementId),
    Not(Box<CompiledFormula>),
    And(Box<CompiledFormula>, Box<CompiledFormula>),
    Or(Box<CompiledFormula>, Box<CompiledFormula>),
    Implies(Box<CompiledFormula>, Box<CompiledFormula>),
    Iff(Box<CompiledFormula>, Box<CompiledFormula>),
    Neq(Box<CompiledFormula>, Box<CompiledFormula>),
    Evidence {
        inner: Box<CompiledFormula>,
        basic: usize,
        value: bool,
    },
    Vot {
        op: CmpOp,
        k: u32,
        operands: Vec<CompiledFormula>,
    },
}

impl CompiledFormula {
    /// Resolves `phi` against `tree`.
    ///
    /// # Errors
    ///
    /// [`BflError::UnsupportedMethod`] for `MCS`/`MPS`,
    /// [`BflError::UnknownElement`] / [`BflError::EvidenceOnGate`] for
    /// bad names.
    pub(crate) fn compile(tree: &FaultTree, phi: &Formula) -> Result<Self, BflError> {
        let c = |f: &Formula| CompiledFormula::compile(tree, f).map(Box::new);
        Ok(match phi {
            Formula::Const(b) => CompiledFormula::Const(*b),
            Formula::Atom(name) => CompiledFormula::Atom(
                tree.element(name)
                    .ok_or_else(|| BflError::UnknownElement(name.clone()))?,
            ),
            Formula::Not(f) => CompiledFormula::Not(c(f)?),
            Formula::And(a, b) => CompiledFormula::And(c(a)?, c(b)?),
            Formula::Or(a, b) => CompiledFormula::Or(c(a)?, c(b)?),
            Formula::Implies(a, b) => CompiledFormula::Implies(c(a)?, c(b)?),
            Formula::Iff(a, b) => CompiledFormula::Iff(c(a)?, c(b)?),
            Formula::Neq(a, b) => CompiledFormula::Neq(c(a)?, c(b)?),
            Formula::Evidence {
                inner,
                element,
                value,
            } => {
                let e = tree
                    .element(element)
                    .ok_or_else(|| BflError::UnknownElement(element.clone()))?;
                let basic = tree
                    .basic_index(e)
                    .ok_or_else(|| BflError::EvidenceOnGate(element.clone()))?;
                CompiledFormula::Evidence {
                    inner: c(inner)?,
                    basic,
                    value: *value,
                }
            }
            Formula::Mcs(_) | Formula::Mps(_) => {
                return Err(BflError::UnsupportedMethod {
                    method: "mc".to_string(),
                    context: format!(
                        "`{phi}` contains a minimality operator; MCS/MPS membership \
                         is a property of the whole satisfaction set, not of one \
                         sampled vector"
                    ),
                })
            }
            Formula::Vot { op, k, operands } => CompiledFormula::Vot {
                op: *op,
                k: *k,
                operands: operands
                    .iter()
                    .map(|f| CompiledFormula::compile(tree, f))
                    .collect::<Result<_, _>>()?,
            },
        })
    }

    /// Evaluates against one sampled vector. `statuses` is
    /// `tree.evaluate_all(b)` — shared across the whole formula so atoms
    /// are O(1); evidence re-evaluates on the pinned vector.
    fn eval(&self, tree: &FaultTree, b: &StatusVector, statuses: &[bool]) -> bool {
        match self {
            CompiledFormula::Const(v) => *v,
            CompiledFormula::Atom(e) => statuses[e.index()],
            CompiledFormula::Not(f) => !f.eval(tree, b, statuses),
            CompiledFormula::And(x, y) => x.eval(tree, b, statuses) && y.eval(tree, b, statuses),
            CompiledFormula::Or(x, y) => x.eval(tree, b, statuses) || y.eval(tree, b, statuses),
            CompiledFormula::Implies(x, y) => {
                !x.eval(tree, b, statuses) || y.eval(tree, b, statuses)
            }
            CompiledFormula::Iff(x, y) => x.eval(tree, b, statuses) == y.eval(tree, b, statuses),
            CompiledFormula::Neq(x, y) => x.eval(tree, b, statuses) != y.eval(tree, b, statuses),
            CompiledFormula::Evidence {
                inner,
                basic,
                value,
            } => {
                let pinned = b.with(*basic, *value);
                let pinned_statuses = tree.evaluate_all(&pinned);
                inner.eval(tree, &pinned, &pinned_statuses)
            }
            CompiledFormula::Vot { op, k, operands } => {
                let count = operands
                    .iter()
                    .filter(|f| f.eval(tree, b, statuses))
                    .count() as u32;
                op.compare(count, *k)
            }
        }
    }
}

/// Decorrelates per-chunk seed streams (a SplitMix64-style mix of the
/// base seed and the chunk index).
fn chunk_seed(seed: u64, chunk: u64) -> u64 {
    let mut z = seed
        .wrapping_add(chunk.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Estimates `P(ϕ)` (or `P(ϕ | ψ)` when `given` is set) by sampling
/// `samples` status vectors from the product distribution `probs`,
/// optionally pinning basic events to fixed values (`pins` — scenario
/// evidence), and evaluating the formulae directly on each sample. No
/// BDD is compiled.
///
/// Returns `None` when the estimate is undefined: a conditional query
/// whose condition no sample satisfied.
///
/// Determinism: the sample space is split into fixed-size chunks, each
/// with its own seed stream derived from `seed`; `threads` workers pull
/// chunks from a shared counter and integer hit counts are summed, so
/// equal `(seed, samples)` give byte-identical estimates at any thread
/// count.
///
/// # Errors
///
/// [`BflError::UnsupportedMethod`] for minimality operators or a zero
/// `samples`/out-of-range `confidence`;
/// [`BflError::InvalidProbability`] for a malformed `probs` vector;
/// [`BflError::UnknownElement`] / [`BflError::EvidenceOnGate`] for bad
/// names; [`BflError::Internal`] if a worker dies.
#[allow(clippy::too_many_arguments)]
pub fn estimate_probability(
    tree: &FaultTree,
    probs: &[f64],
    phi: &Formula,
    given: Option<&Formula>,
    pins: &[(usize, bool)],
    samples: u64,
    seed: u64,
    confidence: f64,
    threads: usize,
) -> Result<Option<Estimate>, BflError> {
    if samples == 0 {
        return Err(BflError::UnsupportedMethod {
            method: "mc".to_string(),
            context: "samples must be ≥ 1".to_string(),
        });
    }
    if !(confidence.is_finite() && 0.0 < confidence && confidence < 1.0) {
        return Err(BflError::UnsupportedMethod {
            method: "mc".to_string(),
            context: format!("confidence {confidence} outside (0, 1)"),
        });
    }
    bfl_fault_tree::prob::validate_probabilities(tree, probs)
        .map_err(|reason| BflError::InvalidProbability { reason })?;
    for &(bi, _) in pins {
        if bi >= tree.num_basic_events() {
            return Err(BflError::Internal {
                context: format!("sampler pin index {bi} out of range"),
            });
        }
    }
    let phi_c = CompiledFormula::compile(tree, phi)?;
    let given_c = match given {
        Some(g) => Some(CompiledFormula::compile(tree, g)?),
        None => None,
    };
    let n = tree.num_basic_events();
    let chunk_count = samples.div_ceil(MC_CHUNK);
    let workers = threads
        .max(1)
        .min(usize::try_from(chunk_count).unwrap_or(usize::MAX));
    let next = AtomicU64::new(0);
    let (hits, trials) = std::thread::scope(|s| -> Result<(u64, u64), BflError> {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut hits = 0u64;
                    let mut trials = 0u64;
                    let mut b = StatusVector::all_operational(n);
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= chunk_count {
                            break;
                        }
                        let mut rng = Prng::seed_from_u64(chunk_seed(seed, c));
                        let in_chunk = MC_CHUNK.min(samples - c * MC_CHUNK);
                        for _ in 0..in_chunk {
                            for (i, &p) in probs.iter().enumerate() {
                                b.set(i, rng.gen_bool(p));
                            }
                            for &(bi, v) in pins {
                                b.set(bi, v);
                            }
                            let statuses = tree.evaluate_all(&b);
                            let in_condition = match &given_c {
                                Some(g) => g.eval(tree, &b, &statuses),
                                None => true,
                            };
                            if in_condition {
                                trials += 1;
                                if phi_c.eval(tree, &b, &statuses) {
                                    hits += 1;
                                }
                            }
                        }
                    }
                    (hits, trials)
                })
            })
            .collect();
        let mut total = (0u64, 0u64);
        for h in handles {
            let (hits, trials) = h.join().map_err(|_| BflError::Internal {
                context: "monte carlo worker panicked".to_string(),
            })?;
            total.0 += hits;
            total.1 += trials;
        }
        Ok(total)
    })?;
    if trials == 0 {
        // Conditional on an event no sample hit: undefined, like the
        // exact path's `P(ψ) = 0`.
        return Ok(None);
    }
    let (ci_lo, ci_hi) = wilson_interval(hits, trials, confidence);
    Ok(Some(Estimate {
        point: hits as f64 / trials as f64,
        ci_lo,
        ci_hi,
        confidence,
        samples,
        hits,
        trials,
    }))
}

/// The Wilson score interval for `hits` successes in `trials` Bernoulli
/// trials at the given confidence level (clamped to `[0, 1]`).
pub fn wilson_interval(hits: u64, trials: u64, confidence: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let z = probit(0.5 + 0.5 * confidence.clamp(0.0, 1.0 - f64::EPSILON));
    let n = trials as f64;
    let p = hits as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// The standard normal quantile function (inverse CDF), by Acklam's
/// rational approximation — relative error below `1.15e-9` across
/// `(0, 1)`, ample for confidence-interval z-values. Keeping it in-tree
/// keeps the workspace dependency-free.
fn probit(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;
    if !(0.0..=1.0).contains(&p) || !p.is_finite() {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;
    use bfl_fault_tree::corpus;

    #[test]
    fn method_names_round_trip() {
        for m in [Method::Exact, Method::Interval, Method::mc()] {
            assert_eq!(m.name().parse::<Method>().unwrap().name(), m.name());
        }
        assert_eq!(
            "mc".parse::<Method>().unwrap(),
            Method::Mc {
                samples: DEFAULT_MC_SAMPLES,
                seed: DEFAULT_MC_SEED,
                confidence: DEFAULT_MC_CONFIDENCE,
            }
        );
        assert!("montecarlo".parse::<Method>().is_err());
        assert_eq!(Method::default(), Method::Exact);
        assert_eq!(Method::mc().to_string(), "mc");
    }

    #[test]
    fn probit_matches_known_quantiles() {
        // (p, z) pairs from standard normal tables.
        for (p, z) in [
            (0.5, 0.0),
            (0.975, 1.959_963_984_540_054),
            (0.995, 2.575_829_303_548_901),
            (0.9995, 3.290_526_731_491_926),
            (0.025, -1.959_963_984_540_054),
        ] {
            assert!((probit(p) - z).abs() < 1e-6, "probit({p}) = {}", probit(p));
        }
        assert!(probit(-0.1).is_nan());
        assert!(probit(f64::NAN).is_nan());
        assert_eq!(probit(0.0), f64::NEG_INFINITY);
        assert_eq!(probit(1.0), f64::INFINITY);
    }

    #[test]
    fn wilson_contains_sample_proportion() {
        let (lo, hi) = wilson_interval(280, 1000, 0.99);
        assert!(lo < 0.28 && 0.28 < hi);
        assert!(lo > 0.2 && hi < 0.36);
        // Extreme counts stay clamped in [0, 1].
        let (lo, hi) = wilson_interval(0, 10, 0.99);
        assert!(lo < 1e-12 && hi < 1.0);
        let (lo, hi) = wilson_interval(10, 10, 0.99);
        assert!(lo > 0.0 && hi > 1.0 - 1e-12 && hi <= 1.0);
        assert_eq!(wilson_interval(0, 0, 0.99), (0.0, 1.0));
    }

    #[test]
    fn mc_estimates_or2_closely() {
        let tree = corpus::or2();
        let phi = parse_formula("Top").unwrap();
        let e = estimate_probability(&tree, &[0.1, 0.2], &phi, None, &[], 200_000, 7, 0.99, 4)
            .unwrap()
            .unwrap();
        // P(Top) = 0.28 exactly.
        assert!(e.ci_lo <= 0.28 && 0.28 <= e.ci_hi, "{e:?}");
        assert!((e.point - 0.28).abs() < 0.01);
        assert_eq!(e.samples, 200_000);
        assert_eq!(e.trials, 200_000);
    }

    #[test]
    fn mc_is_deterministic_across_thread_counts() {
        let tree = corpus::covid();
        let n = tree.num_basic_events();
        let probs = vec![0.15; n];
        let phi = parse_formula("IWoS").unwrap();
        let run = |threads| {
            estimate_probability(&tree, &probs, &phi, None, &[], 50_000, 42, 0.99, threads)
                .unwrap()
                .unwrap()
        };
        let one = run(1);
        for threads in [2, 8] {
            let t = run(threads);
            assert_eq!(one.point.to_bits(), t.point.to_bits(), "threads={threads}");
            assert_eq!(one.hits, t.hits);
            assert_eq!(one.ci_lo.to_bits(), t.ci_lo.to_bits());
            assert_eq!(one.ci_hi.to_bits(), t.ci_hi.to_bits());
        }
        // A different seed gives a different stream (MoT's hit count is
        // large enough that a collision would be astronomically odd —
        // and everything here is deterministic, so this can never flake).
        let mot = parse_formula("MoT").unwrap();
        let with_seed = |seed| {
            estimate_probability(&tree, &probs, &mot, None, &[], 50_000, seed, 0.99, 1)
                .unwrap()
                .unwrap()
        };
        assert_ne!(with_seed(42).hits, with_seed(43).hits);
    }

    #[test]
    fn conditional_estimates_and_undefined_conditions() {
        let tree = corpus::or2();
        let phi = parse_formula("Top").unwrap();
        let e1 = parse_formula("e1").unwrap();
        // P(Top | e1) = 1.
        let e = estimate_probability(
            &tree,
            &[0.3, 0.2],
            &phi,
            Some(&e1),
            &[],
            100_000,
            5,
            0.99,
            2,
        )
        .unwrap()
        .unwrap();
        assert_eq!(e.point, 1.0);
        assert!(e.trials < e.samples);
        // Conditioning on an impossible event: undefined, not a panic.
        let falsum = parse_formula("e1 & !e1").unwrap();
        let und = estimate_probability(
            &tree,
            &[0.3, 0.2],
            &phi,
            Some(&falsum),
            &[],
            10_000,
            5,
            0.99,
            2,
        )
        .unwrap();
        assert!(und.is_none());
    }

    #[test]
    fn pins_fix_sampled_bits() {
        let tree = corpus::or2();
        let phi = parse_formula("Top").unwrap();
        // Pin e1 failed: Top always fails.
        let e = estimate_probability(
            &tree,
            &[0.1, 0.2],
            &phi,
            None,
            &[(0, true)],
            20_000,
            1,
            0.99,
            2,
        )
        .unwrap()
        .unwrap();
        assert_eq!(e.point, 1.0);
        // Pin both operational: Top never fails.
        let e = estimate_probability(
            &tree,
            &[0.1, 0.2],
            &phi,
            None,
            &[(0, false), (1, false)],
            20_000,
            1,
            0.99,
            2,
        )
        .unwrap()
        .unwrap();
        assert_eq!(e.point, 0.0);
    }

    #[test]
    fn evidence_and_vot_evaluate_on_samples() {
        let tree = corpus::or2();
        // Top[e1 := 0] == e2; P = 0.2.
        let phi = parse_formula("Top[e1 := 0]").unwrap();
        let e = estimate_probability(&tree, &[0.9, 0.2], &phi, None, &[], 100_000, 3, 0.99, 2)
            .unwrap()
            .unwrap();
        assert!(e.ci_lo <= 0.2 && 0.2 <= e.ci_hi, "{e:?}");
        // VOT(>=1; e1, e2) == Top for an OR tree.
        let vot = parse_formula("VOT(>=1; e1, e2)").unwrap();
        let top = parse_formula("Top").unwrap();
        let a = estimate_probability(&tree, &[0.1, 0.2], &vot, None, &[], 50_000, 9, 0.99, 2)
            .unwrap()
            .unwrap();
        let b = estimate_probability(&tree, &[0.1, 0.2], &top, None, &[], 50_000, 9, 0.99, 2)
            .unwrap()
            .unwrap();
        assert_eq!(a.hits, b.hits);
    }

    #[test]
    fn structured_errors_for_bad_inputs() {
        let tree = corpus::or2();
        let phi = parse_formula("Top").unwrap();
        let mcs = parse_formula("MCS(Top)").unwrap();
        assert!(matches!(
            estimate_probability(&tree, &[0.1, 0.2], &mcs, None, &[], 100, 1, 0.99, 1),
            Err(BflError::UnsupportedMethod { method, .. }) if method == "mc"
        ));
        assert!(matches!(
            estimate_probability(&tree, &[0.1, 0.2], &phi, None, &[], 0, 1, 0.99, 1),
            Err(BflError::UnsupportedMethod { .. })
        ));
        assert!(matches!(
            estimate_probability(&tree, &[0.1, 0.2], &phi, None, &[], 100, 1, 1.5, 1),
            Err(BflError::UnsupportedMethod { .. })
        ));
        assert!(matches!(
            estimate_probability(&tree, &[0.1], &phi, None, &[], 100, 1, 0.99, 1),
            Err(BflError::InvalidProbability { .. })
        ));
        let unknown = parse_formula("nope").unwrap();
        assert!(matches!(
            estimate_probability(&tree, &[0.1, 0.2], &unknown, None, &[], 100, 1, 0.99, 1),
            Err(BflError::UnknownElement(_))
        ));
    }

    #[test]
    fn judge_semantics_per_method() {
        use CmpOp::*;
        assert_eq!(ProbValue::Exact(0.3).judge(Lt, 0.5), Some(true));
        let iv = ProbInterval { lo: 0.2, hi: 0.4 };
        // Whole interval below the bound: certain.
        assert_eq!(ProbValue::Interval(iv).judge(Lt, 0.5), Some(true));
        // Bound inside the interval: undecidable.
        assert_eq!(ProbValue::Interval(iv).judge(Lt, 0.3), None);
        // Whole interval above: certainly false.
        assert_eq!(ProbValue::Interval(iv).judge(Lt, 0.1), Some(false));
        // Eq: decided only for (effectively) degenerate intervals.
        let pt = ProbInterval { lo: 0.3, hi: 0.3 };
        assert_eq!(ProbValue::Interval(pt).judge(Eq, 0.3), Some(true));
        assert_eq!(ProbValue::Interval(iv).judge(Eq, 0.3), None);
        assert_eq!(ProbValue::Interval(iv).judge(Eq, 0.9), Some(false));
        let est = Estimate {
            point: 0.3,
            ci_lo: 0.29,
            ci_hi: 0.31,
            confidence: 0.99,
            samples: 1000,
            hits: 300,
            trials: 1000,
        };
        assert_eq!(ProbValue::Estimate(est).judge(Ge, 0.25), Some(true));
        assert!((ProbValue::Estimate(est).midpoint() - 0.3).abs() < 1e-12);
        assert!((ProbValue::Interval(iv).midpoint() - 0.3).abs() < 1e-12);
    }
}
