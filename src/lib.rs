//! # `bfl` — Boolean Fault tree Logic
//!
//! Umbrella crate for the BFL suite, a from-scratch Rust implementation of
//! *"BFL: a Logic to Reason about Fault Trees"* (Nicoletti, Hahn &
//! Stoelinga, DSN 2022). It re-exports the three member crates:
//!
//! * [`bdd`] ([`bfl_bdd`]) — the reduced ordered BDD engine;
//! * [`ft`] ([`bfl_fault_tree`]) — fault trees: model, structure function,
//!   Galileo parser, BDD translation, minimal cut/path sets, probability;
//! * [`logic`] ([`bfl_core`]) — the BFL logic: syntax, DSL, semantics,
//!   model checking, counterexamples, patterns, synthesis.
//!
//! See `README.md` for a tour, `DESIGN.md` for the architecture and
//! `EXPERIMENTS.md` for the paper-reproduction results.
//!
//! ## Quickstart
//!
//! ```
//! use bfl::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The COVID-19 fault tree of the paper's case study (Fig. 2).
//! let tree = bfl::ft::corpus::covid();
//! let mut mc = ModelChecker::new(&tree);
//!
//! // "Are at least 2 human errors sufficient for the top event?" — no:
//! let q = parse_query("forall VOT(>=2; H1, H2, H3, H4, H5) => IWoS")?;
//! assert!(!mc.check_query(&q)?);
//!
//! // "What are the minimal ways to prevent the top event?"
//! let mps = mc.minimal_path_sets("IWoS")?;
//! assert_eq!(mps.len(), 12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bfl_bdd as bdd;
pub use bfl_core as logic;
pub use bfl_fault_tree as ft;

/// One-stop imports for applications using the suite.
pub mod prelude {
    pub use bfl_core::parser::{parse_formula, parse_query, parse_spec, Spec};
    pub use bfl_core::{
        counterexample, is_valid_counterexample, BflError, CmpOp, Counterexample, Formula,
        MinimalityScope, ModelChecker, Pattern, Query,
    };
    pub use bfl_fault_tree::{
        FaultTree, FaultTreeBuilder, GateType, StatusVector, VariableOrdering,
    };
}
