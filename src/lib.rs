//! # `bfl` — Boolean Fault tree Logic
//!
//! Umbrella crate for the BFL suite, a from-scratch Rust implementation of
//! *"BFL: a Logic to Reason about Fault Trees"* (Nicoletti, Hahn &
//! Stoelinga, DSN 2022). It re-exports the three member crates:
//!
//! * [`bdd`] ([`bfl_bdd`]) — the reduced ordered BDD engine;
//! * [`ft`] ([`bfl_fault_tree`]) — fault trees: model, structure function,
//!   Galileo parser, BDD translation, cut-set backends, probability;
//! * [`logic`] ([`bfl_core`]) — the BFL logic: syntax, DSL, semantics,
//!   model checking, counterexamples, patterns, synthesis, and the
//!   [`AnalysisSession`](bfl_core::engine::AnalysisSession) engine.
//!
//! See `README.md` for a tour, `DESIGN.md` for the architecture and
//! `EXPERIMENTS.md` for the paper-reproduction results.
//!
//! ## Quickstart
//!
//! The entry point is the **`AnalysisSession`**: an owned, thread-safe,
//! batch-first façade over the whole stack. Configure once, query many
//! times — repeated sub-formulae share one BDD cache.
//!
//! ```
//! use bfl::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The COVID-19 fault tree of the paper's case study (Fig. 2).
//! let session = AnalysisSession::new(bfl::ft::corpus::covid());
//!
//! // "Are at least 2 human errors sufficient for the top event?" — no,
//! // and the outcome carries refuting vectors and evaluation stats:
//! let q = parse_query("forall VOT(>=2; H1, H2, H3, H4, H5) => IWoS")?;
//! let outcome = session.check_query(&q)?;
//! assert!(!outcome.holds);
//! assert!(!outcome.counterexamples.is_empty());
//!
//! // "What are the minimal ways to prevent the top event?"
//! let mps = session.minimal_path_sets("IWoS")?;
//! assert_eq!(mps.len(), 12);
//!
//! // Whole batches evaluate in one pass over shared caches:
//! let spec = Spec::parse("P1: forall IS => MoT\nP9: SUP(PP)\n")?;
//! let report = session.run(&spec)?;
//! assert_eq!(report.holding(), 0); // both properties fail, as in the paper
//! # Ok(())
//! # }
//! ```
//!
//! ## Migration note (`ModelChecker` → `AnalysisSession`)
//!
//! Before this release the public face was the lifetime-bound
//! [`ModelChecker<'t>`](bfl_core::ModelChecker) plus free functions
//! (`counterexample`, the `analysis` and `zdd_engine` modules). Those
//! APIs remain available — `ModelChecker` is the session's internal
//! workhorse — but new code should build an
//! [`AnalysisSession`](bfl_core::engine::AnalysisSession): it owns its
//! tree (`Arc<FaultTree>`, no lifetime), is `Send + Sync`, returns
//! structured [`Outcome`](bfl_core::report::Outcome)s instead of bare
//! `bool`s, and selects the cut-set [`Backend`](bfl_core::engine::Backend)
//! (`minsol`/`paper`/`zdd`) as configuration rather than as different
//! entry points. See the migration table in [`bfl_core::engine`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bfl_bdd as bdd;
pub use bfl_core as logic;
pub use bfl_fault_tree as ft;

/// One-stop imports for applications using the suite.
pub mod prelude {
    pub use bfl_core::engine::{
        AnalysisSession, Backend, MaintenanceReport, MaintenanceStats, ReorderPolicy,
        SessionBuilder,
    };
    pub use bfl_core::parser::{parse_formula, parse_query, parse_spec};
    pub use bfl_core::plan::{
        ConstructionReport, ModuleReport, Plan, PreparedQuery, PreparedStats, ProbOutcome,
        ProbSweepReport, ProbSweepStats, SweepReport, SweepStats,
    };
    pub use bfl_core::quant::{EventImportance, ProbQuery};
    pub use bfl_core::report::{EvalStats, Outcome, Report, Spec, SpecItem, SpecKind};
    pub use bfl_core::scenario::{Scenario, ScenarioSet};
    pub use bfl_core::uncertainty::{Estimate, Method, ProbInterval, ProbValue};
    pub use bfl_core::{
        counterexample, is_valid_counterexample, some_counterexamples, ActualCause, BflError,
        CauseReport, CmpOp, Counterexample, CounterexampleSet, Formula, MinimalityScope,
        ModelChecker, Pattern, Prob, Query,
    };
    pub use bfl_fault_tree::{
        FaultTree, FaultTreeBuilder, GateType, StatusVector, VariableOrdering,
    };
}
